"""Fig. 7: projected lifetime vs R_diff, first 200 RWL+RO iterations.

Paper shape: R_diff converges toward 0; the projected lifetime inversely
follows it toward the perfectly-leveled reference.
"""

from conftest import once

from repro.experiments.common import PAPER_ZOOM_ITERATIONS
from repro.experiments.fig7 import run_fig7


def test_fig7_lifetime_vs_rdiff(benchmark):
    result = once(benchmark, run_fig7, iterations=PAPER_ZOOM_ITERATIONS)
    print()
    print(result.format())
    assert result.r_diff_converges
    assert result.lifetime_rises
    assert result.inversely_correlated
    assert result.projection.final_lifetime > 0.99
