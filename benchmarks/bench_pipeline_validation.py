"""Cycle-model validation: analytic closed form vs event-driven pipeline.

Not a paper figure — this guards the latency model the "no performance
degradation" analysis rests on: for every layer of every Table II
workload, the analytic makespan must upper-bound the double-buffered
shared-bus simulation within 2%.
"""

from conftest import once

from repro.dataflow.cycles import CycleModel
from repro.dataflow.pipeline import PipelineSimulator
from repro.experiments.common import execution_for, paper_accelerator
from repro.workloads.registry import network_names


def test_cycle_model_validates_against_pipeline(benchmark):
    accelerator = paper_accelerator()
    cycle_model = CycleModel(accelerator)

    def run():
        checked = 0
        worst_steady_gap = 0.0  # layers with enough passes to reach steady state
        for name in network_names():
            execution = execution_for(name, accelerator)
            for layer_execution in execution.layers:
                mapping = layer_execution.schedule.mapping
                per_pass = cycle_model.pass_cycles(mapping)
                passes = min(mapping.num_passes, 2048)
                simulated = (
                    PipelineSimulator(per_pass, buffers=2).simulate(passes).makespan
                )
                analytic = (
                    per_pass.serialized + (passes - 1) * per_pass.steady_state
                )
                assert simulated <= analytic, layer_execution.layer.name
                gap = analytic - simulated
                # Pipeline-fill slack never exceeds one serialized pass.
                assert gap <= per_pass.serialized, layer_execution.layer.name
                if passes >= 64:
                    worst_steady_gap = max(worst_steady_gap, gap / simulated)
                checked += 1
        return checked, worst_steady_gap

    checked, worst_gap = once(benchmark, run)
    print(f"\nvalidated {checked} layers; worst steady-state gap "
          f"{100 * worst_gap:.2f}%")
    assert checked > 800
    assert worst_gap < 0.02
