"""Fig. 3: usage heatmaps — fixed-corner mesh vs wear-leveled torus."""

from conftest import once

from repro.experiments.fig3 import run_fig3


def test_fig3_heatmaps(benchmark):
    result = once(benchmark, run_fig3, iterations=10)
    print()
    print(result.format())
    for network in ("ResNet-50", "SqueezeNet"):
        pair = result.pair_for(network)
        counts = pair.baseline_counts
        # Fig. 3a: hotspot anchored at the scheduling corner.
        assert counts[0, 0] == counts.max()
        # Fig. 3b: torus + RWL+RO is near-uniform.
        assert pair.wear_leveled_r_diff < 0.2
        assert pair.baseline_r_diff > pair.wear_leveled_r_diff
