"""Fig. 2: PE utilization of energy-optimal schedules.

Paper numbers: 55.8% average on Eyeriss (Fig. 2a); drastic per-layer
variation within SqueezeNet (Fig. 2b).
"""

from conftest import once

from repro.experiments.fig2 import run_fig2a, run_fig2b


def test_fig2a_average_pe_utilization(benchmark):
    result = once(benchmark, run_fig2a)
    print()
    print(result.format())
    # Shape: chronic underutilization, in the ballpark of 55.8%.
    assert 0.40 <= result.overall_mean <= 0.75
    assert all(value < 1.0 for _, value in result.rows)


def test_fig2b_squeezenet_layer_utilization(benchmark):
    result = once(benchmark, run_fig2b, "SqueezeNet")
    print()
    print(result.format())
    # Shape: utilization varies drastically within one network.
    assert result.spread > 0.2
