"""Fig. 4: the unfolded torus walk, as data.

The figure's two visual claims, made executable: striding utilization
spaces tile the unfolded plane exactly (no gaps, no overlaps), and
folding the plane back onto the physical array covers every column
exactly W times — including the boundary-crossing "U-1" spaces.
"""

from conftest import once

from repro.experiments.fig4 import run_fig4


def test_fig4_unfolded_walk(benchmark):
    result = once(benchmark, run_fig4, x=8, y=8)
    print()
    print(result.format())
    assert result.tiling_is_exact
    assert result.folded_coverage_uniform
    # The paper's example geometry: 7 strides, 4 unfoldings, and spaces
    # that genuinely cross the boundary (the U-1 case exists).
    assert (result.X, result.W) == (7, 4)
    assert len(result.wrapping_spaces) > 0
