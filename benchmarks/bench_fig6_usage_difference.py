"""Fig. 6: max PE usage difference, SqueezeNet x 1,000 iterations.

Paper shapes: the baseline's D_max grows steeply and unboundedly, RWL's
grows with a much smaller slope, RWL+RO's is bounded (visible only in
the zoomed first 200 iterations); the final heatmaps go from a severe
corner hotspot (baseline) to near-perfect uniformity (RWL+RO).
"""

from conftest import once

from repro.experiments.common import PAPER_ITERATIONS
from repro.experiments.fig6 import run_fig6


def test_fig6_usage_difference_1000_iterations(benchmark):
    result = once(benchmark, run_fig6, iterations=PAPER_ITERATIONS)
    print()
    print(result.format())
    # Fig. 6a: steep baseline growth, much flatter RWL.
    assert result.slope("baseline") > 10 * result.slope("rwl")
    assert result.slope("rwl") > 0
    # Fig. 6b: RWL+RO bounded.
    assert result.rwl_ro_bounded
    # Figs. 6c-e: final imbalance ordering.
    d_final = {
        policy: int(result.trace(policy)[-1])
        for policy in ("baseline", "rwl", "rwl+ro")
    }
    assert d_final["baseline"] > d_final["rwl"] > d_final["rwl+ro"]
