"""Runtime benchmarks: process-pool fan-out and the persistent cache.

Three measurements back the parallel-runtime acceptance criteria:

1. the Fig. 8 workload sweep, serial vs parallel — bit-identical tables,
   recorded speedup (only meaningful on a multi-core runner);
2. a cold vs warm `rota lifetime` subprocess against a fresh cache
   directory — the warm run skips both the mapping search and the
   engine runs, and must be at least 5x faster when the cold run paid
   the full scheduling pass;
3. chunked Monte Carlo sampling, serial vs parallel — bit-identical.

Each test appends a JSON record to ``benchmarks/results/
runtime_parallel.json`` (relocatable via ``REPRO_BENCH_JSON_DIR``) so
the speedups accumulate into a trajectory across commits. Reduce the
workload for smoke runs with ``REPRO_BENCH_ITERATIONS``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from conftest import once

from repro import __version__
from repro.experiments.fig8 import run_fig8
from repro.reliability.montecarlo import sample_array_lifetimes

BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "100"))
_SRC = Path(__file__).resolve().parent.parent / "src"


def _record(entry: dict) -> None:
    """Append one benchmark record to the trajectory file."""
    out_dir = Path(
        os.environ.get(
            "REPRO_BENCH_JSON_DIR", Path(__file__).resolve().parent / "results"
        )
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "runtime_parallel.json"
    try:
        records = json.loads(path.read_text()) if path.exists() else []
    except (OSError, ValueError):
        records = []
    records.append({"version": __version__, **entry})
    path.write_text(json.dumps(records, indent=2) + "\n")


def test_bench_fig8_serial_vs_parallel(benchmark, monkeypatch):
    """Parallel Fig. 8 sweep: identical table, recorded speedup."""
    # Measure the fan-out, not the result cache: with caching on, the
    # second sweep would be a pure cache read.
    monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
    start = time.perf_counter()
    serial = run_fig8(iterations=BENCH_ITERATIONS, jobs=1)
    serial_seconds = time.perf_counter() - start

    jobs = os.cpu_count() or 1
    parallel = once(benchmark, run_fig8, iterations=BENCH_ITERATIONS, jobs=jobs)
    parallel_seconds = benchmark.stats["mean"]

    assert serial.rows == parallel.rows
    assert serial.format() == parallel.format()
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print()
    print(
        f"fig8 sweep x{BENCH_ITERATIONS}: serial {serial_seconds:.3f}s, "
        f"parallel({jobs}) {parallel_seconds:.3f}s, speedup {speedup:.2f}x"
    )
    _record(
        {
            "bench": "fig8_serial_vs_parallel",
            "iterations": BENCH_ITERATIONS,
            "jobs": jobs,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
        }
    )
    # On a multi-core runner the fan-out must help; on a single core it
    # must at least not corrupt results (asserted above).
    if jobs >= 4:
        assert speedup > 1.05


def test_bench_result_cache_cold_vs_warm(benchmark, tmp_path):
    """A repeat `rota lifetime` against a warm persistent cache."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env.pop("REPRO_RESULT_CACHE", None)  # cache on, in a fresh directory
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro",
        "lifetime",
        "--iterations",
        str(BENCH_ITERATIONS),
    ]

    start = time.perf_counter()
    cold = subprocess.run(command, env=env, capture_output=True, text=True)
    cold_seconds = time.perf_counter() - start
    assert cold.returncode == 0, cold.stderr

    def warm_run():
        result = subprocess.run(command, env=env, capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        return result

    warm = once(benchmark, warm_run)
    warm_seconds = benchmark.stats["mean"]
    assert warm.stdout == cold.stdout  # cached results render identically

    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    print()
    print(
        f"rota lifetime x{BENCH_ITERATIONS}: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s, speedup {speedup:.2f}x"
    )
    _record(
        {
            "bench": "lifetime_cold_vs_warm",
            "iterations": BENCH_ITERATIONS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
        }
    )
    assert warm_seconds < cold_seconds
    # When the cold run paid the full mapping search, warm must win big.
    if cold_seconds > 20:
        assert speedup >= 5


def test_bench_montecarlo_chunked(benchmark):
    """Chunked Monte Carlo: parallel draws identical to serial."""
    rng = np.random.default_rng(42)
    alphas = rng.uniform(0.1, 1.0, 168)  # one 14x12 array's activities
    samples = 50_000

    serial = sample_array_lifetimes(alphas, num_samples=samples, seed=7, jobs=1)

    def parallel_run():
        return sample_array_lifetimes(
            alphas, num_samples=samples, seed=7, jobs=os.cpu_count() or 1
        )

    parallel = once(benchmark, parallel_run)
    assert np.array_equal(serial.lifetimes, parallel.lifetimes)
    assert serial.agrees_with_analytic()
    _record(
        {
            "bench": "montecarlo_chunked",
            "num_samples": samples,
            "jobs": os.cpu_count() or 1,
            "seconds": benchmark.stats["mean"],
        }
    )
