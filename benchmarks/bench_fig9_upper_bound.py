"""Fig. 9: layer-wise RWL improvement vs the theoretical ceiling.

Paper shape: per-layer RWL approaches — and never exceeds — the
perfect-wear-leveling bound ``utilization ** (1/beta - 1)``.
"""

from conftest import once

from repro.experiments.fig9 import run_fig9


def test_fig9_layerwise_upper_bound(benchmark):
    result = once(benchmark, run_fig9)
    print()
    print(result.format(limit=25))
    assert result.all_within_bound
    # 'Closely approaches': on average the bound is mostly achieved.
    assert result.mean_gap > 0.85
    # Every layer of every Table II network contributed a point.
    assert len(result.points) > 800
