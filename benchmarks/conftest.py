"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper at
full scale, times it with pytest-benchmark, prints the paper-style rows,
and asserts the qualitative shape the paper reports. Run with::

    pytest benchmarks/ --benchmark-only

Schedules are shared through the on-disk cache, so the first run pays
the mapping search (~30 s) and later runs start hot.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


def once(benchmark, func, *args, **kwargs):
    """Time a heavy experiment driver once, after one untimed warmup.

    The warmup round populates the schedule and result caches so the
    measured round reports steady-state cost instead of a cold start —
    figure benches were previously dominated by first-call cache fills.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=1
    )


def registry_runner(spec_id):
    """Resolve a benchmark's driver through the experiment registry.

    Benches that time a registered experiment should fetch the callable
    here instead of importing the driver module directly, so a renamed
    or retired driver fails the bench at collection with a clear
    registry error.
    """
    from repro.experiments.registry import get_spec

    return get_spec(spec_id).resolve()
