"""Fig. 8: relative lifetime improvement per Table II workload.

Paper numbers: RWL+RO 1.69x average, RWL-only 1.65x; visible RO gaps on
MobileNet v3 / EfficientNet / MobileViT; the biggest gain goes to the
lowest-utilization workload; improvements strongly (anti-)correlate with
PE utilization.
"""

from conftest import once

from repro.experiments.fig8 import run_fig8


def test_fig8_lifetime_improvement(benchmark):
    result = once(benchmark, run_fig8, iterations=200)
    print()
    print(result.format())
    print(f"corr(utilization, improvement) = {result.utilization_correlation():.3f}")
    # Every workload benefits; the average is clearly above 1.
    assert all(row.rwl_ro > 1.0 for row in result.rows)
    assert result.mean_rwl_ro > 1.3
    # Strong anti-correlation with utilization (paper Section V-B).
    assert result.utilization_correlation() < -0.7
    # The lowest-utilization workload gains the most.
    lowest = min(result.rows, key=lambda row: row.utilization)
    assert result.best_network.network == lowest.network
    # The paper's three small networks show the RO-over-RWL gap.
    assert result.small_network_gap > 1.0
