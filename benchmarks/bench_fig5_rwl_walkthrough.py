"""Fig. 5 / Table I: closed-form RWL quantities vs simulation.

Paper example: ResNet C5, 8x8 space, Z = 32 on 14x12 => X=7, W=4, Y=4,
H_RWL=2; Eq. 9 bounds D_max by W + 1.
"""

from conftest import once

from repro.experiments.fig5 import run_fig5


def test_fig5_rwl_walkthrough(benchmark):
    result = once(benchmark, run_fig5, "ResNet-50")
    print()
    print(result.format())
    assert (result.example.X, result.example.W) == (7, 4)
    assert (result.example.Y, result.example.H_rwl) == (4, 2)
    # Eq. 9 holds in simulation for every ResNet layer.
    assert result.all_bounds_hold
