"""Design-choice ablations (DESIGN.md Section 4).

Not paper figures — these quantify the reproduction's own choices:
Algorithm 1's vertical-stride trigger vs a boundary-wrap variant, the
scheduler's dataflow preset, and usage-accounting granularity.
"""

import numpy as np
from conftest import once

from repro.core.policies import StrideTrigger
from repro.experiments.ablation import (
    run_accounting_ablation,
    run_dataflow_ablation,
    run_trigger_ablation,
)
from repro.experiments.common import run_policies, streams_for


def test_ablation_stride_trigger(benchmark):
    result = once(benchmark, run_trigger_ablation, iterations=200)
    print()
    print(result.format())
    for row in result.rows:
        assert row.origin_trigger > 1.0
        assert row.wrap_trigger > 1.0


def test_ablation_trigger_boundedness(benchmark):
    """The paper's exact trigger is load-bearing: under RWL+RO only the
    origin trigger keeps D_max bounded; the wrap trigger fires nearly
    every stride for wide spaces and accumulates imbalance."""
    streams = streams_for("SqueezeNet")

    def run():
        traces = {}
        for trigger in (StrideTrigger.ORIGIN, StrideTrigger.WRAP):
            result = run_policies(
                streams, policies=("rwl+ro",), iterations=600, trigger=trigger
            )["rwl+ro"]
            traces[trigger] = result.max_difference_trace()
        return traces

    traces = once(benchmark, run)
    origin_final = int(traces[StrideTrigger.ORIGIN][-1])
    wrap_final = int(traces[StrideTrigger.WRAP][-1])
    print(f"\nD_max after 600 iterations: origin={origin_final} wrap={wrap_final}")
    assert wrap_final > 50 * origin_final


def test_ablation_dataflow_preset(benchmark):
    result = once(benchmark, run_dataflow_ablation, iterations=100)
    print()
    print(result.format())
    # Wear-leveling wins under every mapper style.
    assert result.conclusion_robust


def test_ablation_usage_accounting(benchmark):
    result = once(benchmark, run_accounting_ablation, iterations=100)
    print()
    print(result.format())
    assert result.consistent
    # The two accountings agree within a modest factor.
    ratio = result.cycle_weighted_improvement / result.allocation_improvement
    assert 0.5 < ratio < 2.0
