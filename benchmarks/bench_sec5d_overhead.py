"""Section V-D: design overhead and performance neutrality.

Paper numbers: 0.3% area overhead for the torus links (SAED 32 nm
synthesis), tiny wear-leveling logic (4 registers + 2 counters), and no
performance degradation.
"""

from conftest import once

from repro.experiments.overhead import run_overhead


def test_sec5d_design_overhead(benchmark):
    result = once(benchmark, run_overhead)
    print()
    print(result.format())
    # Same order as the paper's 0.3%: strictly sub-1%.
    assert result.matches_paper_order
    # Wear-leveling logic is negligible next to the floorplan.
    assert result.wear_leveling_logic_um2 < 1000
    # Executable no-performance-degradation check across all workloads.
    assert result.cycle_penalty == 0
