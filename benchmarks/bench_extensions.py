"""Extension studies (not paper figures — see DESIGN.md).

Policy comparison against naive alternatives, Monte Carlo validation of
the closed-form lifetime math, and scheduler-objective sensitivity.
"""

from conftest import once

from repro.experiments.extensions import (
    run_aspect_ratio_study,
    run_buffer_sweep,
    run_beta_sensitivity,
    run_mixed_workload,
    run_oracle_comparison,
    run_variation_sensitivity,
    run_montecarlo_validation,
    run_objective_ablation,
    run_policy_comparison,
)


def test_extension_policy_comparison(benchmark):
    result = once(benchmark, run_policy_comparison, iterations=500)
    print()
    print(result.format())
    # RWL+RO matches the best competitor's lifetime...
    assert result.rwl_ro_is_best_or_tied
    # ...while random starts drift like a random walk.
    assert result.only_structured_policies_bounded
    random_row = result.row_for("random")
    rwl_ro_row = result.row_for("rwl+ro")
    assert random_row.tail_slope > 10 * abs(rwl_ro_row.tail_slope)
    # Every torus policy crushes the fixed-corner baseline.
    for policy in ("diagonal", "random", "rwl", "rwl+ro"):
        assert result.row_for(policy).improvement > 1.3


def test_extension_montecarlo_validation(benchmark):
    result = once(benchmark, run_montecarlo_validation, num_samples=20_000)
    print()
    print(result.format())
    # Closed form (Eqs. 2-4) matches sampling within noise.
    assert result.closed_form_validated
    assert result.improvement_relative_error < 0.02
    # Wear-leveling also helps the early-failure tail (B10 life)...
    assert result.leveled_b10_life > result.baseline_b10_life
    # ...and spreads first failures off the hot PEs.
    assert (
        result.leveled_failure_concentration
        < result.baseline_failure_concentration
    )


def test_extension_objective_sensitivity(benchmark):
    result = once(benchmark, run_objective_ablation, iterations=100)
    print()
    print(result.format())
    # The headline claim survives least-cycle and EDP-optimal scheduling.
    assert result.conclusion_robust
    improvements = [row.rwl_ro for row in result.rows]
    assert max(improvements) / min(improvements) < 1.25


def test_extension_beta_sensitivity(benchmark):
    result = once(benchmark, run_beta_sensitivity, iterations=100)
    print()
    print(result.format())
    # Wear-leveling wins for every wear-out shape, and matters more the
    # steeper the wear-out (larger beta).
    assert result.always_improves
    assert result.monotone_in_beta


def test_extension_variation_sensitivity(benchmark):
    result = once(
        benchmark,
        run_variation_sensitivity,
        iterations=100,
        sigmas=(0.0, 0.2, 0.5, 1.0),
    )
    print()
    print(result.format())
    # Usage-based wear-leveling survives intrinsic PE variation...
    assert result.always_improves
    # ...though variation erodes the margin.
    assert result.margin_shrinks


def test_extension_feedback_oracle(benchmark):
    result = once(benchmark, run_oracle_comparison, iterations=25)
    print()
    print(result.format())
    # Open-loop RWL+RO leaves nothing for feedback hardware to gain.
    assert result.open_loop_matches_oracle
    assert result.oracle_improvement > 1.0


def test_extension_mixed_workload(benchmark):
    result = once(benchmark, run_mixed_workload, iterations=200)
    print()
    print(result.format())
    # Section IV-D: RO relays across networks — the multi-tenant mix
    # still levels and the scheme ordering holds.
    assert result.ordering_holds
    assert result.mix_levels_out
    assert result.improvement_rwl_ro > 1.3


def test_extension_aspect_ratio(benchmark):
    result = once(benchmark, run_aspect_ratio_study, iterations=100)
    print()
    print(result.format())
    # The rotation is axis-symmetric: every aspect ratio benefits, and
    # transposed shapes behave identically (32x8 vs 8x32).
    assert result.all_improve
    by_label = {point.label: point for point in result.points}
    import math
    assert math.isclose(
        by_label["32x8"].rwl_ro, by_label["8x32"].rwl_ro, rel_tol=0.05
    )


def test_extension_buffer_sweep(benchmark):
    result = once(benchmark, run_buffer_sweep, iterations=100)
    print()
    print(result.format())
    # The win survives halving or quadrupling the Eyeriss buffers.
    assert result.all_improve
    assert result.gain_spread < 2.0
