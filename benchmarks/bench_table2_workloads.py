"""Table II: build the full workload roster and print it."""

from conftest import once, registry_runner

run_table2 = registry_runner("table2")


def test_table2_workload_roster(benchmark):
    result = once(benchmark, run_table2)
    print()
    print(result.format())
    assert len(result.networks) == 9
    # Table II spans four DNN domains.
    assert len({network.domain for network in result.networks}) == 4
