"""Microbenchmarks of the simulation substrate itself.

These use pytest-benchmark's repeated timing (they are cheap and
deterministic) and guard the performance characteristics the figure
benches rely on: constant-time grouped positions, vectorized usage
accumulation, and memoized multi-iteration engine runs.
"""

import numpy as np

from repro.arch.presets import eyeriss_v1
from repro.core.engine import WearLevelingEngine
from repro.core.policies import RwlRoPolicy, make_policy
from repro.core.positions import grouped_positions
from repro.core.tracker import UsageTracker
from repro.experiments.common import streams_for


def test_bench_grouped_positions_llama_scale(benchmark):
    """Grouped positions for a million-tile layer must be O(w*h)."""

    def run():
        return grouped_positions((3, 5), 8, 8, 14, 12, 1_000_000)

    uu, vv, mult, final = benchmark(run)
    assert int(mult.sum()) == 1_000_000


def test_bench_tracker_batch_accumulation(benchmark):
    """Vectorized rectangle accumulation over a full-array batch."""
    array = eyeriss_v1(torus=True).array
    rng = np.random.default_rng(7)
    us = rng.integers(0, 14, 5000)
    vs = rng.integers(0, 12, 5000)

    def run():
        tracker = UsageTracker(array)
        tracker.add_positions(us, vs, 8, 8)
        return tracker

    tracker = benchmark(run)
    assert tracker.total_usage == 5000 * 64


def test_bench_engine_squeezenet_iteration(benchmark):
    """One full SqueezeNet pass through the RWL+RO engine (memo warm)."""
    accelerator = eyeriss_v1(torus=True)
    streams = streams_for("SqueezeNet", accelerator)
    engine = WearLevelingEngine(accelerator, RwlRoPolicy())
    engine.run(streams, iterations=5, record_trace=False)  # warm the memo

    def run():
        engine.run_network(streams)

    benchmark(run)
    assert engine.tracker.total_usage > 0


def test_bench_thousand_iteration_run(benchmark):
    """The Fig. 6 workhorse: 1,000 iterations of SqueezeNet."""
    accelerator = eyeriss_v1(torus=True)
    streams = streams_for("SqueezeNet", accelerator)

    def run():
        engine = WearLevelingEngine(accelerator, make_policy("rwl+ro"))
        return engine.run(streams, iterations=1000, record_trace=True)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.iterations == 1000
