"""Open-loop load test against the serving front door (CLI, not pytest).

Spawns a ``rota gateway`` subprocess (or targets ``--base-url``), offers
a seeded duplicated-traffic scenario built from the fleet simulator's
arrival processes, and prints what the service sustained: RPS,
submit-to-terminal p50/p99, error budget, and the coalesce ratio read
back from ``/metrics``.

``--smoke`` is the CI gate (the ``load-smoke`` job): a small pinned
scenario that must finish with **zero 5xx responses**, a **coalesce
ratio above zero** (concurrent identical submissions really shared
executions), and — when this script spawned the gateway — a **clean
SIGTERM drain** (exit 0 and the drain summary line).

Usage::

    python benchmarks/bench_service_load.py --smoke --workers 2
    python benchmarks/bench_service_load.py --base-url http://127.0.0.1:8764
    python benchmarks/bench_service_load.py --json > load.json

The module is importable (pytest may collect ``bench_*.py`` files); all
work happens under ``main()``.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="open-loop load test for rota gateway / rota serve"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "small pinned scenario with hard gates: zero 5xx, coalesce "
            "ratio > 0, clean SIGTERM drain"
        ),
    )
    parser.add_argument(
        "--base-url",
        default=None,
        help=(
            "drive an already-running service instead of spawning a "
            "gateway (skips the drain gate)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the spawned gateway",
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="override request count"
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="override offered rate (rps)"
    )
    parser.add_argument(
        "--kind",
        default="poisson",
        choices=("poisson", "bursty"),
        help="arrival process shape",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--start-method",
        default="fork",
        choices=("spawn", "fork", "forkserver"),
        help="start method for the spawned gateway's workers",
    )
    parser.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print the report as JSON instead of the summary table",
    )
    return parser.parse_args(argv)


def _spawn_gateway(args, cache_dir):
    """Start ``rota gateway`` on an ephemeral port; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "gateway",
            "--port",
            "0",
            "--jobs",
            str(args.workers),
            "--start-method",
            args.start_method,
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"gateway failed to start: {line.strip()!r}")
    url = line.split("listening on ")[1].split()[0]
    return proc, url


def _drain_gateway(proc):
    """SIGTERM the spawned gateway; returns (exit_code, remaining output)."""
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=60)
    return proc.returncode, output


def main(argv=None):
    args = _parse_args(argv)
    from repro.gateway.loadgen import LoadScenario, default_scenario, run_load

    scenario = default_scenario(smoke=args.smoke)
    scenario = LoadScenario(
        classes=scenario.classes,
        num_requests=args.requests or scenario.num_requests,
        rate_rps=args.rate or scenario.rate_rps,
        kind=args.kind,
        seed=args.seed,
    )

    proc = None
    drain = None
    try:
        if args.base_url:
            base_url = args.base_url.rstrip("/")
        else:
            cache_dir = tempfile.mkdtemp(prefix="rota-load-cache-")
            proc, base_url = _spawn_gateway(args, cache_dir)
        report = run_load(base_url, scenario)
    finally:
        if proc is not None:
            drain = _drain_gateway(proc)

    body = report.to_dict()
    if drain is not None:
        body["drain"] = {"exit_code": drain[0], "output": drain[1].strip()}
    if args.json_output:
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        print(report.format())
        if drain is not None:
            print(f"  drain      exit {drain[0]}: {drain[1].strip()}")

    if args.smoke:
        failures = []
        if report.errors_5xx:
            failures.append(f"{report.errors_5xx} 5xx responses (want 0)")
        if report.completed != report.offered:
            failures.append(
                f"only {report.completed}/{report.offered} completed"
            )
        if report.coalesce_ratio <= 0.0:
            failures.append("coalesce ratio is 0 (no sharing observed)")
        if drain is not None:
            code, output = drain
            if code != 0:
                failures.append(f"gateway exited {code} after SIGTERM")
            if "drained" not in output:
                failures.append("no drain summary after SIGTERM")
        if failures:
            print(
                "load smoke FAILED: " + "; ".join(failures), file=sys.stderr
            )
            return 1
        print("load smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
