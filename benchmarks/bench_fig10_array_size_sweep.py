"""Fig. 10: wear-leveling gains vs PE-array size (SqueezeNet).

Paper shape: larger arrays lower PE utilization and enlarge the residual
imbalance, so the RWL+RO gain grows with the array size.
"""

from conftest import once

from repro.experiments.fig10 import run_fig10


def test_fig10_array_size_sweep(benchmark):
    result = once(benchmark, run_fig10, iterations=200)
    print()
    print(result.format())
    assert result.gain_grows_with_size
    # The largest array should show a substantially bigger gain than the
    # smallest (paper: monotone growth across the sweep).
    assert result.points[-1].rwl_ro > 1.5 * result.points[0].rwl_ro
    assert all(point.rwl_ro >= 1.0 for point in result.points)
