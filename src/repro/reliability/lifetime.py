"""Relative lifetime improvement (Eq. 4) and its theoretical ceiling.

Eq. 4 compares two usage distributions over the *same* total work:

    improvement = (sum alpha_B**beta)**(1/beta)
                / (sum alpha_WL**beta)**(1/beta)

Because the ratio is scale-invariant, raw usage counts can be passed
directly as the ``alpha`` vectors as long as both schemes processed the
same tile stream (the engine guarantees equal totals).

Section V-C derives the ceiling for a single layer with utilization
``rho = (x*y)/(w*h)``: the baseline concentrates all stress on ``x*y``
PEs while perfect wear-leveling spreads it over all ``w*h``, giving

    upper bound = rho ** (1/beta - 1)   (>= 1 since rho <= 1, beta > 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.weibull import JEDEC_BETA, WeibullModel


def relative_improvement(alpha_baseline, alpha_wear_leveled, beta: float = JEDEC_BETA) -> float:
    """Eq. 4: lifetime of the wear-leveled scheme relative to the baseline.

    Values above 1.0 mean the wear-leveled schedule lives longer. Both
    vectors must represent the same amount of total work for the ratio to
    be meaningful; the engine's equal-tile-stream construction guarantees
    this, and a mismatch larger than rounding is rejected.
    """
    model = WeibullModel(beta=beta)
    base = np.asarray(alpha_baseline, dtype=float)
    leveled = np.asarray(alpha_wear_leveled, dtype=float)
    total_base = float(base.sum())
    total_leveled = float(leveled.sum())
    if total_base <= 0 or total_leveled <= 0:
        raise ConfigurationError("usage vectors must contain some activity")
    if not np.isclose(total_base, total_leveled, rtol=1e-6):
        raise ConfigurationError(
            f"usage totals differ ({total_base} vs {total_leveled}); Eq. 4 "
            f"compares schedules over the same work"
        )
    denominator = model.stress_norm(leveled)
    if denominator == 0.0:
        return float("inf")
    return model.stress_norm(base) / denominator


def improvement_from_counts(baseline_counts, wear_leveled_counts, beta: float = JEDEC_BETA) -> float:
    """Eq. 4 applied to integer usage ledgers from two engine runs."""
    return relative_improvement(
        np.asarray(baseline_counts, dtype=float).ravel(),
        np.asarray(wear_leveled_counts, dtype=float).ravel(),
        beta=beta,
    )


def relative_lifetime(counts, beta: float = JEDEC_BETA) -> float:
    """Lifetime of a usage distribution relative to perfect leveling.

    Returns ``MTTF(counts) / MTTF(uniform with the same total)``, a value
    in ``(0, 1]`` that equals 1 exactly when usage is perfectly level.
    This is the "projected lifetime" axis of Fig. 7.
    """
    model = WeibullModel(beta=beta)
    array = np.asarray(counts, dtype=float).ravel()
    total = float(array.sum())
    if total <= 0:
        raise ConfigurationError("usage vector must contain some activity")
    uniform = np.full(array.shape, total / array.size)
    return model.stress_norm(uniform) / model.stress_norm(array)


def lifetime_upper_bound(utilization: float, beta: float = JEDEC_BETA) -> float:
    """Section V-C ceiling: ``utilization ** (1/beta - 1)``.

    ``utilization`` is the PE-utilization ratio ``(x*y)/(w*h)`` of a
    layer; the bound is what perfect wear-leveling would achieve over the
    fixed-corner baseline for that layer.
    """
    if not 0.0 < utilization <= 1.0:
        raise ConfigurationError(
            f"utilization must be in (0, 1], got {utilization}"
        )
    if beta <= 0:
        raise ConfigurationError(f"beta must be positive, got {beta}")
    return utilization ** (1.0 / beta - 1.0)
