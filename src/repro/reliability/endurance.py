"""Service-life estimates: turning Eq. 4's ratio into years.

The paper reports *relative* lifetime (1.69x) because the Weibull scale
``eta`` is a technology constant. Deployments still ask the absolute
question: *how many years does this accelerator last?* This module
answers it under an explicit calibration: a PE that is continuously
active at full stress has a rated MTTF of ``rated_pe_mttf_years``
(JEDEC-class wear-out budgets are typically a decade-plus), which fixes
``eta = rated / Gamma(1 + 1/beta)``. Usage ledgers then scale each PE's
stress clock, and Eq. 3 gives the array's expected service life.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.weibull import JEDEC_BETA, WeibullModel

#: Hours per year used throughout (365.25 days).
HOURS_PER_YEAR = 8766.0


def calibrated_model(
    rated_pe_mttf_years: float = 10.0, beta: float = JEDEC_BETA
) -> WeibullModel:
    """A Weibull model whose fully-active PE MTTF equals the rating."""
    if rated_pe_mttf_years <= 0:
        raise ConfigurationError(
            f"rated PE MTTF must be positive, got {rated_pe_mttf_years}"
        )
    eta_hours = (
        rated_pe_mttf_years * HOURS_PER_YEAR / math.gamma(1.0 + 1.0 / beta)
    )
    return WeibullModel(beta=beta, eta=eta_hours)


@dataclass(frozen=True)
class ServiceLife:
    """Absolute lifetime estimate of one usage distribution."""

    mttf_hours: float
    rated_pe_mttf_years: float
    duty_cycle: float

    @property
    def mttf_years(self) -> float:
        """Expected array service life in years."""
        return self.mttf_hours / HOURS_PER_YEAR


def service_life(
    counts,
    duty_cycle: float = 1.0,
    rated_pe_mttf_years: float = 10.0,
    beta: float = JEDEC_BETA,
) -> ServiceLife:
    """Expected service life of an array with the given usage ledger.

    Parameters
    ----------
    counts:
        Per-PE usage ledger (any non-negative array). The busiest PE is
        assumed active a ``duty_cycle`` fraction of wall-clock time; all
        other PEs scale proportionally — exactly the paper's
        relative-active-duration convention with an absolute anchor.
    duty_cycle:
        Fraction of wall-clock time the accelerator is processing
        (1.0 = around-the-clock inference serving).
    rated_pe_mttf_years:
        The calibration: rated MTTF of one continuously-active PE.
    """
    if not 0.0 < duty_cycle <= 1.0:
        raise ConfigurationError(
            f"duty cycle must be in (0, 1], got {duty_cycle}"
        )
    ledger = np.asarray(counts, dtype=float).ravel()
    if ledger.size == 0 or ledger.max() <= 0:
        raise ConfigurationError("usage ledger must contain some activity")
    model = calibrated_model(rated_pe_mttf_years, beta)
    alphas = ledger / ledger.max() * duty_cycle
    return ServiceLife(
        mttf_hours=model.array_mttf(alphas),
        rated_pe_mttf_years=rated_pe_mttf_years,
        duty_cycle=duty_cycle,
    )


@dataclass(frozen=True)
class ServiceLifeComparison:
    """Baseline vs wear-leveled service life under one deployment."""

    baseline: ServiceLife
    leveled: ServiceLife

    @property
    def improvement(self) -> float:
        """Absolute-life ratio; differs from Eq. 4 because the busiest-PE
        anchor normalizes each scheme to its own peak."""
        return self.leveled.mttf_years / self.baseline.mttf_years

    @property
    def extra_years(self) -> float:
        """Service life gained by wear-leveling."""
        return self.leveled.mttf_years - self.baseline.mttf_years


def compare_service_life(
    baseline_counts,
    leveled_counts,
    duty_cycle: float = 1.0,
    rated_pe_mttf_years: float = 10.0,
    beta: float = JEDEC_BETA,
) -> ServiceLifeComparison:
    """Absolute service-life comparison of two schemes' ledgers.

    Both ledgers are anchored to the *same* stress scale (the busiest PE
    across both schemes runs at ``duty_cycle``), so the ratio reproduces
    Eq. 4 exactly while the absolute numbers stay physically meaningful:
    both schemes process identical work, the wear-leveled one just
    spreads it.
    """
    base = np.asarray(baseline_counts, dtype=float).ravel()
    leveled = np.asarray(leveled_counts, dtype=float).ravel()
    peak = max(base.max(), leveled.max())
    if peak <= 0:
        raise ConfigurationError("ledgers must contain some activity")
    model = calibrated_model(rated_pe_mttf_years, beta)
    results = []
    for ledger in (base, leveled):
        alphas = ledger / peak * duty_cycle
        results.append(
            ServiceLife(
                mttf_hours=model.array_mttf(alphas),
                rated_pe_mttf_years=rated_pe_mttf_years,
                duty_cycle=duty_cycle,
            )
        )
    return ServiceLifeComparison(baseline=results[0], leveled=results[1])
