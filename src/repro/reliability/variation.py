"""Process variation: per-PE wear-rate spread under the Weibull model.

The paper (like most wear-leveling work) assumes identical PEs: one
Weibull scale ``eta`` for the whole array. Real silicon varies — some
PEs wear faster than others regardless of usage. This module samples
lifetimes with a lognormal per-PE scale spread (median ``eta``,
``sigma`` in log space) and answers the natural robustness question:
*does usage-based wear-leveling still help when intrinsic variation,
which no scheduler can see, also drives failures?*

The expected (and measured) answer: yes, but with a shrinking margin —
as ``sigma`` grows, the weakest-PE lottery dominates usage imbalance,
and every scheduling policy converges to the same variation-limited
lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.weibull import WeibullModel


@dataclass(frozen=True)
class VariationPoint:
    """Wear-leveling outcome at one variation level."""

    sigma: float
    baseline_mttf: float
    leveled_mttf: float

    @property
    def improvement(self) -> float:
        """Sampled lifetime ratio of the wear-leveled scheme."""
        return self.leveled_mttf / self.baseline_mttf


@dataclass(frozen=True)
class VariationStudy:
    """Improvement across a sweep of variation strengths."""

    points: Tuple[VariationPoint, ...]

    @property
    def always_improves(self) -> bool:
        """Wear-leveling helps at every variation level."""
        return all(point.improvement > 1.0 for point in self.points)

    @property
    def margin_shrinks_with_variation(self) -> bool:
        """The gain at the strongest variation is below the ideal gain."""
        return self.points[-1].improvement < self.points[0].improvement

    def point_for(self, sigma: float) -> VariationPoint:
        """Look up one sweep point."""
        for point in self.points:
            if point.sigma == sigma:
                return point
        raise KeyError(sigma)


def sample_lifetimes_with_variation(
    alphas,
    sigma: float,
    model: WeibullModel = WeibullModel(),
    num_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sampled array lifetimes under lognormal per-PE scale variation.

    Each sampled array draws a per-PE scale ``eta_i = eta *
    exp(sigma * N(0, 1))`` (median ``eta``) and per-PE stress
    ``S_i ~ Weibull(eta_i, beta)``; PE ``i`` fails at ``S_i / alpha_i``
    and the array at the first failure. ``sigma = 0`` reduces exactly to
    the homogeneous model.
    """
    activities = np.asarray(alphas, dtype=float).ravel()
    if activities.size == 0:
        raise ConfigurationError("need at least one PE activity")
    if np.any(activities < 0):
        raise ConfigurationError("activities must be non-negative")
    if not np.any(activities > 0):
        raise ConfigurationError("at least one PE must be active")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be positive, got {num_samples}")

    rng = rng or np.random.default_rng(2025)
    active = activities > 0
    active_alphas = activities[active]

    shape = (num_samples, active_alphas.size)
    scales = model.eta * np.exp(sigma * rng.standard_normal(shape))
    stress = scales * rng.weibull(model.beta, size=shape)
    times = stress / active_alphas
    return times.min(axis=1)


def run_variation_study(
    baseline_counts,
    leveled_counts,
    sigmas: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    model: WeibullModel = WeibullModel(),
    num_samples: int = 10_000,
    seed: int = 2025,
) -> VariationStudy:
    """Sweep variation strengths for a baseline/wear-leveled ledger pair.

    Common random numbers are used across the two schemes at each sigma
    so the improvement ratio is low-variance.
    """
    base = np.asarray(baseline_counts, dtype=float).ravel()
    leveled = np.asarray(leveled_counts, dtype=float).ravel()
    peak = max(base.max(), leveled.max())
    if peak <= 0:
        raise ConfigurationError("ledgers must contain some activity")
    points = []
    for sigma in sigmas:
        baseline_mttf = float(
            sample_lifetimes_with_variation(
                base / peak,
                sigma,
                model=model,
                num_samples=num_samples,
                rng=np.random.default_rng(seed),
            ).mean()
        )
        leveled_mttf = float(
            sample_lifetimes_with_variation(
                leveled / peak,
                sigma,
                model=model,
                num_samples=num_samples,
                rng=np.random.default_rng(seed),
            ).mean()
        )
        points.append(
            VariationPoint(
                sigma=sigma, baseline_mttf=baseline_mttf, leveled_mttf=leveled_mttf
            )
        )
    return VariationStudy(points=tuple(points))
