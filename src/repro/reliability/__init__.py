"""Lifetime-reliability model (paper Section IV-B).

Each PE wears according to a Weibull distribution (shape ``beta = 3.4``
per JEDEC JEP122H); the PE array is a series system — it works only while
every PE works — so the array's reliability is the product of per-PE
reliabilities evaluated at each PE's *relative active time*
``alpha_ij``. This subpackage provides:

* :mod:`repro.reliability.weibull` — the distribution and array MTTF
  (Eqs. 1-3);
* :mod:`repro.reliability.lifetime` — relative lifetime improvement
  (Eq. 4) and the perfect-wear-leveling upper bound
  ``utilization**(1/beta - 1)`` (Section V-C);
* :mod:`repro.reliability.projection` — transient lifetime / R_diff
  traces from usage snapshots (Fig. 7).
"""

from repro.reliability.endurance import (
    ServiceLife,
    ServiceLifeComparison,
    calibrated_model,
    compare_service_life,
    service_life,
)
from repro.reliability.lifetime import (
    improvement_from_counts,
    lifetime_upper_bound,
    relative_improvement,
    relative_lifetime,
)
from repro.reliability.montecarlo import (
    LifetimeSamples,
    empirical_improvement,
    sample_array_lifetimes,
)
from repro.reliability.projection import LifetimeProjection, project_lifetime
from repro.reliability.variation import (
    VariationStudy,
    run_variation_study,
    sample_lifetimes_with_variation,
)
from repro.reliability.weibull import JEDEC_BETA, WeibullModel

__all__ = [
    "JEDEC_BETA",
    "LifetimeProjection",
    "LifetimeSamples",
    "ServiceLife",
    "ServiceLifeComparison",
    "VariationStudy",
    "WeibullModel",
    "calibrated_model",
    "compare_service_life",
    "empirical_improvement",
    "improvement_from_counts",
    "lifetime_upper_bound",
    "project_lifetime",
    "relative_improvement",
    "relative_lifetime",
    "run_variation_study",
    "sample_array_lifetimes",
    "sample_lifetimes_with_variation",
    "service_life",
]
