"""Monte Carlo validation of the series-system lifetime model.

Eq. 3 gives the array MTTF in closed form under the Weibull wear model.
This module estimates the same quantity by sampling: each PE ``i`` with
relative activity ``alpha_i`` draws a stress-to-failure ``S_i ~
Weibull(eta, beta)`` and fails at wall-clock time ``S_i / alpha_i``; the
array fails at the first PE failure. Sampling many arrays yields an
empirical MTTF whose agreement with Eq. 3 validates the closed form the
paper's Figs. 7-10 rest on — and gives distributional quantities the
closed form cannot (lifetime percentiles, failure-location histograms).

Two sampling modes coexist:

* **legacy generator mode** (``rng=...``): one process, one generator,
  every draw in a single block — byte-compatible with the historical
  behavior the pinned tests rely on;
* **seeded chunk mode** (``seed=...``): draws are split into fixed-size
  chunks, each seeded from its own :meth:`numpy.random.SeedSequence.
  spawn` child. The sample set depends only on ``(seed, chunk_size,
  num_samples)`` — never on how chunks are distributed over workers —
  so serial and parallel runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.weibull import WeibullModel
from repro.runtime import ParallelRunner


@dataclass(frozen=True)
class LifetimeSamples:
    """Result of a Monte Carlo lifetime estimation."""

    lifetimes: np.ndarray
    failure_indices: np.ndarray
    analytic_mttf: float

    @property
    def num_samples(self) -> int:
        """Number of simulated arrays."""
        return int(self.lifetimes.size)

    @property
    def empirical_mttf(self) -> float:
        """Mean simulated time to first PE failure."""
        return float(self.lifetimes.mean())

    @property
    def mttf_standard_error(self) -> float:
        """Standard error of the empirical MTTF."""
        return float(self.lifetimes.std(ddof=1) / np.sqrt(self.num_samples))

    @property
    def relative_error(self) -> float:
        """``|empirical - analytic| / analytic``."""
        if not np.isfinite(self.analytic_mttf) or self.analytic_mttf == 0:
            raise ConfigurationError("analytic MTTF is not finite")
        return abs(self.empirical_mttf - self.analytic_mttf) / self.analytic_mttf

    def percentile(self, q: float) -> float:
        """Lifetime percentile (e.g. ``q=1`` for the B1 early-failure life)."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.lifetimes, q))

    def failure_histogram(self, num_pes: int) -> np.ndarray:
        """How often each PE was the array's first failure."""
        if num_pes < 1:
            raise ConfigurationError(f"num_pes must be positive, got {num_pes}")
        if self.failure_indices.size and self.failure_indices.max() >= num_pes:
            raise ConfigurationError("failure index out of range for num_pes")
        return np.bincount(self.failure_indices, minlength=num_pes)

    def agrees_with_analytic(self, sigma: float = 4.0) -> bool:
        """Whether the closed form lies within ``sigma`` standard errors."""
        return (
            abs(self.empirical_mttf - self.analytic_mttf)
            <= sigma * self.mttf_standard_error
        )


#: Chunk granularity of seeded sampling. Part of the determinism
#: contract: the drawn sample set depends on ``(seed, chunk_size,
#: num_samples)`` and nothing else.
DEFAULT_CHUNK_SIZE = 4096


def _order_statistic_lifetimes(
    stress: np.ndarray, active_alphas: np.ndarray, spares: int
) -> Tuple[np.ndarray, np.ndarray]:
    """First-failure (or ``spares+1``-th) times and their PE columns."""
    times = stress / active_alphas
    order = np.argpartition(times, spares, axis=1)[:, : spares + 1]
    ordered_times = np.take_along_axis(times, order, axis=1)
    which = ordered_times.argmax(axis=1)  # the (spares+1)-th failure
    rows = np.arange(times.shape[0])
    return ordered_times[rows, which], order[rows, which]


def _sample_chunk(spec: Tuple) -> Tuple[np.ndarray, np.ndarray]:
    """Draw one seeded chunk (module-level so the pool can pickle it)."""
    child_seed, count, active_alphas, eta, beta, spares = spec
    chunk_rng = np.random.default_rng(child_seed)
    stress = eta * chunk_rng.weibull(beta, size=(count, active_alphas.size))
    return _order_statistic_lifetimes(stress, active_alphas, spares)


def sample_array_lifetimes(
    alphas,
    model: WeibullModel = WeibullModel(),
    num_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    spares: int = 0,
    seed: Optional[Union[int, np.random.SeedSequence]] = None,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> LifetimeSamples:
    """Monte Carlo estimate of the array MTTF for given PE activities.

    Parameters
    ----------
    alphas:
        Relative activity coefficients (any non-negative array); idle PEs
        (``alpha == 0``) never fail.
    model:
        The Weibull wear model (shape/scale).
    num_samples:
        Simulated arrays. 10k gives a ~1% standard error for beta = 3.4.
    rng:
        Numpy generator for the legacy single-block mode (default:
        seeded with 2025). Mutually exclusive with ``seed``.
    spares:
        Redundancy study: the array survives its first ``spares`` PE
        failures (spare PEs absorb them), so its lifetime is the
        ``spares + 1``-th failure time. ``0`` is the paper's series
        system; the ``analytic_mttf`` field then matches Eq. 3, while for
        ``spares > 0`` it still reports the series-system closed form as
        the no-redundancy reference.
    seed:
        An integer or :class:`numpy.random.SeedSequence` selecting the
        reproducible chunked mode: draws split into ``chunk_size``-sized
        chunks, each seeded from a spawned child, so results are
        bit-identical for any ``jobs`` value.
    jobs:
        Worker processes for the chunked mode (``None`` reads
        ``REPRO_JOBS``; serial by default). Requires ``seed``.
    chunk_size:
        Samples per chunk in the chunked mode. Changing it changes the
        drawn sample set (but never the distribution).
    """
    activities = np.asarray(alphas, dtype=float).ravel()
    if activities.size == 0:
        raise ConfigurationError("need at least one PE activity")
    if np.any(activities < 0):
        raise ConfigurationError("activities must be non-negative")
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be positive, got {num_samples}")
    if not np.any(activities > 0):
        raise ConfigurationError("at least one PE must be active")
    if spares < 0:
        raise ConfigurationError(f"spares must be non-negative, got {spares}")
    if seed is not None and rng is not None:
        raise ConfigurationError("pass either rng (legacy) or seed (chunked), not both")
    if seed is None and jobs is not None and jobs != 1:
        raise ConfigurationError(
            "parallel sampling needs an explicit seed for reproducible chunking"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")

    active = activities > 0
    active_alphas = activities[active]
    active_index = np.nonzero(active)[0]
    if spares >= active_alphas.size:
        raise ConfigurationError(
            f"{spares} spares cannot exceed the {active_alphas.size} active PEs"
        )

    if seed is not None:
        sequence = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        counts = [
            min(chunk_size, num_samples - start)
            for start in range(0, num_samples, chunk_size)
        ]
        children = sequence.spawn(len(counts))
        runner = ParallelRunner(jobs)
        chunks = runner.map(
            _sample_chunk,
            [
                (child, count, active_alphas, model.eta, model.beta, spares)
                for child, count in zip(children, counts)
            ],
            labels=[f"chunk-{index}" for index in range(len(counts))],
        )
        lifetimes = np.concatenate([chunk[0] for chunk in chunks])
        fatal = np.concatenate([chunk[1] for chunk in chunks])
    else:
        # Legacy mode: one generator, every draw in a single block.
        # Stress-to-failure draws: S ~ Weibull(eta, beta); wall-clock
        # failure of PE i at S / alpha_i.
        rng = rng or np.random.default_rng(2025)
        stress = model.eta * rng.weibull(
            model.beta, size=(num_samples, active_alphas.size)
        )
        lifetimes, fatal = _order_statistic_lifetimes(stress, active_alphas, spares)
    failure_indices = active_index[fatal]

    return LifetimeSamples(
        lifetimes=lifetimes,
        failure_indices=failure_indices,
        analytic_mttf=model.array_mttf(activities),
    )


def empirical_improvement(
    baseline_counts,
    wear_leveled_counts,
    model: WeibullModel = WeibullModel(),
    num_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte Carlo analogue of Eq. 4: ratio of empirical MTTFs.

    Uses common random numbers across the two schemes to shrink the
    variance of the ratio estimate.
    """
    seed_rng = rng or np.random.default_rng(2025)
    seed = int(seed_rng.integers(0, 2**31 - 1))
    leveled = sample_array_lifetimes(
        wear_leveled_counts,
        model=model,
        num_samples=num_samples,
        rng=np.random.default_rng(seed),
    )
    base = sample_array_lifetimes(
        baseline_counts,
        model=model,
        num_samples=num_samples,
        rng=np.random.default_rng(seed),
    )
    return leveled.empirical_mttf / base.empirical_mttf
