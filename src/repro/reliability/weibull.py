"""Weibull wear-out model of a PE and of the whole PE array (Eqs. 1-3).

A single PE survives stress time ``t`` with probability
``R(t) = exp(-(t / eta) ** beta)`` (Eq. 1). The array is a series system
of PEs whose individual stress clocks advance at their relative active
rates ``alpha_ij``, so (Eq. 2)

    R_array(t) = exp( - sum_ij (t * alpha_ij / eta) ** beta )

which is again Weibull with an effective scale
``eta_eff = eta / (sum_ij alpha_ij**beta) ** (1/beta)``, giving the
closed-form MTTF of Eq. 3:

    MTTF_array = eta_eff * Gamma(1 + 1/beta).

``beta = 3.4`` follows JEDEC JEP122H; ``eta`` is a technology constant
that cancels out of every relative comparison in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Weibull shape parameter from JEDEC JEP122H wear-out models (paper IV-B).
JEDEC_BETA = 3.4


def _as_alphas(alphas) -> np.ndarray:
    array = np.asarray(alphas, dtype=float)
    if array.size == 0:
        raise ConfigurationError("need at least one PE activity coefficient")
    if np.any(array < 0):
        raise ConfigurationError("activity coefficients must be non-negative")
    return array


@dataclass(frozen=True)
class WeibullModel:
    """Weibull wear-out with shape ``beta`` and scale ``eta``.

    ``eta`` defaults to 1.0 — every paper metric is a ratio in which it
    cancels; pass a calibrated value (in hours) only to report absolute
    lifetimes.
    """

    beta: float = JEDEC_BETA
    eta: float = 1.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ConfigurationError(f"Weibull beta must be positive, got {self.beta}")
        if self.eta <= 0:
            raise ConfigurationError(f"Weibull eta must be positive, got {self.eta}")

    # ------------------------------------------------------------------
    # Single PE (Eq. 1)
    # ------------------------------------------------------------------
    def reliability(self, t) -> np.ndarray:
        """Survival probability ``R(t)`` of one fully active PE."""
        time = np.asarray(t, dtype=float)
        if np.any(time < 0):
            raise ConfigurationError("stress time must be non-negative")
        return np.exp(-((time / self.eta) ** self.beta))

    def cdf(self, t) -> np.ndarray:
        """Failure CDF ``F(t) = 1 - R(t)``."""
        return 1.0 - self.reliability(t)

    @property
    def mttf(self) -> float:
        """Mean time to failure of one fully active PE."""
        return self.eta * math.gamma(1.0 + 1.0 / self.beta)

    # ------------------------------------------------------------------
    # Series PE array (Eqs. 2-3)
    # ------------------------------------------------------------------
    def stress_norm(self, alphas) -> float:
        """The aggregation ``(sum alpha_ij**beta) ** (1/beta)``.

        This is the only usage statistic the lifetime math depends on; it
        is a power-mean norm, so balanced usage vectors minimize it for a
        fixed total (beta > 1), which is the formal reason wear-leveling
        helps.
        """
        array = _as_alphas(alphas)
        total = float(np.sum(array**self.beta))
        return total ** (1.0 / self.beta)

    def array_reliability(self, alphas, t) -> np.ndarray:
        """Eq. 2: survival probability of the series PE array at ``t``."""
        norm = self.stress_norm(alphas)
        time = np.asarray(t, dtype=float)
        if np.any(time < 0):
            raise ConfigurationError("stress time must be non-negative")
        return np.exp(-((time * norm / self.eta) ** self.beta))

    def array_mttf(self, alphas) -> float:
        """Eq. 3: mean time to failure of the series PE array.

        Infinite when every PE is idle (zero stress).
        """
        norm = self.stress_norm(alphas)
        if norm == 0.0:
            return float("inf")
        return (self.eta / norm) * math.gamma(1.0 + 1.0 / self.beta)
