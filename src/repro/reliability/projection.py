"""Transient lifetime projection (Fig. 7).

Fig. 7 plots, for the first 200 iterations of SqueezeNet under RWL+RO,
how the accelerator's projected lifetime and the imbalance ratio
``R_diff`` evolve together: ``R_diff`` converges toward 0 and the
projected lifetime (relative to a perfectly wear-leveled array doing the
same work) inversely follows it toward 1.

:func:`project_lifetime` turns the usage snapshots recorded by the engine
(``record_snapshots=True``) into those two series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.engine import RunResult
from repro.errors import SimulationError
from repro.reliability.lifetime import relative_lifetime
from repro.reliability.weibull import JEDEC_BETA


@dataclass(frozen=True)
class LifetimeProjection:
    """Per-iteration projected lifetime and R_diff series."""

    iterations: np.ndarray
    relative_lifetime: np.ndarray
    r_diff: np.ndarray

    def __post_init__(self) -> None:
        n = self.iterations.size
        if self.relative_lifetime.size != n or self.r_diff.size != n:
            raise SimulationError("projection series lengths must match")

    @property
    def final_lifetime(self) -> float:
        """Projected relative lifetime after the last iteration."""
        return float(self.relative_lifetime[-1])

    @property
    def final_r_diff(self) -> float:
        """R_diff after the last iteration."""
        return float(self.r_diff[-1])

    def converged(self, lifetime_floor: float = 0.95, r_diff_ceiling: float = 0.1) -> bool:
        """Whether the run reached near-perfect wear-leveling."""
        return (
            self.final_lifetime >= lifetime_floor
            and self.final_r_diff <= r_diff_ceiling
        )


def project_lifetime(result: RunResult, beta: float = JEDEC_BETA) -> LifetimeProjection:
    """Build the Fig. 7 series from an engine run with snapshots.

    Raises :class:`SimulationError` if the run was not executed with
    ``record_snapshots=True``.
    """
    if result.snapshots is None or len(result.snapshots) == 0:
        raise SimulationError(
            "lifetime projection needs usage snapshots; rerun the engine "
            "with record_snapshots=True"
        )
    return project_lifetime_from_snapshots(
        result.snapshots, beta=beta, first_iteration=1
    )


def project_lifetime_from_snapshots(
    snapshots: Sequence[np.ndarray],
    beta: float = JEDEC_BETA,
    first_iteration: int = 1,
) -> LifetimeProjection:
    """The same projection from a raw snapshot sequence."""
    if len(snapshots) == 0:
        raise SimulationError("need at least one usage snapshot")
    iterations = np.arange(
        first_iteration, first_iteration + len(snapshots), dtype=np.int64
    )
    lifetimes = np.empty(len(snapshots), dtype=float)
    r_diffs = np.empty(len(snapshots), dtype=float)
    for index, snapshot in enumerate(snapshots):
        counts = np.asarray(snapshot, dtype=float)
        lifetimes[index] = relative_lifetime(counts, beta=beta)
        low = counts.min()
        diff = counts.max() - low
        if diff == 0:
            r_diffs[index] = 0.0
        elif low == 0:
            r_diffs[index] = float("inf")
        else:
            r_diffs[index] = diff / low
    return LifetimeProjection(
        iterations=iterations, relative_lifetime=lifetimes, r_diff=r_diffs
    )
