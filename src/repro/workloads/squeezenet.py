"""SqueezeNet v1.0 layer table (Iandola et al., 2016).

Fire modules squeeze the channel count with 1x1 convolutions and expand
with parallel 1x1/3x3 branches whose outputs concatenate — the "small
weights" entry of the paper's Table II and the workload behind
Figs. 2b, 6, 7, and 10.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _fire(builder: NetworkBuilder, index: int, squeeze: int, expand: int) -> None:
    """One fire module: squeeze 1x1, then parallel expand 1x1 and 3x3."""
    builder.conv(squeeze, 1, name=f"fire{index}_squeeze1x1")
    builder.conv(expand, 1, name=f"fire{index}_expand1x1", update_state=False)
    builder.conv(expand, 3, name=f"fire{index}_expand3x3", update_state=False)
    builder.set_channels(2 * expand)


def build(input_hw=(224, 224)) -> Network:
    """SqueezeNet v1.0; ``input_hw`` must be at least 63x63 (valid conv1
    plus three 3x3/2 pools)."""
    builder = NetworkBuilder(
        name="SqueezeNet",
        abbreviation="Sqz",
        domain="Lightweight network",
        feature="Small weights",
        input_hw=input_hw,
    )
    builder.conv(96, 7, stride=2, padding="valid", name="conv1")  # 109x109
    builder.pool(3, 2)  # 54x54
    _fire(builder, 2, squeeze=16, expand=64)
    _fire(builder, 3, squeeze=16, expand=64)
    _fire(builder, 4, squeeze=32, expand=128)
    builder.pool(3, 2)  # 26x26
    _fire(builder, 5, squeeze=32, expand=128)
    _fire(builder, 6, squeeze=48, expand=192)
    _fire(builder, 7, squeeze=48, expand=192)
    _fire(builder, 8, squeeze=64, expand=256)
    builder.pool(3, 2)  # 12x12
    _fire(builder, 9, squeeze=64, expand=256)
    builder.conv(1000, 1, name="conv10")
    return builder.build()
