"""MobileNet v3-Large layer table (Howard et al., 2019).

Inverted-residual "bneck" blocks: pointwise expansion, depthwise
convolution (3x3 or 5x5), optional squeeze-and-excitation, pointwise
projection — the "group conv" entry of Table II and one of the small
networks where the paper reports RWL-only visibly trailing RWL+RO.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _bneck(
    builder: NetworkBuilder,
    index: int,
    kernel: int,
    expand: int,
    out_channels: int,
    stride: int = 1,
    se: bool = False,
) -> None:
    """One inverted-residual block of MobileNet v3."""
    in_channels = builder.channels
    if expand != in_channels:
        builder.conv(expand, 1, name=f"bneck{index}_expand")
    builder.dwconv(kernel, stride=stride, name=f"bneck{index}_dw")
    if se:
        squeezed = max(8, expand // 4)
        builder.fc(squeezed, in_features=expand, name=f"bneck{index}_se_reduce")
        builder.fc(expand, in_features=squeezed, name=f"bneck{index}_se_expand")
        builder.set_channels(expand)
    builder.conv(out_channels, 1, name=f"bneck{index}_project")


#: (kernel, expansion, output channels, stride, squeeze-excite) per block,
#: following Table 1 of the MobileNetV3 paper (Large variant).
_BNECK_TABLE = (
    (3, 16, 16, 1, False),
    (3, 64, 24, 2, False),
    (3, 72, 24, 1, False),
    (5, 72, 40, 2, True),
    (5, 120, 40, 1, True),
    (5, 120, 40, 1, True),
    (3, 240, 80, 2, False),
    (3, 200, 80, 1, False),
    (3, 184, 80, 1, False),
    (3, 184, 80, 1, False),
    (3, 480, 112, 1, True),
    (3, 672, 112, 1, True),
    (5, 672, 160, 2, True),
    (5, 960, 160, 1, True),
    (5, 960, 160, 1, True),
)


def build(input_hw=(224, 224)) -> Network:
    """MobileNet v3-Large at a configurable input size."""
    builder = NetworkBuilder(
        name="MobileNet v3",
        abbreviation="Mb",
        domain="Lightweight network",
        feature="Group Conv.",
        input_hw=input_hw,
    )
    builder.conv(16, 3, stride=2, name="conv_stem")  # 112x112
    for index, (kernel, expand, out_channels, stride, se) in enumerate(
        _BNECK_TABLE, start=1
    ):
        _bneck(builder, index, kernel, expand, out_channels, stride=stride, se=se)
    builder.conv(960, 1, name="conv_head")
    builder.global_pool()
    builder.fc(1280, name="fc_features")
    builder.fc(1000, name="fc_logits")
    return builder.build()
