"""MobileViT-S layer table (Mehta & Rastegari, 2021).

MobileNetV2-style inverted residual blocks interleaved with MobileViT
blocks that unfold the feature map into patches and run small
transformers over them — the "embedded transformer" entry of Table II,
and the third of the small networks where residual optimization shows a
visible gain over RWL alone.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _mv2(
    builder: NetworkBuilder,
    name: str,
    out_channels: int,
    stride: int = 1,
    expand_ratio: int = 4,
) -> None:
    """One MobileNetV2 inverted-residual block."""
    expanded = builder.channels * expand_ratio
    builder.conv(expanded, 1, name=f"{name}_expand")
    builder.dwconv(3, stride=stride, name=f"{name}_dw")
    builder.conv(out_channels, 1, name=f"{name}_project")


def _mobilevit_block(
    builder: NetworkBuilder,
    name: str,
    dim: int,
    depth: int,
    mlp_dim: int,
    patch_area: int = 4,
) -> None:
    """One MobileViT block: local convs + a patch-level transformer."""
    channels = builder.channels
    h, w = builder.hw
    tokens = max(1, (h * w) // patch_area)
    builder.conv(channels, 3, name=f"{name}_local3x3")
    builder.conv(dim, 1, name=f"{name}_local1x1")
    for layer in range(1, depth + 1):
        prefix = f"{name}_t{layer}"
        builder.gemm(tokens * patch_area, 3 * dim, dim, name=f"{prefix}_qkv")
        builder.gemm(tokens * patch_area, patch_area, dim // 4, name=f"{prefix}_attn_qk")
        builder.gemm(tokens * patch_area, dim // 4, patch_area, name=f"{prefix}_attn_av")
        builder.gemm(tokens * patch_area, dim, dim, name=f"{prefix}_proj")
        builder.gemm(tokens * patch_area, mlp_dim, dim, name=f"{prefix}_mlp_fc1")
        builder.gemm(tokens * patch_area, dim, mlp_dim, name=f"{prefix}_mlp_fc2")
    builder.set_channels(dim)
    builder.conv(channels, 1, name=f"{name}_fold1x1")
    builder.set_channels(2 * channels)  # concat with the residual input
    builder.conv(channels, 3, name=f"{name}_fuse3x3")


def build(input_hw=(256, 256)) -> Network:
    """MobileViT-S at a configurable input size."""
    builder = NetworkBuilder(
        name="MobileViT",
        abbreviation="MVT",
        domain="Transformer",
        feature="Embedded transformer",
        input_hw=input_hw,
    )
    builder.conv(16, 3, stride=2, name="conv_stem")  # 128
    _mv2(builder, "mv2_1", 32)
    _mv2(builder, "mv2_2", 64, stride=2)  # 64
    _mv2(builder, "mv2_3", 64)
    _mv2(builder, "mv2_4", 64)
    _mv2(builder, "mv2_5", 96, stride=2)  # 32
    _mobilevit_block(builder, "mvit1", dim=144, depth=2, mlp_dim=288)
    _mv2(builder, "mv2_6", 128, stride=2)  # 16
    _mobilevit_block(builder, "mvit2", dim=192, depth=4, mlp_dim=384)
    _mv2(builder, "mv2_7", 160, stride=2)  # 8
    _mobilevit_block(builder, "mvit3", dim=240, depth=3, mlp_dim=480)
    builder.conv(640, 1, name="conv_head")
    builder.global_pool()
    builder.fc(1000, name="fc_logits")
    return builder.build()
