"""Llama 2 (7B) layer table (Touvron et al., 2023).

A 512-token prefill pass through all 32 decoder blocks, each expressed as
GEMMs: Q/K/V/O projections (4096x4096), attention score and context
matmuls, and the SwiGLU MLP (gate/up 4096->11008, down 11008->4096) —
the "large language model" entry of Table II. Every matmul is enormous
relative to the 14x12 array, so utilization spaces are large and tile
counts are in the hundreds of thousands.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder

#: Llama-2-7B hyper-parameters.
_HIDDEN = 4096
_HEADS = 32
_HEAD_DIM = _HIDDEN // _HEADS
_FFN = 11008
_SEQ = 512  # default prefill length; build(seq_len=...) overrides
_VOCAB = 32000
_BLOCKS = 32


def _decoder_block(builder: NetworkBuilder, name: str, seq_len: int) -> None:
    """One decoder block as nine GEMMs."""
    builder.gemm(seq_len, _HIDDEN, _HIDDEN, name=f"{name}_q")
    builder.gemm(seq_len, _HIDDEN, _HIDDEN, name=f"{name}_k")
    builder.gemm(seq_len, _HIDDEN, _HIDDEN, name=f"{name}_v")
    builder.gemm(seq_len * _HEADS, seq_len, _HEAD_DIM, name=f"{name}_attn_qk")
    builder.gemm(seq_len * _HEADS, _HEAD_DIM, seq_len, name=f"{name}_attn_av")
    builder.gemm(seq_len, _HIDDEN, _HIDDEN, name=f"{name}_o")
    builder.gemm(seq_len, _FFN, _HIDDEN, name=f"{name}_gate")
    builder.gemm(seq_len, _FFN, _HIDDEN, name=f"{name}_up")
    builder.gemm(seq_len, _HIDDEN, _FFN, name=f"{name}_down")


def build(seq_len: int = _SEQ) -> Network:
    """Llama 2 7B prefill at a configurable sequence length."""
    builder = NetworkBuilder(
        name="Llama v2",
        abbreviation="LM",
        domain="Transformer",
        feature="Large language model",
        input_hw=(1, 1),
        input_channels=_HIDDEN,
    )
    for index in range(1, _BLOCKS + 1):
        _decoder_block(builder, f"blk{index:02d}", seq_len)
    builder.gemm(seq_len, _VOCAB, _HIDDEN, name="lm_head")
    return builder.build()
