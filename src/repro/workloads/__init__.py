"""DNN workload definitions (paper Table II).

Nine networks spanning four domains, matching the paper's roster:

* image classification — ResNet-50, Inception v4;
* object detection — YOLO v3;
* lightweight networks — SqueezeNet, MobileNet v3, EfficientNet;
* transformers — ViT, MobileViT, Llama 2.

Workloads are layer-*shape* tables (what the scheduler consumes), built
with :class:`repro.workloads.base.NetworkBuilder`, which tracks feature-
map geometry through the network so each entry states only the layer's
hyper-parameters.
"""

from repro.workloads.base import Network, NetworkBuilder
from repro.workloads.registry import (
    all_networks,
    extra_network_names,
    get_network,
    network_abbreviations,
    network_names,
)

__all__ = [
    "Network",
    "NetworkBuilder",
    "all_networks",
    "extra_network_names",
    "get_network",
    "network_abbreviations",
    "network_names",
]
