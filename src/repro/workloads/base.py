"""Network containers and the builder used to define workload tables.

:class:`NetworkBuilder` tracks the running feature-map size and channel
count so network definitions read like the architecture tables in the
original papers: each call states a layer's hyper-parameters and the
builder derives the full :class:`~repro.dataflow.layer.LayerShape`.

Only MAC-bearing layers are emitted (conv / depthwise conv / GEMM);
pooling, activation, and normalization update the tracked geometry but
run outside the PE array, matching how dataflow schedulers treat them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dataflow.layer import LayerShape
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Network:
    """A named, ordered collection of MAC-bearing layers."""

    name: str
    abbreviation: str
    domain: str
    feature: str
    layers: Tuple[LayerShape, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers")
        if not self.name or not self.abbreviation:
            raise WorkloadError("network needs a name and an abbreviation")

    @property
    def num_layers(self) -> int:
        """Number of MAC-bearing layers."""
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total MAC operations of one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total parameter footprint in bytes."""
        return sum(layer.weight_bytes for layer in self.layers)

    def describe(self) -> str:
        """One-line roster entry (Table II style)."""
        return (
            f"{self.name} ({self.abbreviation}): {self.domain}; "
            f"{self.num_layers} layers, {self.total_macs / 1e9:.2f} GMAC, "
            f"{self.total_weight_bytes / 1e6:.1f} MB weights"
        )


def _out_size(size: int, kernel: int, stride: int, padding: str) -> int:
    """Output spatial extent of a conv/pool window."""
    if padding == "same":
        return math.ceil(size / stride)
    if padding == "valid":
        out = (size - kernel) // stride + 1
        if out < 1:
            raise WorkloadError(
                f"valid conv with kernel {kernel} stride {stride} does not "
                f"fit input size {size}"
            )
        return out
    raise WorkloadError(f"unknown padding {padding!r}; use 'same' or 'valid'")


@dataclass
class NetworkBuilder:
    """Incrementally defines a network, tracking geometry between layers.

    Parameters
    ----------
    name, abbreviation, domain, feature:
        Roster metadata (paper Table II columns).
    input_hw:
        Input feature-map size ``(height, width)``.
    input_channels:
        Input channel count (3 for RGB image networks).
    """

    name: str
    abbreviation: str
    domain: str
    feature: str
    input_hw: Tuple[int, int]
    input_channels: int = 3
    _layers: List[LayerShape] = field(default_factory=list)
    _hw: Optional[Tuple[int, int]] = None
    _channels: Optional[int] = None
    _counter: int = 0

    def __post_init__(self) -> None:
        if min(self.input_hw) < 1 or self.input_channels < 1:
            raise WorkloadError(
                f"network {self.name!r}: input geometry must be positive"
            )
        self._hw = self.input_hw
        self._channels = self.input_channels

    # ------------------------------------------------------------------
    # Geometry state
    # ------------------------------------------------------------------
    @property
    def hw(self) -> Tuple[int, int]:
        """Current feature-map size ``(height, width)``."""
        return self._hw

    @property
    def channels(self) -> int:
        """Current channel count."""
        return self._channels

    def set_channels(self, channels: int) -> None:
        """Override the tracked channel count (after a concat, say)."""
        if channels < 1:
            raise WorkloadError(f"channel count must be positive, got {channels}")
        self._channels = channels

    def set_hw(self, hw: Tuple[int, int]) -> None:
        """Override the tracked feature-map size (after an upsample, say)."""
        if min(hw) < 1:
            raise WorkloadError(f"feature-map size must be positive, got {hw}")
        self._hw = hw

    def _next_name(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter:03d}"

    # ------------------------------------------------------------------
    # MAC-bearing layers
    # ------------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel,
        stride: int = 1,
        padding: str = "same",
        in_channels: Optional[int] = None,
        name: Optional[str] = None,
        update_state: bool = True,
    ) -> LayerShape:
        """Append a standard convolution and advance the geometry.

        ``kernel`` may be an int (square) or an ``(R, S)`` pair —
        asymmetric kernels cover Inception's 1x7/7x1 convolutions.
        Pass ``update_state=False`` for parallel branches whose outputs
        merge later (then call :meth:`set_channels` / :meth:`set_hw` with
        the merged geometry).
        """
        r, s = (kernel, kernel) if isinstance(kernel, int) else kernel
        h, w = self._hw
        p = _out_size(h, r, stride, padding)
        q = _out_size(w, s, stride, padding)
        layer = LayerShape.conv(
            name or self._next_name("conv"),
            out_channels=out_channels,
            in_channels=in_channels if in_channels is not None else self._channels,
            out_hw=(p, q),
            kernel=(r, s),
            stride=stride,
        )
        self._layers.append(layer)
        if update_state:
            self._hw = (p, q)
            self._channels = out_channels
        return layer

    def dwconv(
        self,
        kernel,
        stride: int = 1,
        padding: str = "same",
        channels: Optional[int] = None,
        name: Optional[str] = None,
        update_state: bool = True,
    ) -> LayerShape:
        """Append a depthwise convolution over the current channels."""
        r, s = (kernel, kernel) if isinstance(kernel, int) else kernel
        h, w = self._hw
        p = _out_size(h, r, stride, padding)
        q = _out_size(w, s, stride, padding)
        layer = LayerShape.depthwise(
            name or self._next_name("dwconv"),
            channels=channels if channels is not None else self._channels,
            out_hw=(p, q),
            kernel=(r, s),
            stride=stride,
        )
        self._layers.append(layer)
        if update_state:
            self._hw = (p, q)
        return layer

    def fc(
        self,
        out_features: int,
        in_features: Optional[int] = None,
        rows: int = 1,
        name: Optional[str] = None,
    ) -> LayerShape:
        """Append a fully-connected layer (GEMM with ``rows`` rows)."""
        inner = in_features if in_features is not None else self._channels
        layer = LayerShape.gemm(
            name or self._next_name("fc"), rows=rows, cols=out_features, inner=inner
        )
        self._layers.append(layer)
        self._channels = out_features
        return layer

    def gemm(
        self, rows: int, cols: int, inner: int, name: Optional[str] = None
    ) -> LayerShape:
        """Append an explicit GEMM (transformer matmuls)."""
        layer = LayerShape.gemm(
            name or self._next_name("gemm"), rows=rows, cols=cols, inner=inner
        )
        self._layers.append(layer)
        return layer

    # ------------------------------------------------------------------
    # Geometry-only operations (no MACs on the PE array)
    # ------------------------------------------------------------------
    def pool(self, kernel: int, stride: int, padding: str = "valid") -> None:
        """Apply a pooling window to the tracked feature-map size."""
        h, w = self._hw
        self._hw = (
            _out_size(h, kernel, stride, padding),
            _out_size(w, kernel, stride, padding),
        )

    def global_pool(self) -> None:
        """Collapse the feature map to 1x1."""
        self._hw = (1, 1)

    def upsample(self, factor: int) -> None:
        """Scale the feature map up by an integer factor."""
        if factor < 1:
            raise WorkloadError(f"upsample factor must be >= 1, got {factor}")
        h, w = self._hw
        self._hw = (h * factor, w * factor)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Network:
        """Produce the immutable :class:`Network`."""
        return Network(
            name=self.name,
            abbreviation=self.abbreviation,
            domain=self.domain,
            feature=self.feature,
            layers=tuple(self._layers),
        )
