"""Extra workloads beyond the paper's Table II roster.

Classic networks users commonly want to sanity-check a scheduler or
wear-leveling study against. They are *not* part of the paper's
evaluation and never appear in the figure drivers; resolve them with
:func:`repro.workloads.registry.get_network` like any other network, or
enumerate them via :func:`repro.workloads.registry.extra_network_names`.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def build_alexnet() -> Network:
    """AlexNet (Krizhevsky et al., 2012) at 227x227 input."""
    builder = NetworkBuilder(
        name="AlexNet",
        abbreviation="Alx",
        domain="Image classification",
        feature="Classic CNN",
        input_hw=(227, 227),
    )
    builder.conv(96, 11, stride=4, padding="valid", name="conv1")  # 55
    builder.pool(3, 2)  # 27
    builder.conv(256, 5, name="conv2")
    builder.pool(3, 2)  # 13
    builder.conv(384, 3, name="conv3")
    builder.conv(384, 3, name="conv4")
    builder.conv(256, 3, name="conv5")
    builder.pool(3, 2)  # 6
    builder.fc(4096, in_features=256 * 6 * 6, name="fc6")
    builder.fc(4096, name="fc7")
    builder.fc(1000, name="fc8")
    return builder.build()


def build_vgg16() -> Network:
    """VGG-16 (Simonyan & Zisserman, 2015) at 224x224 input."""
    builder = NetworkBuilder(
        name="VGG-16",
        abbreviation="Vgg",
        domain="Image classification",
        feature="Deep 3x3 stacks",
        input_hw=(224, 224),
    )
    plan = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))
    for stage, (channels, repeats) in enumerate(plan, start=1):
        for repeat in range(1, repeats + 1):
            builder.conv(channels, 3, name=f"conv{stage}_{repeat}")
        builder.pool(2, 2)
    builder.fc(4096, in_features=512 * 7 * 7, name="fc6")
    builder.fc(4096, name="fc7")
    builder.fc(1000, name="fc8")
    return builder.build()


def build_bert_base(seq_len: int = 384) -> Network:
    """BERT-base (Devlin et al., 2019): 12 encoder blocks as GEMMs."""
    hidden, heads, mlp = 768, 12, 3072
    head_dim = hidden // heads
    builder = NetworkBuilder(
        name="BERT-base",
        abbreviation="Brt",
        domain="Transformer",
        feature="Bidirectional encoder",
        input_hw=(1, 1),
        input_channels=hidden,
    )
    for index in range(1, 13):
        prefix = f"enc{index:02d}"
        builder.gemm(seq_len, 3 * hidden, hidden, name=f"{prefix}_qkv")
        builder.gemm(seq_len * heads, seq_len, head_dim, name=f"{prefix}_attn_qk")
        builder.gemm(seq_len * heads, head_dim, seq_len, name=f"{prefix}_attn_av")
        builder.gemm(seq_len, hidden, hidden, name=f"{prefix}_proj")
        builder.gemm(seq_len, mlp, hidden, name=f"{prefix}_mlp_fc1")
        builder.gemm(seq_len, hidden, mlp, name=f"{prefix}_mlp_fc2")
    builder.gemm(seq_len, hidden, hidden, name="pooler")
    return builder.build()
