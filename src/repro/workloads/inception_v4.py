"""Inception v4 layer table (Szegedy et al., 2017).

Stem plus Inception-A/B/C blocks with the reduction blocks between them.
The asymmetric 1x7 / 7x1 / 1x3 / 3x1 convolutions are the "asymmetric
weights" feature of Table II — they produce strongly non-square
utilization spaces, which stresses the wear-leveling geometry.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _stem(builder: NetworkBuilder) -> None:
    builder.conv(32, 3, stride=2, padding="valid", name="stem_conv1")  # 149
    builder.conv(32, 3, padding="valid", name="stem_conv2")  # 147
    builder.conv(64, 3, name="stem_conv3")  # 147
    # mixed_3a: maxpool || conv stride-2, concatenated.
    builder.conv(96, 3, stride=2, padding="valid", name="stem_mixed3a_conv")  # 73
    builder.set_channels(96 + 64)
    # mixed_4a: two branches ending in valid 3x3 convs to 71x71.
    branch_in = builder.channels
    builder.conv(64, 1, name="stem_m4a_b1_conv1", update_state=False)
    builder.conv(
        96, 3, padding="valid", in_channels=64, name="stem_m4a_b1_conv2",
        update_state=False,
    )
    builder.conv(64, 1, in_channels=branch_in, name="stem_m4a_b2_conv1")
    builder.conv(64, (7, 1), name="stem_m4a_b2_conv2")
    builder.conv(64, (1, 7), name="stem_m4a_b2_conv3")
    builder.conv(96, 3, padding="valid", name="stem_m4a_b2_conv4")  # 71
    builder.set_channels(96 + 96)
    # mixed_5a: conv stride-2 || maxpool.
    builder.conv(192, 3, stride=2, padding="valid", name="stem_mixed5a_conv")  # 35
    builder.set_channels(192 + 192)


def _inception_a(builder: NetworkBuilder, name: str) -> None:
    in_channels = builder.channels
    builder.conv(96, 1, name=f"{name}_b1_conv", update_state=False)
    builder.conv(64, 1, name=f"{name}_b2_conv1", update_state=False)
    builder.conv(96, 3, in_channels=64, name=f"{name}_b2_conv2", update_state=False)
    builder.conv(64, 1, name=f"{name}_b3_conv1", update_state=False)
    builder.conv(96, 3, in_channels=64, name=f"{name}_b3_conv2", update_state=False)
    builder.conv(96, 3, in_channels=96, name=f"{name}_b3_conv3", update_state=False)
    builder.conv(96, 1, name=f"{name}_pool_conv", update_state=False)
    builder.set_channels(96 * 4)


def _reduction_a(builder: NetworkBuilder) -> None:
    in_channels = builder.channels  # 384
    builder.conv(
        384, 3, stride=2, padding="valid", name="redA_b1_conv", update_state=False
    )
    builder.conv(192, 1, name="redA_b2_conv1")
    builder.conv(224, 3, name="redA_b2_conv2")
    builder.conv(256, 3, stride=2, padding="valid", name="redA_b2_conv3")  # 17
    builder.set_channels(384 + 256 + in_channels)  # + pooled passthrough


def _inception_b(builder: NetworkBuilder, name: str) -> None:
    in_channels = builder.channels
    builder.conv(384, 1, name=f"{name}_b1_conv", update_state=False)
    builder.conv(192, 1, name=f"{name}_b2_conv1", update_state=False)
    builder.conv(
        224, (1, 7), in_channels=192, name=f"{name}_b2_conv2", update_state=False
    )
    builder.conv(
        256, (7, 1), in_channels=224, name=f"{name}_b2_conv3", update_state=False
    )
    builder.conv(192, 1, name=f"{name}_b3_conv1", update_state=False)
    builder.conv(
        192, (7, 1), in_channels=192, name=f"{name}_b3_conv2", update_state=False
    )
    builder.conv(
        224, (1, 7), in_channels=192, name=f"{name}_b3_conv3", update_state=False
    )
    builder.conv(
        224, (7, 1), in_channels=224, name=f"{name}_b3_conv4", update_state=False
    )
    builder.conv(
        256, (1, 7), in_channels=224, name=f"{name}_b3_conv5", update_state=False
    )
    builder.conv(128, 1, name=f"{name}_pool_conv", update_state=False)
    builder.set_channels(384 + 256 + 256 + 128)


def _reduction_b(builder: NetworkBuilder) -> None:
    in_channels = builder.channels  # 1024
    builder.conv(192, 1, name="redB_b1_conv1", update_state=False)
    builder.conv(
        192, 3, stride=2, padding="valid", in_channels=192, name="redB_b1_conv2",
        update_state=False,
    )
    builder.conv(256, 1, name="redB_b2_conv1")
    builder.conv(256, (1, 7), name="redB_b2_conv2")
    builder.conv(320, (7, 1), name="redB_b2_conv3")
    builder.conv(320, 3, stride=2, padding="valid", name="redB_b2_conv4")  # 8
    builder.set_channels(192 + 320 + in_channels)  # + pooled passthrough


def _inception_c(builder: NetworkBuilder, name: str) -> None:
    in_channels = builder.channels
    builder.conv(256, 1, name=f"{name}_b1_conv", update_state=False)
    builder.conv(384, 1, name=f"{name}_b2_conv1", update_state=False)
    builder.conv(
        256, (1, 3), in_channels=384, name=f"{name}_b2_conv2a", update_state=False
    )
    builder.conv(
        256, (3, 1), in_channels=384, name=f"{name}_b2_conv2b", update_state=False
    )
    builder.conv(384, 1, name=f"{name}_b3_conv1", update_state=False)
    builder.conv(
        448, (1, 3), in_channels=384, name=f"{name}_b3_conv2", update_state=False
    )
    builder.conv(
        512, (3, 1), in_channels=448, name=f"{name}_b3_conv3", update_state=False
    )
    builder.conv(
        256, (3, 1), in_channels=512, name=f"{name}_b3_conv4a", update_state=False
    )
    builder.conv(
        256, (1, 3), in_channels=512, name=f"{name}_b3_conv4b", update_state=False
    )
    builder.conv(256, 1, name=f"{name}_pool_conv", update_state=False)
    builder.set_channels(256 * 4 + 512)


def build() -> Network:
    """Inception v4 at 299x299 input."""
    builder = NetworkBuilder(
        name="Inception v4",
        abbreviation="Inc",
        domain="Image classification",
        feature="Asymmetric weights",
        input_hw=(299, 299),
    )
    _stem(builder)
    for index in range(1, 5):
        _inception_a(builder, f"incA{index}")
    _reduction_a(builder)
    for index in range(1, 8):
        _inception_b(builder, f"incB{index}")
    _reduction_b(builder)
    for index in range(1, 4):
        _inception_c(builder, f"incC{index}")
    builder.global_pool()
    builder.fc(1000, name="fc_logits")
    return builder.build()
