"""ViT-B/16 layer table (Dosovitskiy et al., 2020).

Patch embedding as a strided convolution, then 12 transformer encoder
blocks expressed as GEMMs (QKV projection, attention score and context
matmuls, output projection, two MLP matmuls) over the token sequence —
the "transformer encoding" entry of Table II. The input resolution is
configurable (multiples of the 16-pixel patch); the token count follows.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Network, NetworkBuilder

#: ViT-Base hyper-parameters.
_EMBED = 768
_HEADS = 12
_HEAD_DIM = _EMBED // _HEADS
_MLP = 3072
_PATCH = 16


def _encoder_block(builder: NetworkBuilder, name: str, tokens: int) -> None:
    """One transformer encoder block as six GEMMs."""
    builder.gemm(tokens, 3 * _EMBED, _EMBED, name=f"{name}_qkv")
    # Attention scores Q @ K^T and context (scores @ V), batched over
    # heads: rows = tokens * heads.
    builder.gemm(tokens * _HEADS, tokens, _HEAD_DIM, name=f"{name}_attn_qk")
    builder.gemm(tokens * _HEADS, _HEAD_DIM, tokens, name=f"{name}_attn_av")
    builder.gemm(tokens, _EMBED, _EMBED, name=f"{name}_proj")
    builder.gemm(tokens, _MLP, _EMBED, name=f"{name}_mlp_fc1")
    builder.gemm(tokens, _EMBED, _MLP, name=f"{name}_mlp_fc2")


def build(input_hw=(224, 224)) -> Network:
    """ViT-B/16; ``input_hw`` must be a multiple of the 16-pixel patch."""
    if input_hw[0] % _PATCH or input_hw[1] % _PATCH:
        raise WorkloadError(
            f"ViT-B/16 needs inputs divisible by {_PATCH}, got {input_hw}"
        )
    tokens = (input_hw[0] // _PATCH) * (input_hw[1] // _PATCH) + 1  # + class
    builder = NetworkBuilder(
        name="ViT",
        abbreviation="VT",
        domain="Transformer",
        feature="Transformer encoding",
        input_hw=input_hw,
    )
    builder.conv(_EMBED, _PATCH, stride=_PATCH, name="patch_embed")
    for index in range(1, 13):
        _encoder_block(builder, f"enc{index:02d}", tokens)
    builder.gemm(1, 1000, _EMBED, name="head")
    return builder.build()
