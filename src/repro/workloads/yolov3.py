"""YOLO v3 layer table (Redmon & Farhadi, 2018).

Darknet-53 backbone plus the three multi-scale detection heads at
13x13, 26x26, and 52x52 — the "large dataset" entry of Table II. YOLO v3
has the lowest PE-utilization ratios of the paper's workloads and
correspondingly the largest reported lifetime gain (2.37x).
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _residual(builder: NetworkBuilder, name: str, channels: int) -> None:
    """One Darknet residual block: 1x1 halve, 3x3 restore."""
    builder.conv(channels // 2, 1, name=f"{name}_conv1")
    builder.conv(channels, 3, name=f"{name}_conv2")


def _detection_block(builder: NetworkBuilder, name: str, channels: int) -> None:
    """The 5-conv detection block preceding each YOLO head."""
    builder.conv(channels, 1, name=f"{name}_conv1")
    builder.conv(channels * 2, 3, name=f"{name}_conv2")
    builder.conv(channels, 1, name=f"{name}_conv3")
    builder.conv(channels * 2, 3, name=f"{name}_conv4")
    builder.conv(channels, 1, name=f"{name}_conv5")


def build(input_hw=(416, 416)) -> Network:
    """YOLO v3 (COCO: 255 output channels per head); ``input_hw`` should
    be a multiple of 32 so the three heads land on integer grids."""
    builder = NetworkBuilder(
        name="YOLO v3",
        abbreviation="YL",
        domain="Object detection",
        feature="Large dataset",
        input_hw=input_hw,
    )
    # Darknet-53 backbone.
    builder.conv(32, 3, name="d53_conv1")  # 416
    builder.conv(64, 3, stride=2, name="d53_down1")  # 208
    _residual(builder, "d53_r1", 64)
    builder.conv(128, 3, stride=2, name="d53_down2")  # 104
    for index in range(1, 3):
        _residual(builder, f"d53_r2_{index}", 128)
    builder.conv(256, 3, stride=2, name="d53_down3")  # 52
    for index in range(1, 9):
        _residual(builder, f"d53_r3_{index}", 256)
    route_52 = builder.hw
    builder.conv(512, 3, stride=2, name="d53_down4")  # 26
    for index in range(1, 9):
        _residual(builder, f"d53_r4_{index}", 512)
    route_26 = builder.hw
    builder.conv(1024, 3, stride=2, name="d53_down5")  # 13
    for index in range(1, 5):
        _residual(builder, f"d53_r5_{index}", 1024)

    # Head 1 at 13x13.
    _detection_block(builder, "head13", 512)
    builder.conv(1024, 3, name="head13_conv6", update_state=False)
    builder.conv(255, 1, in_channels=1024, name="head13_detect", update_state=False)

    # Head 2 at 26x26 (upsample + concat with the 512-channel route).
    builder.conv(256, 1, name="head26_route")
    builder.upsample(2)
    builder.set_hw(route_26)
    builder.set_channels(256 + 512)
    _detection_block(builder, "head26", 256)
    builder.conv(512, 3, name="head26_conv6", update_state=False)
    builder.conv(255, 1, in_channels=512, name="head26_detect", update_state=False)

    # Head 3 at 52x52 (upsample + concat with the 256-channel route).
    builder.conv(128, 1, name="head52_route")
    builder.upsample(2)
    builder.set_hw(route_52)
    builder.set_channels(128 + 256)
    _detection_block(builder, "head52", 128)
    builder.conv(256, 3, name="head52_conv6", update_state=False)
    builder.conv(255, 1, in_channels=256, name="head52_detect", update_state=False)

    return builder.build()
