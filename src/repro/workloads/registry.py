"""The workload registry: Table II of the paper as a lookup table.

Networks are built lazily on first access and cached; both full names
("ResNet-50") and the paper's abbreviations ("Res") resolve, matching
the labels of Figs. 2a and 8.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads import (
    efficientnet,
    extras,
    inception_v4,
    llama2,
    mobilenet_v3,
    mobilevit,
    resnet50,
    squeezenet,
    vit,
    yolov3,
)
from repro.workloads.base import Network

#: Builders in the paper's Table II order.
_BUILDERS: Dict[str, Callable[[], Network]] = {
    "ResNet-50": resnet50.build,
    "Inception v4": inception_v4.build,
    "YOLO v3": yolov3.build,
    "SqueezeNet": squeezenet.build,
    "MobileNet v3": mobilenet_v3.build,
    "EfficientNet": efficientnet.build,
    "ViT": vit.build,
    "MobileViT": mobilevit.build,
    "Llama v2": llama2.build,
}

#: Extra workloads beyond Table II (never used by the figure drivers).
_EXTRA_BUILDERS: Dict[str, Callable[[], Network]] = {
    "AlexNet": extras.build_alexnet,
    "VGG-16": extras.build_vgg16,
    "BERT-base": extras.build_bert_base,
}

#: Paper abbreviations (Table II, Fig. 8 x-axis labels) plus extras.
_ABBREVIATIONS: Dict[str, str] = {
    "Res": "ResNet-50",
    "Inc": "Inception v4",
    "YL": "YOLO v3",
    "Sqz": "SqueezeNet",
    "Mb": "MobileNet v3",
    "Eff": "EfficientNet",
    "VT": "ViT",
    "MVT": "MobileViT",
    "LM": "Llama v2",
    "Alx": "AlexNet",
    "Vgg": "VGG-16",
    "Brt": "BERT-base",
}

_CACHE: Dict[str, Network] = {}


def network_names() -> List[str]:
    """Full network names in Table II order (extras excluded)."""
    return list(_BUILDERS)


def extra_network_names() -> List[str]:
    """Extra (non-Table II) network names."""
    return list(_EXTRA_BUILDERS)


def network_abbreviations() -> List[str]:
    """Paper abbreviations in Table II order (extras excluded)."""
    table_ii = {abbr: name for abbr, name in _ABBREVIATIONS.items() if name in _BUILDERS}
    return sorted(table_ii, key=lambda abbr: network_names().index(table_ii[abbr]))


def get_network(name: str) -> Network:
    """Resolve a network by full name or paper abbreviation.

    Lookup is case-insensitive on full names; abbreviations are matched
    exactly (they are case-sensitive in the paper's figures). Extras
    (AlexNet, VGG-16, BERT-base) resolve too but never appear in
    :func:`all_networks`.
    """
    builders = {**_BUILDERS, **_EXTRA_BUILDERS}
    canonical = _ABBREVIATIONS.get(name)
    if canonical is None:
        matches = [key for key in builders if key.lower() == name.lower()]
        if not matches:
            known = list(builders) + list(_ABBREVIATIONS)
            raise WorkloadError(
                f"unknown network {name!r}; known workloads: {sorted(known)}"
            )
        canonical = matches[0]
    if canonical not in _CACHE:
        _CACHE[canonical] = builders[canonical]()
    return _CACHE[canonical]


def all_networks() -> List[Network]:
    """Every Table II network, in the paper's order."""
    return [get_network(name) for name in network_names()]
