"""ResNet-50 layer table (He et al., 2016).

Four stages of bottleneck blocks (1x1 reduce, 3x3, 1x1 expand) with a
projection shortcut at each stage entry — the "residual blocks" entry of
Table II. The C5-stage 3x3 convolutions are the Fig. 5 walk-through
layers of the paper.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _bottleneck(
    builder: NetworkBuilder,
    stage: str,
    index: int,
    mid_channels: int,
    out_channels: int,
    stride: int = 1,
    project: bool = False,
) -> None:
    """One bottleneck block; ``project`` adds the shortcut convolution."""
    in_channels = builder.channels
    if project:
        builder.conv(
            out_channels,
            1,
            stride=stride,
            in_channels=in_channels,
            name=f"{stage}_b{index}_proj",
            update_state=False,
        )
    builder.conv(mid_channels, 1, name=f"{stage}_b{index}_conv1")
    builder.conv(mid_channels, 3, stride=stride, name=f"{stage}_b{index}_conv2")
    builder.conv(out_channels, 1, name=f"{stage}_b{index}_conv3")


def _stage(
    builder: NetworkBuilder,
    stage: str,
    blocks: int,
    mid_channels: int,
    out_channels: int,
    stride: int,
) -> None:
    _bottleneck(
        builder, stage, 1, mid_channels, out_channels, stride=stride, project=True
    )
    for index in range(2, blocks + 1):
        _bottleneck(builder, stage, index, mid_channels, out_channels)


def build(input_hw=(224, 224)) -> Network:
    """ResNet-50; any input size the four stride-2 stages can divide."""
    builder = NetworkBuilder(
        name="ResNet-50",
        abbreviation="Res",
        domain="Image classification",
        feature="Residual blocks",
        input_hw=input_hw,
    )
    builder.conv(64, 7, stride=2, name="conv1")  # 112x112
    builder.pool(3, 2, padding="same")  # 56x56
    _stage(builder, "c2", blocks=3, mid_channels=64, out_channels=256, stride=1)
    _stage(builder, "c3", blocks=4, mid_channels=128, out_channels=512, stride=2)
    _stage(builder, "c4", blocks=6, mid_channels=256, out_channels=1024, stride=2)
    _stage(builder, "c5", blocks=3, mid_channels=512, out_channels=2048, stride=2)
    builder.global_pool()
    builder.fc(1000, name="fc1000")
    return builder.build()
