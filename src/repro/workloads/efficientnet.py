"""EfficientNet-B0 layer table (Tan & Le, 2019).

MBConv blocks (expansion, depthwise conv, squeeze-and-excitation,
projection) with compound-scaled widths — the "MBConv blocks" entry of
Table II, and like MobileNet v3 a small network where residual
optimization matters most.
"""

from __future__ import annotations

from repro.workloads.base import Network, NetworkBuilder


def _mbconv(
    builder: NetworkBuilder,
    name: str,
    kernel: int,
    expand_ratio: int,
    out_channels: int,
    stride: int = 1,
) -> None:
    """One MBConv block; EfficientNet always applies squeeze-excite."""
    in_channels = builder.channels
    expanded = in_channels * expand_ratio
    if expand_ratio != 1:
        builder.conv(expanded, 1, name=f"{name}_expand")
    builder.dwconv(kernel, stride=stride, name=f"{name}_dw")
    squeezed = max(1, in_channels // 4)
    builder.fc(squeezed, in_features=expanded, name=f"{name}_se_reduce")
    builder.fc(expanded, in_features=squeezed, name=f"{name}_se_expand")
    builder.set_channels(expanded)
    builder.conv(out_channels, 1, name=f"{name}_project")


#: (kernel, expansion ratio, output channels, repeats, first stride) per
#: stage, following Table 1 of the EfficientNet paper (B0).
_STAGE_TABLE = (
    (3, 1, 16, 1, 1),
    (3, 6, 24, 2, 2),
    (5, 6, 40, 2, 2),
    (3, 6, 80, 3, 2),
    (5, 6, 112, 3, 1),
    (5, 6, 192, 4, 2),
    (3, 6, 320, 1, 1),
)


def build(input_hw=(224, 224)) -> Network:
    """EfficientNet-B0 at a configurable input size."""
    builder = NetworkBuilder(
        name="EfficientNet",
        abbreviation="Eff",
        domain="Lightweight network",
        feature="MBConv. blocks",
        input_hw=input_hw,
    )
    builder.conv(32, 3, stride=2, name="conv_stem")  # 112x112
    for stage, (kernel, ratio, out_channels, repeats, stride) in enumerate(
        _STAGE_TABLE, start=1
    ):
        for repeat in range(1, repeats + 1):
            _mbconv(
                builder,
                f"s{stage}_b{repeat}",
                kernel=kernel,
                expand_ratio=ratio,
                out_channels=out_channels,
                stride=stride if repeat == 1 else 1,
            )
    builder.conv(1280, 1, name="conv_head")
    builder.global_pool()
    builder.fc(1000, name="fc_logits")
    return builder.build()
