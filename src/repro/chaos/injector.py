"""The seeded fault injector behind ``REPRO_CHAOS``.

Four fault kinds, each with an independent selection probability:

* ``crash`` — the process dies via ``os._exit`` (no cleanup, no
  exception: exactly what an OOM kill or segfault looks like to the
  parent);
* ``hang`` — the task sleeps ``hang_seconds`` before proceeding
  (drives the per-task timeout path);
* ``transient`` — raises :class:`ChaosTransientError` (drives the
  retry-with-backoff path);
* ``corrupt`` — cache entry bytes are mangled on write while the
  checksum still covers the true payload (drives the cache-integrity
  path).

**Selection is deterministic**: a task (by label) is selected for a
fault kind iff ``stable_unit(seed, kind, label) < probability``. The
same seed therefore condemns the same tasks in every process and every
rerun. Whether a *selected* fault actually fires is gated by the
attempt number: ``crash_attempts=1`` (the default) means the task
crashes on its first attempt and succeeds on retry; ``crash_attempts``
of 99 means it crashes every time — the configuration the chaos-smoke
CI job uses to kill a run mid-flight and prove ``--resume`` recovers.

Spec grammar (comma-separated ``key=value``):

    REPRO_CHAOS="seed=11,crash=0.5,crash_attempts=99,transient=0.3,
                 hang=0.2,hang_seconds=5,corrupt=0.4"
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.resilience.retry import stable_unit

__all__ = [
    "CHAOS_ENV",
    "CHAOS_EXIT_CODE",
    "ChaosConfig",
    "ChaosTransientError",
    "active_config",
    "maybe_corrupt",
    "maybe_inject",
]

#: Environment variable holding the chaos spec ("" / unset = inert).
CHAOS_ENV = "REPRO_CHAOS"

#: Exit code of a chaos-injected crash (distinctive in CI logs).
CHAOS_EXIT_CODE = 66


class ChaosTransientError(RuntimeError):
    """A chaos-injected transient failure (retryable by design)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos spec: per-kind probabilities and attempt gates."""

    seed: int = 0
    crash: float = 0.0
    crash_attempts: int = 1
    hang: float = 0.0
    hang_attempts: int = 1
    hang_seconds: float = 30.0
    transient: float = 0.0
    transient_attempts: int = 1
    corrupt: float = 0.0

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Build a config from a ``key=value,key=value`` spec string."""
        config = cls()
        known = {field.name: field.type for field in fields(cls)}
        updates = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, separator, raw = chunk.partition("=")
            name = name.strip()
            if not separator or name not in known:
                raise ConfigurationError(
                    f"{CHAOS_ENV}: expected key=value with key in "
                    f"{sorted(known)}, got {chunk!r}"
                )
            try:
                current = getattr(config, name)
                updates[name] = type(current)(raw.strip())
            except ValueError:
                raise ConfigurationError(
                    f"{CHAOS_ENV}: bad value {raw!r} for {name!r}"
                ) from None
        return replace(config, **updates)

    def to_spec(self) -> str:
        """Serialize back to a spec string (for tests and CI scripts)."""
        default = ChaosConfig()
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value != getattr(default, field.name):
                parts.append(f"{field.name}={value}")
        return ",".join(parts)

    def selected(self, kind: str, label: str) -> bool:
        """Whether ``label`` is condemned to faults of ``kind`` at all."""
        probability = float(getattr(self, kind))
        if probability <= 0.0:
            return False
        return stable_unit(self.seed, kind, label) < probability

    def decision(self, kind: str, label: str, attempt: int = 1) -> bool:
        """Whether a ``kind`` fault fires for ``label`` on ``attempt``."""
        if not self.selected(kind, label):
            return False
        gate = getattr(self, f"{kind}_attempts", None)
        return gate is None or attempt <= gate


#: Cached (spec string, parsed config) so the hot path is one env read.
_CACHED: Tuple[str, Optional[ChaosConfig]] = ("", None)


def active_config() -> Optional[ChaosConfig]:
    """The parsed ``REPRO_CHAOS`` config, or ``None`` when inert."""
    global _CACHED
    spec = os.environ.get(CHAOS_ENV, "").strip()
    if not spec:
        return None
    if _CACHED[0] != spec:
        _CACHED = (spec, ChaosConfig.parse(spec))
    return _CACHED[1]


def maybe_inject(label: str, attempt: int = 1) -> None:
    """Fire any armed task fault for ``(label, attempt)``.

    Called by the runner immediately before executing a task, in
    whichever process the task runs (pool worker or parent).
    """
    config = active_config()
    if config is None:
        return
    if config.decision("crash", label, attempt):
        os._exit(CHAOS_EXIT_CODE)
    if config.decision("hang", label, attempt):
        time.sleep(config.hang_seconds)
    if config.decision("transient", label, attempt):
        raise ChaosTransientError(
            f"chaos: transient failure injected into {label!r} "
            f"(attempt {attempt})"
        )


def maybe_corrupt(label: str, data: bytes) -> bytes:
    """Return ``data``, or a mangled version when corruption is armed.

    The mangling truncates and garbles — the shapes a torn write or a
    dying disk actually produce — so checksum verification, not luck,
    must catch it.
    """
    config = active_config()
    if config is None or not config.decision("corrupt", label):
        return data
    keep = max(1, len(data) // 2)
    return data[:keep] + b"\x00chaos"
