"""Deterministic chaos injection: prove the resilience layer works.

``REPRO_CHAOS`` (a spec string like ``"seed=11,crash=0.5"``) arms a
seeded fault injector that the runtime consults at two choke points:
:class:`~repro.runtime.parallel.ParallelRunner` task execution (worker
crashes, hangs, transient exceptions) and
:class:`~repro.runtime.cache.ResultCache` writes (corrupted entry
bytes). Decisions are pure functions of ``(seed, kind, label)`` — no
randomness at injection time — so a fault schedule replays exactly,
which is what lets the resilience tests assert that a killed-and-
resumed run is *bit-identical* to an uninterrupted one.

Unset (the default), the injector is entirely inert: one cached
environment lookup per process.
"""

from repro.chaos.injector import (
    CHAOS_ENV,
    CHAOS_EXIT_CODE,
    ChaosConfig,
    ChaosTransientError,
    active_config,
    maybe_corrupt,
    maybe_inject,
)

__all__ = [
    "CHAOS_ENV",
    "CHAOS_EXIT_CODE",
    "ChaosConfig",
    "ChaosTransientError",
    "active_config",
    "maybe_corrupt",
    "maybe_inject",
]
