"""Command-line interface: ``rota <experiment>`` / ``python -m repro``.

Every subcommand maps onto one experiment driver, so the CLI prints the
same rows the benchmarks check and the paper reports. ``rota all`` runs
the full evaluation section in order.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.ablation import (
    run_accounting_ablation,
    run_dataflow_ablation,
    run_trigger_ablation,
)
from repro.experiments.fig2 import run_fig2a, run_fig2b
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.extensions import (
    run_beta_sensitivity,
    run_mixed_workload,
    run_variation_sensitivity,
    run_montecarlo_validation,
    run_objective_ablation,
    run_policy_comparison,
)
from repro.errors import ReproError
from repro.experiments.faults import run_fault_montecarlo, run_faults
from repro.experiments.overhead import run_overhead
from repro.experiments.table2 import run_table2


def _cmd_table2(args: argparse.Namespace) -> str:
    return run_table2().format()


def _cmd_utilization(args: argparse.Namespace) -> str:
    parts = [run_fig2a().format()]
    if args.network:
        parts.append(run_fig2b(args.network).format())
    return "\n\n".join(parts)


def _cmd_heatmaps(args: argparse.Namespace) -> str:
    return run_fig3(iterations=args.iterations).format()


def _cmd_unfold(args: argparse.Namespace) -> str:
    return run_fig4(x=args.x, y=args.y).format()


def _cmd_walkthrough(args: argparse.Namespace) -> str:
    return run_fig5(network=args.network).format()


def _cmd_usage_diff(args: argparse.Namespace) -> str:
    return run_fig6(network=args.network, iterations=args.iterations).format()


def _cmd_projection(args: argparse.Namespace) -> str:
    return run_fig7(network=args.network, iterations=args.iterations).format()


def _cmd_lifetime(args: argparse.Namespace) -> str:
    return run_fig8(iterations=args.iterations, jobs=args.jobs).format()


def _cmd_upper_bound(args: argparse.Namespace) -> str:
    return run_fig9().format()


def _cmd_sweep(args: argparse.Namespace) -> str:
    return run_fig10(
        network=args.network, iterations=args.iterations, jobs=args.jobs
    ).format()


def _cmd_overhead(args: argparse.Namespace) -> str:
    return run_overhead().format()


def _cmd_ablations(args: argparse.Namespace) -> str:
    return "\n\n".join(
        [
            run_trigger_ablation().format(),
            run_dataflow_ablation().format(),
            run_accounting_ablation().format(),
        ]
    )


def _cmd_extensions(args: argparse.Namespace) -> str:
    return "\n\n".join(
        [
            run_policy_comparison(iterations=args.iterations).format(),
            run_montecarlo_validation().format(),
            run_objective_ablation().format(),
            run_beta_sensitivity().format(),
            run_variation_sensitivity().format(),
            run_mixed_workload().format(),
        ]
    )


def _parse_dead(specs: List[str]) -> List[tuple]:
    """Parse ``--dead U,V`` coordinate options."""
    coords = []
    for spec in specs:
        try:
            u, v = (int(part) for part in spec.split(","))
        except ValueError:
            raise SystemExit(f"--dead expects 'U,V' integer pairs, got {spec!r}")
        coords.append((u, v))
    return coords


def _cmd_faults(args: argparse.Namespace) -> str:
    result = run_faults(
        network=args.network,
        dead=_parse_dead(args.dead),
        wearout=not args.no_wearout,
        deaths=args.deaths,
        max_iterations=args.iterations,
        mean_budget=args.mean_budget,
        seed=args.seed,
        jobs=args.jobs,
    )
    parts = [result.format(heatmaps=not args.no_heatmaps)]
    if args.scenarios:
        parts.append(
            run_fault_montecarlo(
                network=args.network,
                num_scenarios=args.scenarios,
                max_iterations=args.iterations,
                mean_budget=args.mean_budget,
                seed=args.seed,
                jobs=args.jobs,
            ).format()
        )
    return "\n\n".join(parts)


def _cmd_attribution(args: argparse.Namespace) -> str:
    from repro.analysis.attribution import attribute_wear
    from repro.experiments.common import paper_accelerator, streams_for

    accelerator = paper_accelerator()
    streams = streams_for(args.network, accelerator)
    return attribute_wear(accelerator, streams).format(limit=args.limit)


def _cmd_profile(args: argparse.Namespace) -> str:
    from repro.analysis.network_report import profile_network
    from repro.experiments.common import execution_for, paper_accelerator

    accelerator = paper_accelerator()
    execution = execution_for(args.network, accelerator)
    return profile_network(accelerator, execution).format(limit=args.limit)


def _cmd_export(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.core.program import program_from_execution
    from repro.core.rtl import emit_controller_verilog
    from repro.dataflow.scalesim import export_scalesim
    from repro.experiments.common import execution_for, paper_accelerator
    from repro.workloads.registry import get_network

    accelerator = paper_accelerator()
    network = get_network(args.network)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    scalesim = export_scalesim(accelerator, network, out / "scalesim")
    execution = execution_for(network.name, accelerator)
    program = program_from_execution(
        execution, accelerator.width, accelerator.height
    )
    program_path = program.save(out / "controller_program.json")
    rtl = emit_controller_verilog(accelerator.width, accelerator.height)
    rtl_path = out / "rota_wl_controller.v"
    rtl_path.write_text(rtl.verilog)

    written = list(scalesim.files) + [program_path, rtl_path.resolve()]
    lines = [f"exported {network.name} artifacts to {out.resolve()}:"]
    lines.extend(f"  {path}" for path in written)
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.report import write_report

    manifest = write_report(args.out)
    return manifest.format()


def _cmd_scorecard(args: argparse.Namespace) -> str:
    from repro.experiments.scorecard import run_scorecard

    return run_scorecard(iterations=args.iterations).format()


#: The ``rota all`` sections, in paper order. Independent drivers, so
#: ``--jobs N`` runs them concurrently; output order never changes.
_ALL_SECTIONS = (
    "table2",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "overhead",
)


def _render_section(name: str) -> str:
    """Run one ``rota all`` section (module-level so pools can pickle it)."""
    runners = {
        "table2": run_table2,
        "fig2a": run_fig2a,
        "fig2b": run_fig2b,
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "overhead": run_overhead,
    }
    return runners[name]().format()


def _cmd_all(args: argparse.Namespace) -> str:
    from repro.runtime import ParallelRunner

    runner = ParallelRunner(args.jobs)
    sections = runner.map(_render_section, _ALL_SECTIONS, labels=_ALL_SECTIONS)
    return "\n\n".join(sections)


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.dataflow.scheduler import _disk_cache_path
    from repro.runtime import result_cache

    cache = result_cache()
    lines = []
    if args.clear:
        removed = cache.clear()
        lines.append(f"cleared {removed} cached results")
    lines.append(cache.stats().format())
    schedule_path = _disk_cache_path()
    if schedule_path is not None:
        lines.append(
            f"schedule cache at {schedule_path} "
            f"({'present' if schedule_path.exists() else 'empty'}; "
            f"delete the file to clear)"
        )
    return "\n".join(lines)


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help=(
            "worker processes (default: $REPRO_JOBS or 1 = serial; "
            "0 = all CPUs); results are identical at any value"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rota",
        description=(
            "RoTA reproduction: rotational torus accelerator wear-leveling "
            "(DATE 2025). Each subcommand regenerates one paper artifact."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="Table II workload roster").set_defaults(
        func=_cmd_table2
    )

    p = sub.add_parser("utilization", help="Fig. 2 PE utilization")
    p.add_argument("--network", default=None, help="also show per-layer (Fig. 2b)")
    p.set_defaults(func=_cmd_utilization)

    p = sub.add_parser("heatmaps", help="Fig. 3 usage heatmaps")
    p.add_argument("--iterations", type=int, default=10)
    p.set_defaults(func=_cmd_heatmaps)

    p = sub.add_parser("unfold", help="Fig. 4 unfolded torus walk")
    p.add_argument("--x", type=int, default=8)
    p.add_argument("--y", type=int, default=8)
    p.set_defaults(func=_cmd_unfold)

    p = sub.add_parser("walkthrough", help="Fig. 5 RWL closed-form walk-through")
    p.add_argument("--network", default="ResNet-50")
    p.set_defaults(func=_cmd_walkthrough)

    p = sub.add_parser("usage-diff", help="Fig. 6 max usage difference")
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--iterations", type=int, default=1000)
    p.set_defaults(func=_cmd_usage_diff)

    p = sub.add_parser("projection", help="Fig. 7 lifetime vs R_diff")
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--iterations", type=int, default=200)
    p.set_defaults(func=_cmd_projection)

    p = sub.add_parser("lifetime", help="Fig. 8 lifetime improvement per workload")
    p.add_argument("--iterations", type=int, default=200)
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_lifetime)

    sub.add_parser(
        "upper-bound", help="Fig. 9 layer-wise improvement vs ceiling"
    ).set_defaults(func=_cmd_upper_bound)

    p = sub.add_parser("sweep", help="Fig. 10 PE-array size sweep")
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--iterations", type=int, default=200)
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "faults",
        help="fault study: run past PE wear-out deaths, report degradation",
    )
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument(
        "--dead",
        action="append",
        default=[],
        metavar="U,V",
        help="inject an explicit dead PE (repeatable)",
    )
    p.add_argument(
        "--no-wearout",
        action="store_true",
        help="disable Weibull wear-out deaths (explicit --dead faults only)",
    )
    p.add_argument("--deaths", type=int, default=3, help="stop after N wear-out deaths")
    p.add_argument("--iterations", type=int, default=300, help="iteration cap")
    p.add_argument(
        "--mean-budget",
        type=float,
        default=None,
        help="mean per-PE endurance budget (default: auto-calibrated)",
    )
    p.add_argument("--seed", type=int, default=2025)
    p.add_argument(
        "--scenarios",
        type=int,
        default=0,
        help="also run an N-scenario lifetime Monte Carlo",
    )
    p.add_argument("--no-heatmaps", action="store_true", help="skip dead-PE heatmaps")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_faults)

    sub.add_parser("overhead", help="Sec. V-D area/cycle overhead").set_defaults(
        func=_cmd_overhead
    )
    sub.add_parser("ablations", help="design-choice ablations").set_defaults(
        func=_cmd_ablations
    )
    p = sub.add_parser(
        "attribution", help="which layers stress the hottest PE (baseline)"
    )
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(func=_cmd_attribution)

    p = sub.add_parser("profile", help="per-layer network profile")
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "extensions",
        help="extension studies: policy comparison, Monte Carlo, objectives",
    )
    p.add_argument("--iterations", type=int, default=500)
    p.set_defaults(func=_cmd_extensions)
    p = sub.add_parser(
        "export",
        help="SCALE-Sim files, controller firmware JSON, and Verilog for a network",
    )
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--out", default="rota-export")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "report", help="write every artifact (tables, CSVs, PPM heatmaps) to a dir"
    )
    p.add_argument("--out", default="rota-report")
    p.set_defaults(func=_cmd_report)
    p = sub.add_parser(
        "scorecard", help="re-check every paper-shape claim (pass/fail table)"
    )
    p.add_argument("--iterations", type=int, default=100)
    p.set_defaults(func=_cmd_scorecard)
    p = sub.add_parser(
        "cache", help="show (or --clear) the persistent result cache"
    )
    p.add_argument("--clear", action="store_true", help="delete cached results")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("all", help="every table and figure in order")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.func(args))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal shell usage.
        return 0
    except ReproError as error:
        # Library errors are user-facing (bad network name, impossible
        # config, ...): one line on stderr, nonzero exit, no traceback.
        print(f"rota: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
