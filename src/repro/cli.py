"""Command-line interface: ``rota <experiment>`` / ``python -m repro``.

The experiment subcommands are generated from
:mod:`repro.experiments.registry` — one subcommand per
:class:`~repro.experiments.registry.ExperimentSpec`, with flags built
from its parameter schema. Every experiment subcommand accepts
``--json`` to print the result's ``to_dict()`` payload instead of the
paper-style table, and ``rota list`` enumerates the registry.

Driver modules import lazily: ``rota --help``, ``rota list``, and
``rota --version`` never load an experiment module (and therefore none
of the scheduler stack behind one).

``rota all`` runs the full evaluation section in order; the utility
subcommands (``export``, ``report``, ``cache``, ``serve``) stay
hand-written because they orchestrate files or processes rather than
run one experiment. ``rota serve`` exposes the same registry over HTTP
(see :mod:`repro.service`); ``rota gateway`` is its multi-process,
coalescing production twin (see :mod:`repro.gateway`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.experiments.registry import (
    CONVERTERS,
    ExperimentSpec,
    all_specs,
    get_spec,
    package_version,
    run_experiment,
)


def _collect_params(spec: ExperimentSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """Translate parsed CLI flags into the spec's runner kwargs."""
    params: Dict[str, Any] = {}
    for param in spec.params:
        value = getattr(args, param.dest)
        if param.kind == "flag":
            value = not value if param.invert else bool(value)
        elif param.kind == "repeat":
            value = list(value)
            if param.convert:
                value = CONVERTERS[param.convert](value)
        params[param.runner_kwarg] = value
    return params


def _run_spec_command(args: argparse.Namespace) -> str:
    """Dispatch one registry-generated subcommand."""
    spec = get_spec(args.spec_id)
    run = run_experiment(spec.id, **_collect_params(spec, args))
    if getattr(args, "json_output", False):
        return json.dumps(run.result.to_dict(), indent=2, sort_keys=True)
    return run.result.format()


def _cmd_list(args: argparse.Namespace) -> str:
    """Enumerate every registered experiment."""
    tags = [tag.strip() for tag in (args.tags or "").split(",") if tag.strip()]
    if args.tag:
        tags.append(args.tag)
    if tags:
        specs = tuple(
            spec
            for spec in all_specs()
            if any(tag in spec.tags for tag in tags)
        )
    else:
        specs = all_specs()
    if getattr(args, "json_output", False):
        from repro.experiments.result import to_jsonable

        return json.dumps(
            [to_jsonable(spec) for spec in specs], indent=2, sort_keys=True
        )
    id_width = max((len(spec.id) for spec in specs), default=0)
    artifact_width = max((len(spec.artifact) for spec in specs), default=0)
    lines = [
        f"{len(specs)} experiments (run with `rota <id>`; add --json for "
        f"structured output):"
    ]
    for spec in specs:
        tags = ",".join(spec.tags)
        lines.append(
            f"  {spec.id:<{id_width}}  {spec.artifact:<{artifact_width}}  "
            f"[{tags}]  {spec.title}"
        )
    return "\n".join(lines)


def _cmd_export(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.core.program import program_from_execution
    from repro.core.rtl import emit_controller_verilog
    from repro.dataflow.scalesim import export_scalesim
    from repro.experiments.common import execution_for, paper_accelerator
    from repro.workloads.registry import get_network

    accelerator = paper_accelerator()
    network = get_network(args.network)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    scalesim = export_scalesim(accelerator, network, out / "scalesim")
    execution = execution_for(network.name, accelerator)
    program = program_from_execution(
        execution, accelerator.width, accelerator.height
    )
    program_path = program.save(out / "controller_program.json")
    rtl = emit_controller_verilog(accelerator.width, accelerator.height)
    rtl_path = out / "rota_wl_controller.v"
    rtl_path.write_text(rtl.verilog)

    written = list(scalesim.files) + [program_path, rtl_path.resolve()]
    lines = [f"exported {network.name} artifacts to {out.resolve()}:"]
    lines.extend(f"  {path}" for path in written)
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.report import write_report

    manifest = write_report(args.out)
    return manifest.format()


def _render_section(spec_id: str) -> str:
    """Run one ``rota all`` section (module-level so pools can pickle it)."""
    spec = get_spec(spec_id)
    params = spec.defaults
    params.update(dict(spec.all_params))
    return spec.resolve()(**params).format()


def _cmd_all(args: argparse.Namespace) -> str:
    from repro.runtime import ParallelRunner

    sections = [spec.id for spec in all_specs(tag="figure")]
    runner = ParallelRunner(args.jobs)
    rendered = runner.map(_render_section, sections, labels=sections)
    return "\n\n".join(rendered)


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.dataflow.scheduler import _disk_cache_path
    from repro.runtime import result_cache
    from repro.runtime.cache import max_bytes_env

    cache = result_cache()
    lines = []
    verify_report = None
    if args.clear:
        removed = cache.clear()
        lines.append(f"cleared {removed} cached results")
    if args.verify:
        verify_report = cache.verify()
        lines.append(verify_report.format())
    if args.prune:
        limit = args.max_bytes if args.max_bytes is not None else max_bytes_env()
        if limit is None:
            raise ReproError(
                "cache --prune needs a bound: pass --max-bytes N or set "
                "REPRO_CACHE_MAX_BYTES"
            )
        pruned = cache.prune(limit)
        lines.append(
            f"pruned {pruned} cached result(s) to fit {limit} bytes "
            f"(oldest first)"
        )
    lines.append(cache.stats().format())
    schedule_path = _disk_cache_path()
    if schedule_path is not None:
        lines.append(
            f"schedule cache at {schedule_path} "
            f"({'present' if schedule_path.exists() else 'empty'}; "
            f"delete the file to clear)"
        )
    if verify_report is not None and verify_report.corrupt:
        print("\n".join(lines))
        raise ReproError(
            f"cache --verify found {verify_report.corrupt} corrupt "
            f"entr{'y' if verify_report.corrupt == 1 else 'ies'} "
            f"(quarantined under corrupt/)"
        )
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.bench import (
        compare_snapshots,
        latest_snapshot_path,
        load_snapshot,
        next_snapshot_path,
        run_bench,
    )

    root = Path(args.dir)
    baseline_path = latest_snapshot_path(root)
    if args.check and baseline_path is None:
        raise ReproError(
            f"bench --check needs a committed BENCH_<n>.json baseline "
            f"under {root.resolve()}"
        )
    snapshot = run_bench(smoke=args.smoke)
    lines = [snapshot.format()]
    if not args.no_write:
        destination = (
            Path(args.out)
            if args.out
            else next_snapshot_path(root, number=args.number)
        )
        written = snapshot.save(destination)
        lines.append(f"wrote {written}")
    if args.check:
        report = compare_snapshots(
            load_snapshot(baseline_path), snapshot, threshold=args.threshold
        )
        lines.append(f"baseline: {baseline_path}")
        lines.append(report.format())
        if not report.ok:
            print("\n".join(lines))
            raise ReproError(
                f"performance regression vs {baseline_path.name}: "
                + "; ".join(delta.name for delta in report.regressions)
            )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.service import ServiceConfig, serve

    return serve(
        ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.jobs,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
        )
    )


def _cmd_gateway(args: argparse.Namespace) -> str:
    from repro.gateway import GatewayConfig, serve_gateway

    return serve_gateway(
        GatewayConfig(
            host=args.host,
            port=args.port,
            workers=args.jobs,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            task_attempts=args.task_attempts,
            start_method=args.start_method,
            cache_dir=args.cache_dir,
        )
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help=(
            "worker processes (default: $REPRO_JOBS or 1 = serial; "
            "0 = all CPUs); results are identical at any value"
        ),
    )


_ARG_TYPES = {"int": int, "float": float}


def _add_spec_parser(
    sub: argparse._SubParsersAction,
    spec: ExperimentSpec,
    json_parent: argparse.ArgumentParser,
) -> None:
    """Generate one subcommand from an experiment spec."""
    parser = sub.add_parser(spec.id, help=spec.title, parents=[json_parent])
    for param in spec.params:
        flags = [param.cli_flag]
        if param.short:
            flags.append(param.short)
        kwargs: Dict[str, Any] = {}
        if param.help:
            kwargs["help"] = param.help
        if param.metavar:
            kwargs["metavar"] = param.metavar
        if param.kind == "flag":
            parser.add_argument(*flags, action="store_true", **kwargs)
        elif param.kind == "repeat":
            parser.add_argument(*flags, action="append", default=[], **kwargs)
        else:
            if param.kind in _ARG_TYPES:
                kwargs["type"] = _ARG_TYPES[param.kind]
            if param.choices is not None:
                kwargs["choices"] = list(param.choices)
            parser.add_argument(*flags, default=param.default, **kwargs)
    parser.set_defaults(func=_run_spec_command, spec_id=spec.id)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rota",
        description=(
            "RoTA reproduction: rotational torus accelerator wear-leveling "
            "(DATE 2025). Each subcommand regenerates one paper artifact."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"rota {package_version()}"
    )
    json_parent = argparse.ArgumentParser(add_help=False)
    json_parent.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print the result as structured JSON instead of tables",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for spec in all_specs():
        _add_spec_parser(sub, spec, json_parent)

    p = sub.add_parser(
        "list",
        help="enumerate every registered experiment",
        parents=[json_parent],
    )
    p.add_argument(
        "--tag", default=None, help="only experiments carrying this tag"
    )
    p.add_argument(
        "--tags",
        default=None,
        metavar="TAG[,TAG...]",
        help="only experiments carrying any of these comma-separated tags",
    )
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser(
        "export",
        help="SCALE-Sim files, controller firmware JSON, and Verilog for a network",
    )
    p.add_argument("--network", default="SqueezeNet")
    p.add_argument("--out", default="rota-export")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "report", help="write every artifact (tables, CSVs, PPM heatmaps) to a dir"
    )
    p.add_argument("--out", default="rota-report")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "cache",
        help=(
            "show (or --clear / --prune / --verify) the persistent "
            "result cache"
        ),
    )
    p.add_argument("--clear", action="store_true", help="delete cached results")
    p.add_argument(
        "--verify",
        action="store_true",
        help=(
            "checksum-verify every entry, quarantine corrupt ones under "
            "corrupt/, and exit nonzero if any were found"
        ),
    )
    p.add_argument(
        "--prune",
        action="store_true",
        help="evict oldest entries until the cache fits --max-bytes",
    )
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "disk bound for --prune (default: $REPRO_CACHE_MAX_BYTES, "
            "which is also enforced on every cache write)"
        ),
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "bench",
        help=(
            "run the perf snapshot suite, record BENCH_<n>.json, and "
            "optionally gate on the committed baseline"
        ),
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="pinned CI configuration (small MC batches, full-scale engine)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare against the latest committed BENCH_<n>.json and exit "
            "nonzero on any regression past --threshold"
        ),
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="relative regression tolerance for --check (default 0.30)",
    )
    p.add_argument(
        "--dir",
        default=".",
        help="directory holding the BENCH_<n>.json trajectory (repo root)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="explicit output path (default: next numbered BENCH_<n>.json)",
    )
    p.add_argument(
        "--number",
        type=int,
        default=None,
        metavar="N",
        help="force the snapshot number instead of latest+1",
    )
    p.add_argument(
        "--no-write",
        action="store_true",
        help="run and print (and --check) without writing a snapshot file",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help=(
            "long-running HTTP service: registry-driven experiment API "
            "with a job queue and live /metrics"
        ),
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8753, help="bind port")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        help="worker threads executing queued runs",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        metavar="N",
        help="max queued (not yet running) jobs before 429 backpressure",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help=(
            "per-request socket timeout and per-job wall-clock budget; "
            "an overrunning job flips to state 'timeout' (HTTP 504)"
        ),
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help=(
            "consecutive job failures that open the circuit breaker "
            "(submissions then shed with 503 + Retry-After)"
        ),
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds the breaker stays open before a half-open probe",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "gateway",
        help=(
            "production serving front door: asyncio HTTP over N worker "
            "processes with request coalescing, SSE progress streams, "
            "and tiered backpressure"
        ),
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8764, help="bind port")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=4,
        help="worker processes executing runs (one experiment each)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help=(
            "max pending unique executions before the coalesce-only tier "
            "(identical in-flight submissions still attach; unique work "
            "gets 429 + computed Retry-After)"
        ),
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help=(
            "per-request socket timeout and per-execution wall-clock "
            "budget; an overrunning worker is terminated (HTTP 504)"
        ),
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help=(
            "consecutive execution failures that open the circuit "
            "breaker (the shed tier: 503 + Retry-After)"
        ),
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds the breaker stays open before a half-open probe",
    )
    p.add_argument(
        "--task-attempts",
        type=int,
        default=2,
        metavar="N",
        help=(
            "worker-crash retries before a content key is quarantined "
            "(identical submissions then fail fast with 422)"
        ),
    )
    p.add_argument(
        "--start-method",
        default="spawn",
        choices=("spawn", "fork", "forkserver"),
        help="multiprocessing start method for worker processes",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "explicit warm-hit result cache directory for the workers "
            "(default: $REPRO_RESULT_CACHE resolution)"
        ),
    )
    p.set_defaults(func=_cmd_gateway)

    p = sub.add_parser("all", help="every table and figure in order")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.func(args))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal shell usage.
        return 0
    except ReproError as error:
        # Library errors are user-facing (bad network name, impossible
        # config, ...): one line on stderr, nonzero exit, no traceback.
        print(f"rota: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
