"""RoTA: Rotational Torus Accelerator for Wear Leveling of Neural PEs.

A full reproduction of Lim et al. (DATE 2025): an Eyeriss-style
accelerator model, a NeuroSpector-style energy-optimal scheduler, the
RoTA torus PE array, the RWL / RWL+RO wear-leveling policies, and the
Weibull lifetime-reliability model — plus one experiment driver per
table and figure of the paper's evaluation.

Quickstart::

    from repro import eyeriss_v1, get_network, DataflowSimulator
    from repro import WearLevelingEngine, make_policy, improvement_from_counts

    rota = eyeriss_v1(torus=True)
    streams = DataflowSimulator(rota).execute_network(
        get_network("SqueezeNet").layers, name="SqueezeNet"
    ).streams()

    base = WearLevelingEngine(rota.as_mesh(), make_policy("baseline"))
    wl = WearLevelingEngine(rota, make_policy("rwl+ro"))
    counts_b = base.run(streams, iterations=100).counts
    counts_w = wl.run(streams, iterations=100).counts
    print(improvement_from_counts(counts_b, counts_w))  # ~paper Fig. 8
"""

from repro.arch import (
    Accelerator,
    AreaBreakdown,
    AreaModel,
    PEArray,
    Topology,
    eyeriss_v1,
    scaled_array,
)
from repro.core import (
    BaselinePolicy,
    RunResult,
    RwlParameters,
    RwlPolicy,
    RwlRoPolicy,
    StrideTrigger,
    UsageTracker,
    UtilizationSpace,
    WearLevelingEngine,
    make_policy,
    rwl_parameters,
    stride_positions,
)
from repro.dataflow import (
    DataflowSimulator,
    LayerKind,
    LayerShape,
    Mapping,
    Schedule,
    Scheduler,
    SchedulerOptions,
    TileStream,
)
from repro.errors import (
    ConfigurationError,
    MappingError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.runtime import (
    ParallelRunner,
    ResultCache,
    content_hash,
    run_parallel,
)
from repro.reliability import (
    JEDEC_BETA,
    WeibullModel,
    improvement_from_counts,
    lifetime_upper_bound,
    project_lifetime,
    relative_improvement,
    relative_lifetime,
)
from repro.workloads import Network, all_networks, get_network, network_names

__version__ = "1.0.0"

__all__ = [
    "Accelerator",
    "AreaBreakdown",
    "AreaModel",
    "BaselinePolicy",
    "ConfigurationError",
    "DataflowSimulator",
    "JEDEC_BETA",
    "LayerKind",
    "LayerShape",
    "Mapping",
    "MappingError",
    "Network",
    "PEArray",
    "ParallelRunner",
    "ResultCache",
    "ReproError",
    "RunResult",
    "RwlParameters",
    "RwlPolicy",
    "RwlRoPolicy",
    "Schedule",
    "Scheduler",
    "SchedulerOptions",
    "SimulationError",
    "StrideTrigger",
    "TileStream",
    "Topology",
    "UsageTracker",
    "UtilizationSpace",
    "WearLevelingEngine",
    "WeibullModel",
    "WorkloadError",
    "all_networks",
    "content_hash",
    "eyeriss_v1",
    "get_network",
    "improvement_from_counts",
    "lifetime_upper_bound",
    "make_policy",
    "network_names",
    "project_lifetime",
    "relative_improvement",
    "relative_lifetime",
    "run_parallel",
    "rwl_parameters",
    "scaled_array",
    "stride_positions",
    "__version__",
]
