"""Snapshot comparator: fail CI when a metric regresses past threshold.

A metric regresses when it moves in its *bad* direction by more than
the relative threshold: a ``direction="higher"`` metric (throughput,
speedup, hit rate) regresses when the candidate drops below
``baseline * (1 - threshold)``; a ``direction="lower"`` metric
(wall-clock, latency) regresses when it rises above
``baseline * (1 + threshold)``. Metrics present in only one snapshot
are reported but never fail the comparison — adding a new metric must
not break the first run that records it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.snapshot import BenchSnapshot


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between baseline and candidate."""

    name: str
    unit: str
    direction: str
    baseline: float
    candidate: float
    #: Relative change, signed so positive is always an improvement.
    improvement: float
    regressed: bool

    def format(self) -> str:
        sign = "+" if self.improvement >= 0 else ""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: {self.baseline:,.2f} -> {self.candidate:,.2f} "
            f"{self.unit} ({sign}{self.improvement * 100:.1f}%) [{verdict}]"
        )


@dataclass(frozen=True)
class CompareReport:
    """Outcome of diffing a candidate snapshot against a baseline."""

    threshold: float
    deltas: Tuple[MetricDelta, ...]
    only_baseline: Tuple[str, ...]
    only_candidate: Tuple[str, ...]

    @property
    def regressions(self) -> Tuple[MetricDelta, ...]:
        """The deltas that breach the threshold."""
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """Whether the candidate passes (no metric regressed)."""
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"bench comparison (threshold {self.threshold * 100:.0f}%):"
        ]
        lines.extend(f"  {delta.format()}" for delta in self.deltas)
        for name in self.only_baseline:
            lines.append(f"  {name}: only in baseline (skipped)")
        for name in self.only_candidate:
            lines.append(f"  {name}: new metric (no baseline)")
        lines.append(
            "PASS: no regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} metric(s) regressed"
        )
        return "\n".join(lines)


def compare_snapshots(
    baseline: BenchSnapshot,
    candidate: BenchSnapshot,
    threshold: float = 0.30,
) -> CompareReport:
    """Diff two snapshots metric-by-metric."""
    baseline_names = {metric.name for metric in baseline.metrics}
    candidate_names = {metric.name for metric in candidate.metrics}
    deltas: List[MetricDelta] = []
    for name in sorted(baseline_names & candidate_names):
        before = baseline.metric(name)
        after = candidate.metric(name)
        if before.value == 0:
            improvement = 0.0
        elif before.direction == "higher":
            improvement = (after.value - before.value) / before.value
        else:
            improvement = (before.value - after.value) / before.value
        # The baseline's atol rides with the committed file, so the
        # tolerance is pinned alongside the number it protects.
        atol = max(before.atol, after.atol)
        regressed = (
            improvement < -threshold
            and abs(after.value - before.value) > atol
        )
        deltas.append(
            MetricDelta(
                name=name,
                unit=before.unit,
                direction=before.direction,
                baseline=before.value,
                candidate=after.value,
                improvement=improvement,
                regressed=regressed,
            )
        )
    return CompareReport(
        threshold=threshold,
        deltas=tuple(deltas),
        only_baseline=tuple(sorted(baseline_names - candidate_names)),
        only_candidate=tuple(sorted(candidate_names - baseline_names)),
    )
