"""The ``rota bench`` snapshot runner.

Each run executes a pinned benchmark configuration and produces a
:class:`BenchSnapshot`: a named set of :class:`Metric` values with an
improvement direction, plus enough environment context to interpret a
number recorded on another machine. Snapshots serialize to
``BENCH_<n>.json`` files at the repo root; the sequence of committed
files is the project's durable performance trajectory.

Sections
--------
``engine``
    1,000 network iterations of ResNet-50 on the paper's Eyeriss-scale
    array, timed through the iterative walk and through the analytic
    orbit fold (``mode="analytic"``), reported as tiles/second plus the
    fold's speedup factor. Both runs produce bit-identical ledgers (the
    equivalence property suite enforces this); the bench re-asserts it.
``fleet``
    Wall-clock of a :func:`repro.fleet.montecarlo.
    sample_fleet_scenarios` batch (traffic-driven multi-device Monte
    Carlo, wear applied through memoized workload profiles).
``faults``
    Wall-clock of a :func:`repro.faults.montecarlo.
    sample_fault_scenarios` batch (run-until-death engine scenarios on
    sampled endurance-budget fields).
``service``
    Submit-to-result latency through the in-process
    :class:`~repro.service.api.ServiceAPI` — the HTTP surface minus the
    socket — reported as p50/p99 milliseconds.
``mapping_search``
    Beam-search throughput over one real-size conv layer (candidates
    evaluated per second, wear profiles included) and the wall-clock
    speedup of dominance-pruned divisor-lattice enumeration over
    generate-and-test on a small layer.
``service_load``
    Open-loop duplicated-traffic load (seeded fleet-traffic arrivals
    over real HTTP) against a 4-process ``rota gateway`` and against a
    single-inflight ``rota serve`` baseline: sustained RPS, p99
    latency, coalesce ratio, and the gateway-over-serve throughput
    speedup. Both services run with every result cache disabled so the
    comparison prices executions, not cache reads.

Cache hit rate is collected over the fleet section (the profile
memoization path) via :func:`repro.runtime.observe.collect_metrics`.
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

SCHEMA_VERSION = 1

#: ``BENCH_<n>.json`` — the only filename shape the trajectory scans.
_SNAPSHOT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class Metric:
    """One recorded benchmark number."""

    name: str
    value: float
    unit: str
    #: ``"higher"`` or ``"lower"`` — which way is better. The comparator
    #: uses this to decide what counts as a regression.
    direction: str
    #: Absolute movement below this never counts as a regression, no
    #: matter the relative change — sub-millisecond latency jitter and
    #: sub-second wall-clock noise would otherwise trip the relative
    #: threshold on metrics whose absolute scale is tiny.
    atol: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "atol": self.atol,
        }


@dataclass(frozen=True)
class BenchConfig:
    """A pinned benchmark configuration (so snapshots stay comparable)."""

    label: str
    engine_iterations: int
    fleet_scenarios: int
    fleet_requests: int
    faults_scenarios: int
    faults_max_iterations: int
    service_submissions: int
    mapping_beam_width: int
    load_requests: int
    load_rate_rps: float
    #: The SLO-routed degraded-service bracket (fields appended so
    #: pinned positional configs above keep their meaning).
    fleet_accuracy_requests: int = 256
    fleet_accuracy_runs: int = 3


#: CI configuration: small Monte Carlo batches, full-scale engine run
#: (the ≥5x analytic speedup claim is only meaningful at paper scale).
SMOKE = BenchConfig(
    label="smoke",
    engine_iterations=1000,
    fleet_scenarios=8,
    fleet_requests=2048,
    faults_scenarios=4,
    faults_max_iterations=300,
    service_submissions=16,
    mapping_beam_width=8,
    load_requests=48,
    load_rate_rps=24.0,
    fleet_accuracy_requests=512,
    fleet_accuracy_runs=3,
)

FULL = BenchConfig(
    label="full",
    engine_iterations=1000,
    fleet_scenarios=8,
    fleet_requests=256,
    faults_scenarios=16,
    faults_max_iterations=1000,
    service_submissions=64,
    mapping_beam_width=8,
    load_requests=64,
    load_rate_rps=32.0,
    fleet_accuracy_requests=512,
    fleet_accuracy_runs=3,
)


@dataclass(frozen=True)
class BenchSnapshot:
    """One complete bench run, ready to serialize."""

    schema: int
    config: str
    created: str
    environment: Dict[str, str]
    metrics: Tuple[Metric, ...]

    def metric(self, name: str) -> Metric:
        """Look up one metric by name."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise ConfigurationError(f"snapshot has no metric {name!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "config": self.config,
            "created": self.created,
            "environment": dict(self.environment),
            "metrics": {metric.name: metric.to_dict() for metric in self.metrics},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BenchSnapshot":
        metrics = tuple(
            Metric(
                name=name,
                value=float(entry["value"]),
                unit=str(entry["unit"]),
                direction=str(entry["direction"]),
                atol=float(entry.get("atol", 0.0)),
            )
            for name, entry in sorted(payload["metrics"].items())
        )
        return cls(
            schema=int(payload["schema"]),
            config=str(payload["config"]),
            created=str(payload["created"]),
            environment=dict(payload.get("environment", {})),
            metrics=metrics,
        )

    def save(self, path: Path) -> Path:
        from repro.resilience import atomic_write_text

        path = Path(path)
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path.resolve()

    def format(self) -> str:
        """Human-readable table of the recorded metrics."""
        width = max(len(metric.name) for metric in self.metrics)
        lines = [f"bench snapshot ({self.config}, {self.created}):"]
        for metric in self.metrics:
            arrow = "↑" if metric.direction == "higher" else "↓"
            lines.append(
                f"  {metric.name:<{width}}  {metric.value:>14,.2f} "
                f"{metric.unit} ({arrow} better)"
            )
        return "\n".join(lines)


# -- snapshot file numbering ---------------------------------------------


def snapshot_paths(root: Path) -> List[Path]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by number."""
    root = Path(root)
    numbered = []
    for path in root.glob("BENCH_*.json"):
        match = _SNAPSHOT_PATTERN.match(path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    return [path for _, path in sorted(numbered)]


def latest_snapshot_path(root: Path) -> Optional[Path]:
    """The highest-numbered committed snapshot, or ``None``."""
    paths = snapshot_paths(root)
    return paths[-1] if paths else None


def next_snapshot_path(root: Path, number: Optional[int] = None) -> Path:
    """Where the next snapshot should be written under ``root``."""
    if number is None:
        paths = snapshot_paths(root)
        number = (
            int(_SNAPSHOT_PATTERN.match(paths[-1].name).group(1)) + 1
            if paths
            else 1
        )
    return Path(root) / f"BENCH_{number}.json"


def load_snapshot(path: Path) -> BenchSnapshot:
    """Read one snapshot file back."""
    return BenchSnapshot.from_dict(json.loads(Path(path).read_text()))


# -- bench sections -------------------------------------------------------


def _bench_engine(config: BenchConfig) -> List[Metric]:
    """Iterative vs analytic engine throughput at paper scale."""
    from repro.core.engine import WearLevelingEngine
    from repro.core.policies import make_policy
    from repro.experiments.common import paper_accelerator, streams_for

    accelerator = paper_accelerator()
    streams = streams_for("ResNet-50", accelerator)
    tiles_total = sum(stream.num_tiles for stream in streams)
    tiles_total *= config.engine_iterations

    def timed(mode: str):
        # Best of two passes: each engine starts with cold per-instance
        # memos, so repetition only filters out interpreter/OS noise.
        best_s, result = float("inf"), None
        for _ in range(2):
            engine = WearLevelingEngine(accelerator, make_policy("rwl+ro"))
            start = time.perf_counter()
            result = engine.run(
                streams,
                iterations=config.engine_iterations,
                record_trace=False,
                mode=mode,
            )
            best_s = min(best_s, time.perf_counter() - start)
        return best_s, result

    iterative_s, iterative = timed("iterative")
    analytic_s, analytic = timed("analytic")
    if not np.array_equal(iterative.counts, analytic.counts):
        raise ConfigurationError(
            "analytic and iterative engine runs diverged during the bench"
        )
    return [
        Metric(
            "engine_iterative_tiles_per_s",
            tiles_total / iterative_s,
            "tiles/s",
            "higher",
        ),
        Metric(
            "engine_analytic_tiles_per_s",
            tiles_total / analytic_s,
            "tiles/s",
            "higher",
        ),
        Metric(
            "engine_analytic_speedup", iterative_s / analytic_s, "x", "higher"
        ),
    ]


def _bench_fleet(config: BenchConfig) -> List[Metric]:
    """Fleet Monte Carlo wall-clock plus the profile-cache hit rate."""
    from repro.experiments.common import paper_accelerator
    from repro.fleet.montecarlo import sample_fleet_scenarios
    from repro.runtime.observe import collect_metrics

    accelerator = paper_accelerator()

    def sample():
        sample_fleet_scenarios(
            accelerator,
            num_requests=config.fleet_requests,
            num_scenarios=config.fleet_scenarios,
            seed=2025,
        )

    # Untimed warmup fills the workload-profile cache so the timed pass
    # measures steady-state dispatch + wear cost, not first-call cache
    # fills — matching the bench suite's ``once`` convention and keeping
    # the number comparable between a developer machine and cold CI.
    sample()
    with collect_metrics() as observed:
        start = time.perf_counter()
        sample()
        wall_s = time.perf_counter() - start
    lookups = observed.cache_hits + observed.cache_misses
    hit_rate = observed.cache_hits / lookups if lookups else 0.0
    return [
        Metric("fleet_mc_wall_s", wall_s, "s", "lower", atol=0.25),
        Metric("fleet_cache_hit_rate", hit_rate, "ratio", "higher"),
    ]


def _bench_fleet_accuracy(config: BenchConfig) -> List[Metric]:
    """SLO-routed degraded dispatch cost versus the rotational baseline.

    Times back-to-back fleet scenarios under ``slo_aware`` +
    ``serve-degraded-approx`` against ``rotational`` + ``retire`` on the
    same SLO-tagged traffic and budget seeds. The overhead ratio is the
    per-*completed-request* cost (degraded fleets serve more of the
    offered traffic, so wall-clock alone would overstate the dispatch
    cost).
    """
    from repro.accuracy.slo import SLOClass
    from repro.experiments.common import paper_accelerator
    from repro.experiments.fleet import _calibrated_fleet_budget
    from repro.fleet.device import build_profiles
    from repro.fleet.montecarlo import calibrated_rate
    from repro.fleet.simulate import FleetConfig, simulate_fleet
    from repro.fleet.traffic import WorkloadMix, make_traffic

    accelerator = paper_accelerator()
    mix = WorkloadMix.default_skewed().with_slos(
        (("SqueezeNet", SLOClass.tolerant(0.12)),)
    )
    profiles = build_profiles(mix.names, accelerator)
    budget = _calibrated_fleet_budget(
        profiles, mix, 4, config.fleet_accuracy_requests
    )
    base = FleetConfig(
        num_devices=4,
        policy="rotational",
        mean_budget=budget,
        min_alive_fraction=0.75,
    )
    rate = calibrated_rate(profiles, mix, base)
    requests = make_traffic(
        "bursty", config.fleet_accuracy_requests, rate, mix=mix, seed=2025
    )
    slo = FleetConfig(
        num_devices=4,
        policy="slo_aware",
        mean_budget=budget,
        min_alive_fraction=0.75,
        mode="serve-degraded-approx",
    )

    def timed(fleet_config):
        completed = 0
        start = time.perf_counter()
        for run in range(config.fleet_accuracy_runs):
            result = simulate_fleet(
                profiles,
                requests,
                accelerator=accelerator,
                config=fleet_config,
                seed=run,
            )
            completed += result.completed
        return time.perf_counter() - start, completed

    # Warmup fills the profile cache and the accuracy-calibration memo.
    simulate_fleet(
        profiles, requests, accelerator=accelerator, config=slo, seed=0
    )
    baseline_s, baseline_completed = timed(base)
    slo_s, slo_completed = timed(slo)
    scenarios_per_s = config.fleet_accuracy_runs / slo_s
    overhead = (slo_s / max(1, slo_completed)) / (
        baseline_s / max(1, baseline_completed)
    )
    return [
        Metric(
            "fleet_accuracy_scenarios_per_s",
            scenarios_per_s,
            "1/s",
            "higher",
        ),
        Metric(
            "fleet_accuracy_dispatch_overhead",
            overhead,
            "x",
            "lower",
            atol=0.75,
        ),
    ]


def _bench_faults(config: BenchConfig) -> List[Metric]:
    """Run-until-death fault Monte Carlo wall-clock."""
    from repro.experiments.common import paper_accelerator, streams_for
    from repro.faults.montecarlo import sample_fault_scenarios

    accelerator = paper_accelerator()
    streams = streams_for("SqueezeNet", accelerator)
    start = time.perf_counter()
    sample_fault_scenarios(
        accelerator,
        streams,
        num_scenarios=config.faults_scenarios,
        max_iterations=config.faults_max_iterations,
        seed=2025,
    )
    return [
        Metric(
            "faults_mc_wall_s",
            time.perf_counter() - start,
            "s",
            "lower",
            atol=1.0,
        )
    ]


def _bench_service(config: BenchConfig) -> List[Metric]:
    """Submit-to-result latency through the in-process service API."""
    from repro.service.api import ServiceAPI
    from repro.service.jobs import JobManager

    def submit_and_wait(api):
        start = time.perf_counter()
        submitted = api.handle("POST", "/v1/experiments/unfold/runs", {})
        if submitted.status != 202:
            raise ConfigurationError(
                f"bench job submission failed: {submitted.payload}"
            )
        job_id = submitted.payload["job"]["id"]
        while True:
            detail = api.handle("GET", f"/v1/runs/{job_id}", None)
            if detail.payload["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.002)
        if detail.payload["state"] != "done":
            raise ConfigurationError(
                f"bench job failed: {detail.payload.get('error')}"
            )
        return (time.perf_counter() - start) * 1000.0

    manager = JobManager(workers=2)
    manager.start()
    api = ServiceAPI(manager)
    latencies_ms = []
    try:
        # One untimed warmup run pays the experiment's cold cost; the
        # timed submissions then measure the service round-trip itself
        # (queue, dispatch, warm-cache execution, status polling).
        submit_and_wait(api)
        for _ in range(config.service_submissions):
            latencies_ms.append(submit_and_wait(api))
    finally:
        manager.shutdown(timeout=10.0)
    return [
        Metric(
            "service_submit_p50_ms",
            float(np.percentile(latencies_ms, 50)),
            "ms",
            "lower",
            atol=5.0,
        ),
        Metric(
            "service_submit_p99_ms",
            float(np.percentile(latencies_ms, 99)),
            "ms",
            "lower",
            atol=10.0,
        ),
    ]


def _bench_mapping_search(config: BenchConfig) -> List[Metric]:
    """Beam-search throughput and the enumeration-pruning payoff.

    Throughput prices a real-size conv layer through the beam engine
    (spatial ranking + thinned temporal enumeration + wear profiles)
    and reports candidates evaluated per second. The pruning metric
    walks one small layer's divisor lattice twice — dominance cuts on
    vs generate-and-test — and reports the wall-clock ratio.
    """
    from repro.dataflow.layer import LayerShape
    from repro.dataflow.scheduler import SchedulerOptions
    from repro.dataflow.search import search_layer
    from repro.dataflow.space import MappingSpace, SpaceStats
    from repro.experiments.common import paper_accelerator

    accelerator = paper_accelerator()
    layer = LayerShape.conv("bench", 64, 32, (28, 28), (3, 3))
    options = SchedulerOptions(
        objective="energy-wear",
        search="beam",
        beam_width=config.mapping_beam_width,
    )
    # Best of two: the second pass reuses warmed wear-profile memos the
    # way a network-level search would.
    best_s, result = float("inf"), None
    for _ in range(2):
        start = time.perf_counter()
        result = search_layer(accelerator, layer, options)
        best_s = min(best_s, time.perf_counter() - start)
    mappings_per_s = result.stats.evaluated / best_s

    # Channel-heavy enough that per-PE buffer legality cuts real
    # subtrees; small enough that the naive walk stays sub-second.
    small = LayerShape.conv("bench-small", 128, 128, (7, 7), (3, 3))
    small_options = SchedulerOptions(dataflow="output_stationary")
    space = MappingSpace(accelerator, small, small_options)

    def enumerate_all(prune: bool) -> float:
        stats = SpaceStats()
        start = time.perf_counter()
        for _ in space.points(prune=prune, stats=stats):
            pass
        return time.perf_counter() - start

    pruned_s = min(enumerate_all(prune=True) for _ in range(2))
    naive_s = min(enumerate_all(prune=False) for _ in range(2))
    return [
        Metric(
            "mapping_search_mappings_per_s",
            mappings_per_s,
            "mappings/s",
            "higher",
        ),
        Metric(
            "mapping_search_prune_speedup",
            naive_s / pruned_s,
            "x",
            "higher",
            # Both passes are short; interpreter noise must not read as
            # a pruning regression.
            atol=0.5,
        ),
    ]


def _bench_service_load(config: BenchConfig) -> List[Metric]:
    """Gateway vs single-inflight serve under duplicated open-loop load.

    The same seeded scenario (fleet-traffic arrivals over a small class
    set, so identical submissions overlap in flight) is offered to a
    4-process gateway and to a ``workers=1`` PR-4 thread service — the
    single-inflight baseline. Both run with their warm cache disabled
    *and* with ``REPRO_RESULT_CACHE=off`` in the executing processes —
    the experiments' internal memoization would otherwise collapse
    every repeat execution to a cache read and the comparison would
    price nothing. The gateway's advantage is therefore exactly what
    it adds: multi-process parallelism plus request coalescing.
    """
    import os
    import tempfile

    from repro.gateway.loadgen import LoadScenario, run_load
    from repro.gateway.server import GatewayConfig, GatewayService
    from repro.runtime import ResultCache
    from repro.service.server import RotaService, ServiceConfig

    scenario = LoadScenario(
        num_requests=config.load_requests, rate_rps=config.load_rate_rps
    )
    cache_env_before = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = "off"
    try:
        gateway = GatewayService(
            GatewayConfig(
                port=0,
                workers=4,
                queue_depth=max(256, config.load_requests),
                start_method="fork",
                cache_dir=tempfile.mkdtemp(prefix="rota-bench-gw-"),
                cache_enabled=False,
            )
        )
        gateway.start()
        try:
            gateway_report = run_load(gateway.url, scenario)
        finally:
            gateway.shutdown()

        serve = RotaService(
            ServiceConfig(
                port=0,
                workers=1,
                queue_depth=max(256, config.load_requests),
            ),
            cache=ResultCache(
                directory=tempfile.mkdtemp(prefix="rota-bench-serve-"),
                enabled=False,
            ),
        )
        serve.start()
        try:
            serve_report = run_load(serve.url, scenario)
        finally:
            serve.shutdown()
    finally:
        if cache_env_before is None:
            os.environ.pop("REPRO_RESULT_CACHE", None)
        else:
            os.environ["REPRO_RESULT_CACHE"] = cache_env_before

    if gateway_report.errors_5xx or serve_report.errors_5xx:
        raise ConfigurationError(
            f"load bench saw 5xx responses (gateway "
            f"{gateway_report.errors_5xx}, serve {serve_report.errors_5xx})"
        )
    speedup = (
        gateway_report.sustained_rps / serve_report.sustained_rps
        if serve_report.sustained_rps
        else 0.0
    )
    return [
        Metric(
            "service_load_gateway_rps",
            gateway_report.sustained_rps,
            "req/s",
            "higher",
            # Sustained RPS is wall-clock-bound: a loaded CI box slows
            # every execution, not the gateway's mechanics.
            atol=6.0,
        ),
        Metric(
            "service_load_gateway_p99_ms",
            gateway_report.p99_ms,
            "ms",
            "lower",
            atol=1000.0,
        ),
        Metric(
            "service_load_coalesce_ratio",
            gateway_report.coalesce_ratio,
            "ratio",
            "higher",
            # The ratio depends on in-flight overlap, which timing
            # jitter shifts by a request or two per run.
            atol=0.1,
        ),
        Metric(
            "service_load_speedup_vs_serve",
            speedup,
            "x",
            "higher",
            # The multiple stays well above the 4x floor, but its exact
            # value moves with how much backlog the run accumulates.
            atol=3.0,
        ),
    ]


_SECTIONS = (
    _bench_engine,
    _bench_fleet,
    _bench_fleet_accuracy,
    _bench_faults,
    _bench_service,
    _bench_mapping_search,
    _bench_service_load,
)


def run_bench(smoke: bool = False) -> BenchSnapshot:
    """Execute every bench section and assemble the snapshot."""
    config = SMOKE if smoke else FULL
    metrics: List[Metric] = []
    for section in _SECTIONS:
        metrics.extend(section(config))
    created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    environment = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
    }
    return BenchSnapshot(
        schema=SCHEMA_VERSION,
        config=config.label,
        created=created,
        environment=environment,
        metrics=tuple(metrics),
    )
