"""Durable performance snapshots: ``rota bench`` and ``BENCH_<n>.json``.

:mod:`repro.bench.snapshot` runs a pinned benchmark configuration —
engine throughput (iterative vs analytic), fleet and faults Monte Carlo
wall-clock, service submit-to-result latency, cache hit rates — and
serializes the result as a numbered ``BENCH_<n>.json`` at the repo
root. :mod:`repro.bench.compare` diffs two snapshots metric-by-metric
so CI can fail on regressions against the latest committed baseline.
"""

from repro.bench.compare import CompareReport, MetricDelta, compare_snapshots
from repro.bench.snapshot import (
    BenchConfig,
    BenchSnapshot,
    FULL,
    Metric,
    SMOKE,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    run_bench,
    snapshot_paths,
)

__all__ = [
    "BenchConfig",
    "BenchSnapshot",
    "CompareReport",
    "FULL",
    "Metric",
    "MetricDelta",
    "SMOKE",
    "compare_snapshots",
    "latest_snapshot_path",
    "load_snapshot",
    "next_snapshot_path",
    "run_bench",
    "snapshot_paths",
]
