"""Permanent faults and graceful degradation of the PE array.

The paper's wear-leveling delays the *first* PE failure; this subpackage
simulates what happens at and after it:

* :mod:`repro.faults.state` — :class:`FaultState`, the dead-PE set of
  one array, plus the :class:`DeathEvent` / :class:`DegradationStats`
  records the engine emits;
* :mod:`repro.faults.injection` — endurance budgets: deterministic or
  seeded-Weibull ``A_PE`` thresholds at which PEs die;
* :mod:`repro.faults.placement` — fault-aware placement: shift a
  blocked utilization space along the torus to the next clean start,
  or split it into sub-tiles when no full-size start exists;
* :mod:`repro.faults.montecarlo` — seeded scenario sampling of death
  times/locations, parallel-safe under the PR-1 chunking convention.

The engine integration lives in :class:`repro.core.engine.
WearLevelingEngine` (``fault_state=`` / ``budgets=`` parameters); the
end-to-end study in :mod:`repro.experiments.faults` (``rota faults``).
"""

from repro.faults.injection import EnduranceBudgets, sample_endurance_budgets
from repro.faults.placement import (
    FaultPlacement,
    PlacementPiece,
    best_feasible_shape,
    clean_start_mask,
    dead_in_window,
    next_clean_start,
    place_with_faults,
)
from repro.faults.state import DeathEvent, DegradationStats, FaultState

__all__ = [
    "DeathEvent",
    "DegradationStats",
    "EnduranceBudgets",
    "FaultPlacement",
    "FaultState",
    "PlacementPiece",
    "best_feasible_shape",
    "clean_start_mask",
    "dead_in_window",
    "next_clean_start",
    "place_with_faults",
    "sample_endurance_budgets",
]
