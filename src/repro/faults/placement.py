"""Fault-aware placement: shift, and when needed split, utilization spaces.

The torus makes routing *around* a dead PE cheap: a utilization space
that would overlap a dead PE simply shifts along the unidirectional
torus links to the next starting corner whose wrapped ``x x y`` window
is clean (:func:`next_clean_start`). When no clean full-size window
exists anywhere, the tile degrades gracefully: it splits into the
largest feasible sub-tiles, which execute sequentially and cost extra
tile slots — the throughput loss the degradation metrics account
(:func:`place_with_faults`).

On a mesh array (the baseline) the same logic applies, except windows
that would wrap past the boundary are never legal, exactly mirroring
the baseline's placement restriction elsewhere in the codebase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.positions import torus_scan
from repro.errors import ConfigurationError, SimulationError
from repro.faults.state import FaultState

Coord = Tuple[int, int]


def dead_in_window(dead_mask: np.ndarray, x: int, y: int) -> np.ndarray:
    """Dead-PE count inside each wrapped ``x x y`` window.

    ``result[v, u]`` is the number of dead PEs a space anchored at
    ``(u, v)`` would cover on a torus. Computed separably: first sum
    ``x`` cyclic column shifts, then ``y`` cyclic row shifts —
    ``O((x + y) * w * h)``, small for real arrays.
    """
    dead = np.asarray(dead_mask, dtype=np.int64)
    if dead.ndim != 2:
        raise ConfigurationError(f"dead mask must be 2-D, got shape {dead.shape}")
    h, w = dead.shape
    if not (1 <= x <= w and 1 <= y <= h):
        raise ConfigurationError(
            f"utilization space {x}x{y} does not fit the {w}x{h} array"
        )
    cols = np.zeros_like(dead)
    for i in range(x):
        cols += np.roll(dead, -i, axis=1)
    window = np.zeros_like(dead)
    for j in range(y):
        window += np.roll(cols, -j, axis=0)
    return window


def clean_start_mask(fault_state: FaultState, x: int, y: int) -> np.ndarray:
    """Boolean mask of legal, dead-free anchors for an ``x x y`` space.

    ``mask[v, u]`` is ``True`` when a space starting at ``(u, v)``
    covers no dead PE *and* is legal on the array's topology (on a mesh,
    wrapping windows are excluded; on a torus every anchor is legal).
    """
    array = fault_state.array
    window = dead_in_window(fault_state.dead_mask, x, y)
    mask = window == 0
    if not array.is_torus:
        us = np.arange(array.width)
        vs = np.arange(array.height)
        fits = (us[None, :] + x <= array.width) & (vs[:, None] + y <= array.height)
        mask &= fits
    return mask


def next_clean_start(
    fault_state: FaultState, start: Coord, x: int, y: int
) -> Optional[Coord]:
    """First clean anchor at or after ``start`` in torus-link order.

    Returns ``None`` when no anchor anywhere admits a clean ``x x y``
    placement. The nominal start itself is checked first, so a clean
    nominal placement is returned unchanged — faults never perturb
    placements they do not block.
    """
    mask = clean_start_mask(fault_state, x, y)
    return _scan_mask(mask, start, fault_state.array.width, fault_state.array.height)


def _scan_mask(mask: np.ndarray, start: Coord, w: int, h: int) -> Optional[Coord]:
    for u, v in torus_scan(start, w, h):
        if mask[v, u]:
            return (u, v)
    return None


@dataclass(frozen=True)
class PlacementPiece:
    """One placed rectangle of a (possibly split) data tile."""

    u: int
    v: int
    width: int
    height: int

    @property
    def num_pes(self) -> int:
        """PEs this piece activates."""
        return self.width * self.height


@dataclass(frozen=True)
class FaultPlacement:
    """Where one nominal tile actually landed under faults."""

    nominal_start: Coord
    nominal_shape: Tuple[int, int]
    pieces: Tuple[PlacementPiece, ...]

    @property
    def shifted(self) -> bool:
        """Whether the tile moved off its nominal anchor."""
        return (
            len(self.pieces) != 1
            or (self.pieces[0].u, self.pieces[0].v) != self.nominal_start
        )

    @property
    def degraded(self) -> bool:
        """Whether the tile had to split into sub-tiles."""
        return len(self.pieces) > 1

    @property
    def slots(self) -> int:
        """Sequential tile slots this placement occupies (1 if intact)."""
        return len(self.pieces)

    @property
    def num_pes(self) -> int:
        """Total PE activations (always ``x * y``: pieces tile the space)."""
        return sum(piece.num_pes for piece in self.pieces)


def best_feasible_shape(
    fault_state: FaultState, x: int, y: int
) -> Optional[Tuple[int, int]]:
    """Largest-area sub-shape of ``x x y`` with a clean anchor somewhere.

    Ties on area prefer the wider shape (fewer vertical seams), then the
    taller one — a fixed deterministic order so every run splits tiles
    identically. Returns ``None`` only when not even ``1x1`` fits, i.e.
    every PE is dead (or the mesh has no legal cell).
    """
    candidates = sorted(
        ((cx, cy) for cx in range(1, x + 1) for cy in range(1, y + 1)),
        key=lambda shape: (shape[0] * shape[1], shape[0], shape[1]),
        reverse=True,
    )
    for cx, cy in candidates:
        if bool(clean_start_mask(fault_state, cx, cy).any()):
            return (cx, cy)
    return None


def place_with_faults(
    fault_state: FaultState, start: Coord, x: int, y: int
) -> FaultPlacement:
    """Place one nominal ``x x y`` tile at (or near) ``start`` under faults.

    Resolution order:

    1. no dead PE in the nominal window — placed as-is;
    2. shift along the torus to the next clean full-size anchor;
    3. split into the largest feasible sub-tiles (graceful degradation),
       each placed at the next clean anchor continuing the same walk;
    4. raise :class:`~repro.errors.SimulationError` when no PE can host
       even a ``1x1`` piece (the array is fully dead).
    """
    array = fault_state.array
    w, h = array.width, array.height
    if not (1 <= x <= w and 1 <= y <= h):
        raise ConfigurationError(
            f"utilization space {x}x{y} does not fit the {w}x{h} array"
        )

    anchor = next_clean_start(fault_state, start, x, y)
    if anchor is not None:
        return FaultPlacement(
            nominal_start=start,
            nominal_shape=(x, y),
            pieces=(PlacementPiece(anchor[0], anchor[1], x, y),),
        )

    shape = best_feasible_shape(fault_state, x, y)
    if shape is None:
        raise SimulationError(
            f"no usable PEs left: cannot place even a 1x1 space on the "
            f"{w}x{h} array with {fault_state.num_dead} dead PEs"
        )
    sub_x, sub_y = shape
    mask = clean_start_mask(fault_state, sub_x, sub_y)
    pieces = []
    cursor = start
    # Split the nominal rectangle into a grid of sub_x x sub_y chunks
    # (edge chunks smaller); each chunk lands at the next clean anchor,
    # continuing the torus walk so pieces spread instead of piling up.
    for off_v in range(0, y, sub_y):
        for off_u in range(0, x, sub_x):
            piece_w = min(sub_x, x - off_u)
            piece_h = min(sub_y, y - off_v)
            spot = _scan_mask(mask, cursor, w, h)
            assert spot is not None  # mask known non-empty
            pieces.append(PlacementPiece(spot[0], spot[1], piece_w, piece_h))
            cursor = ((spot[0] + 1) % w, spot[1] if spot[0] + 1 < w else (spot[1] + 1) % h)
    return FaultPlacement(
        nominal_start=start, nominal_shape=(x, y), pieces=tuple(pieces)
    )
