"""Permanent-fault state of one PE array.

A :class:`FaultState` marks which PEs of an array have worn out. It is
the one mutable object of the fault subsystem: deaths accumulate as the
engine detects endurance-budget crossings (or as a study injects them
explicitly), and the fault-aware placement logic consults the dead mask
on every layer. Coordinates follow the scheduling convention used
everywhere else: ``(u, v)`` with ``u`` the column and ``v`` the row, so
the mask is indexed ``mask[v, u]`` exactly like a usage-count array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.arch.array import PEArray
from repro.errors import ConfigurationError

Coord = Tuple[int, int]


@dataclass(frozen=True)
class DeathEvent:
    """One PE's permanent wear-out failure, as the engine observed it."""

    iteration: int
    layer: str
    u: int
    v: int
    usage: int

    @property
    def coord(self) -> Coord:
        """The failed PE's ``(u, v)`` coordinate."""
        return (self.u, self.v)


@dataclass(frozen=True)
class DegradationStats:
    """Throughput accounting of a (possibly fault-degraded) run.

    A nominal tile occupies one tile slot; a tile split into ``k``
    sub-tiles occupies ``k`` sequential slots. The ratio of the two is
    the usable-throughput fraction a partially-dead array retains.
    """

    nominal_tiles: int
    executed_slots: int

    @property
    def slowdown(self) -> float:
        """Executed slots per nominal tile (1.0 = no degradation)."""
        if self.nominal_tiles == 0:
            return 1.0
        return self.executed_slots / self.nominal_tiles

    @property
    def usable_throughput(self) -> float:
        """Fraction of fault-free throughput retained (<= 1.0)."""
        if self.executed_slots == 0:
            return 1.0
        return self.nominal_tiles / self.executed_slots


class FaultState:
    """The set of permanently dead PEs on one array."""

    def __init__(self, array: PEArray, dead: Iterable[Coord] = ()) -> None:
        self._array = array
        self._mask = np.zeros(array.shape, dtype=bool)
        self._version = 0
        for coord in dead:
            self.kill(*coord)

    @classmethod
    def none(cls, array: PEArray) -> "FaultState":
        """A fault-free state (every PE alive)."""
        return cls(array)

    @classmethod
    def from_coords(cls, array: PEArray, coords: Iterable[Coord]) -> "FaultState":
        """A state with the given ``(u, v)`` PEs dead from the start."""
        return cls(array, dead=coords)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def array(self) -> PEArray:
        """The array whose faults are tracked."""
        return self._array

    @property
    def dead_mask(self) -> np.ndarray:
        """Read-only ``(h, w)`` boolean mask of dead PEs."""
        view = self._mask.view()
        view.setflags(write=False)
        return view

    @property
    def num_dead(self) -> int:
        """How many PEs have failed."""
        return int(self._mask.sum())

    @property
    def num_alive(self) -> int:
        """How many PEs still work."""
        return self._array.num_pes - self.num_dead

    @property
    def alive_fraction(self) -> float:
        """Fraction of the array that still works."""
        return self.num_alive / self._array.num_pes

    @property
    def any_dead(self) -> bool:
        """Whether at least one PE has failed."""
        return bool(self._mask.any())

    @property
    def version(self) -> int:
        """Monotonic change counter (bumps on every kill / revive).

        Placement caches key on ``(shape, version)`` so they invalidate
        exactly when the fault set changes.
        """
        return self._version

    def is_dead(self, u: int, v: int) -> bool:
        """Whether the PE at column ``u``, row ``v`` has failed."""
        self._check(u, v)
        return bool(self._mask[v, u])

    def dead_coords(self) -> List[Coord]:
        """All dead ``(u, v)`` coordinates in deterministic row-major order."""
        rows, cols = np.nonzero(self._mask)
        return [(int(u), int(v)) for v, u in zip(rows, cols)]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def kill(self, u: int, v: int) -> bool:
        """Mark the PE at ``(u, v)`` dead; return whether it was alive."""
        self._check(u, v)
        was_alive = not self._mask[v, u]
        if was_alive:
            self._mask[v, u] = True
            self._version += 1
        return was_alive

    def revive_all(self) -> None:
        """Clear every fault (fresh-array state)."""
        if self.any_dead:
            self._version += 1
        self._mask.fill(False)

    def copy(self) -> "FaultState":
        """An independent copy of this state."""
        clone = FaultState(self._array)
        clone._mask = self._mask.copy()
        clone._version = self._version
        return clone

    def _check(self, u: int, v: int) -> None:
        if not (0 <= u < self._array.width and 0 <= v < self._array.height):
            raise ConfigurationError(
                f"PE coordinate ({u}, {v}) outside the "
                f"{self._array.width}x{self._array.height} array"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultState({self._array.width}x{self._array.height}, "
            f"dead={self.num_dead})"
        )
