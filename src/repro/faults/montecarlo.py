"""Seeded Monte Carlo over wear-out fault scenarios.

Each scenario samples a per-PE endurance-budget field, runs a policy on
the accelerator until ``deaths`` PEs have failed (or ``max_iterations``
passes elapse), and records when and where the failures happened. The
seeding follows the determinism convention of
:mod:`repro.reliability.montecarlo`: one :class:`numpy.random.
SeedSequence` child is spawned per scenario *up front*, so the sampled
scenario set depends only on ``(seed, num_scenarios)`` — never on the
chunk size or on how chunks are distributed over worker processes.
Serial and parallel runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.dataflow.tiling import TileStream
from repro.errors import ConfigurationError
from repro.faults.injection import sample_endurance_budgets
from repro.reliability.weibull import JEDEC_BETA
from repro.resilience import CheckpointJournal
from repro.runtime import ParallelRunner, accelerator_fingerprint, content_hash

Seed = Union[int, np.random.SeedSequence]

#: Scenario engine runs are orders of magnitude heavier than the pure
#: Weibull draws of ``repro.reliability.montecarlo``, so chunks default
#: much smaller.
DEFAULT_CHUNK_SIZE = 8


@dataclass(frozen=True)
class ScenarioOutcome:
    """Death record of one sampled fault scenario."""

    #: Network iteration of each observed death, in death order.
    death_iterations: Tuple[int, ...]
    #: ``(u, v)`` coordinate of each observed death, in death order.
    death_coords: Tuple[Tuple[int, int], ...]
    #: Passes actually executed (== iteration of the last requested
    #: death, or the cap when the array outlived the run).
    iterations_run: int
    #: Usable-throughput fraction at the end of the scenario.
    usable_throughput: float

    @property
    def num_deaths(self) -> int:
        """Deaths observed before the run ended."""
        return len(self.death_iterations)

    @property
    def first_death_iteration(self) -> Optional[int]:
        """Iteration of the first failure (``None`` if none occurred)."""
        return self.death_iterations[0] if self.death_iterations else None


@dataclass(frozen=True)
class FaultScenarioSamples:
    """Aggregate of many sampled fault scenarios for one policy."""

    policy_name: str
    deaths: int
    max_iterations: int
    outcomes: Tuple[ScenarioOutcome, ...]

    @property
    def num_scenarios(self) -> int:
        """How many scenarios were sampled."""
        return len(self.outcomes)

    def lifetime_to(self, k: int) -> np.ndarray:
        """Iterations until the ``k``-th death, per scenario.

        Scenarios whose array outlived the run are censored at
        ``max_iterations`` (a conservative lower bound on the lifetime).
        """
        if not 1 <= k <= self.deaths:
            raise ConfigurationError(
                f"k must be in [1, {self.deaths}], got {k}"
            )
        values = [
            outcome.death_iterations[k - 1]
            if outcome.num_deaths >= k
            else self.max_iterations
            for outcome in self.outcomes
        ]
        return np.array(values, dtype=np.int64)

    @property
    def mean_lifetime_to_first(self) -> float:
        """Mean iterations to the first PE failure."""
        return float(self.lifetime_to(1).mean())

    def death_histogram(self, shape: Tuple[int, int]) -> np.ndarray:
        """How often each PE died, accumulated over all scenarios."""
        h, w = shape
        histogram = np.zeros((h, w), dtype=np.int64)
        for outcome in self.outcomes:
            for u, v in outcome.death_coords:
                histogram[v, u] += 1
        return histogram


def run_until_deaths(
    accelerator: Accelerator,
    policy_name: str,
    streams: Sequence[TileStream],
    budgets,
    deaths: int = 1,
    max_iterations: int = 1000,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
) -> Tuple[WearLevelingEngine, "ScenarioOutcome"]:
    """Run one policy until ``deaths`` PEs fail (or the iteration cap).

    Follows the :func:`repro.experiments.common.run_policies` topology
    convention: the baseline runs on the mesh variant, torus policies on
    the torus variant. Returns the engine (for ledger inspection) plus
    the scenario outcome.
    """
    policy = make_policy(policy_name, trigger)
    target = (
        accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
    )
    engine = WearLevelingEngine(target, policy, budgets=budgets)
    # Untraced budget runs take the analytic fast path: whole orbit
    # periods are folded between deaths while death timing stays
    # bit-identical to the iterative walk (budget-guarded cycle jumps).
    result = engine.run(
        streams,
        iterations=max_iterations,
        record_trace=False,
        stop_after_deaths=deaths,
        mode="analytic",
    )
    outcome = ScenarioOutcome(
        death_iterations=tuple(event.iteration for event in result.death_events),
        death_coords=tuple(event.coord for event in result.death_events),
        iterations_run=result.iterations,
        usable_throughput=result.degradation.usable_throughput,
    )
    return engine, outcome


def _scenario_chunk(spec: Tuple) -> Tuple[ScenarioOutcome, ...]:
    """Run one chunk of scenarios (module-level so pools can pickle it)."""
    (
        accelerator,
        policy_name,
        trigger,
        streams,
        scenario_seeds,
        mean_budget,
        beta,
        deaths,
        max_iterations,
    ) = spec
    outcomes = []
    for scenario_seed in scenario_seeds:
        budgets = sample_endurance_budgets(
            accelerator.array, mean_budget, beta=beta, seed=scenario_seed
        )
        _, outcome = run_until_deaths(
            accelerator,
            policy_name,
            streams,
            budgets,
            deaths=deaths,
            max_iterations=max_iterations,
            trigger=trigger,
        )
        outcomes.append(outcome)
    return tuple(outcomes)


def sample_fault_scenarios(
    accelerator: Accelerator,
    streams: Sequence[TileStream],
    policy_name: str = "rwl+ro",
    num_scenarios: int = 32,
    mean_budget: float = 10_000.0,
    beta: float = JEDEC_BETA,
    deaths: int = 1,
    max_iterations: int = 1000,
    seed: Seed = 2025,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: Optional[str] = None,
) -> FaultScenarioSamples:
    """Monte Carlo death statistics of one policy under sampled wear-out.

    ``jobs`` fans scenario chunks over a
    :class:`~repro.runtime.parallel.ParallelRunner` (``None`` reads
    ``REPRO_JOBS``; serial by default). Death times and locations are
    bit-identical for any ``jobs`` and ``chunk_size`` value: every
    scenario's budget field derives from its own pre-spawned
    ``SeedSequence`` child. ``checkpoint`` names a journal directory:
    completed chunks are recorded there and a rerun of the same
    configuration (enforced by a content-hash run key) skips them.
    """
    if num_scenarios < 1:
        raise ConfigurationError(
            f"num_scenarios must be positive, got {num_scenarios}"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    sequence = (
        seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    )
    scenario_seeds = sequence.spawn(num_scenarios)
    streams = tuple(streams)
    chunks = [
        scenario_seeds[start : start + chunk_size]
        for start in range(0, num_scenarios, chunk_size)
    ]
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(
            checkpoint,
            run_key=content_hash(
                "fault-scenarios",
                accelerator_fingerprint(accelerator),
                policy_name,
                trigger,
                streams,
                num_scenarios,
                float(mean_budget),
                float(beta),
                deaths,
                max_iterations,
                chunk_size,
                sequence,
            ),
        )
    runner = ParallelRunner(jobs)
    chunk_outcomes = runner.map(
        _scenario_chunk,
        [
            (
                accelerator,
                policy_name,
                trigger,
                streams,
                chunk,
                mean_budget,
                beta,
                deaths,
                max_iterations,
            )
            for chunk in chunks
        ],
        labels=[f"chunk-{index}" for index in range(len(chunks))],
        checkpoint=journal,
    )
    outcomes = tuple(
        outcome for chunk in chunk_outcomes for outcome in chunk
    )
    return FaultScenarioSamples(
        policy_name=policy_name,
        deaths=deaths,
        max_iterations=max_iterations,
        outcomes=outcomes,
    )
