"""Endurance budgets: when does a PE's usage count kill it?

The wear model of Section IV-B says a PE's stress-to-failure is Weibull
distributed. The ledger the engine keeps is the allocation count
``A_PE``, so the natural discrete fault model is: PE ``(u, v)`` dies
permanently once ``A_PE`` crosses an *endurance budget* sampled from
``Weibull(beta)`` scaled to a chosen mean. Budgets are drawn from a
:class:`numpy.random.SeedSequence`, matching the chunk-seeding
convention of :mod:`repro.reliability.montecarlo`: the sampled budgets
depend only on the seed and the array shape — never on how work is
later distributed over processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.arch.array import PEArray
from repro.errors import ConfigurationError
from repro.reliability.weibull import JEDEC_BETA

Seed = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class EnduranceBudgets:
    """Per-PE allocation budgets: a PE dies when ``A_PE >= budget``.

    ``budgets`` is a positive float array of the usage-ledger shape
    ``(h, w)``. Deterministic fault injection (explicit death points)
    is expressed by constructing budgets directly; stochastic wear-out
    by :func:`sample_endurance_budgets`.
    """

    budgets: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.budgets, dtype=float)
        if array.ndim != 2:
            raise ConfigurationError(
                f"endurance budgets must be a 2-D array, got shape {array.shape}"
            )
        if not np.all(array > 0):
            raise ConfigurationError("endurance budgets must be positive")
        object.__setattr__(self, "budgets", array)

    @property
    def shape(self):
        """Ledger shape ``(h, w)`` the budgets apply to."""
        return self.budgets.shape

    def exceeded(self, counts: np.ndarray) -> np.ndarray:
        """Boolean mask of PEs whose usage has crossed their budget."""
        counts = np.asarray(counts)
        if counts.shape != self.budgets.shape:
            raise ConfigurationError(
                f"usage shape {counts.shape} does not match budget "
                f"shape {self.budgets.shape}"
            )
        return counts >= self.budgets

    @classmethod
    def uniform(cls, array: PEArray, budget: float) -> "EnduranceBudgets":
        """Every PE shares one deterministic budget."""
        if budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")
        return cls(np.full(array.shape, float(budget)))


def _as_seed_sequence(seed: Seed) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def sample_endurance_budgets(
    array: PEArray,
    mean_budget: float,
    beta: float = JEDEC_BETA,
    seed: Optional[Seed] = 2025,
    minimum: float = 1.0,
) -> EnduranceBudgets:
    """Draw per-PE Weibull endurance budgets with the given mean.

    The scale is ``mean_budget / Gamma(1 + 1/beta)`` so the sampled
    budgets average ``mean_budget`` allocations. ``minimum`` floors the
    draws (a PE that dies before its first allocation would make the
    zero-fault equivalence property vacuous). The draw depends only on
    ``(seed, array shape)`` — the same seed always yields the same
    budget field, regardless of process count or call site.
    """
    if mean_budget <= 0:
        raise ConfigurationError(f"mean budget must be positive, got {mean_budget}")
    if beta <= 0:
        raise ConfigurationError(f"Weibull beta must be positive, got {beta}")
    if minimum <= 0:
        raise ConfigurationError(f"minimum budget must be positive, got {minimum}")
    rng = np.random.default_rng(_as_seed_sequence(seed))
    scale = mean_budget / math.gamma(1.0 + 1.0 / beta)
    draws = scale * rng.weibull(beta, size=array.shape)
    return EnduranceBudgets(np.maximum(draws, minimum))
