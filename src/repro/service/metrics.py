"""Live service metrics: jobs, cache traffic, tasks, and uptime.

One :class:`ServiceMetrics` instance lives for the lifetime of a
``rota serve`` process. Worker threads fold each finished job's
:class:`~repro.runtime.observe.RunMetrics` into it under a lock, the
HTTP layer counts requests and rejections, and ``GET /metrics``
serializes a :meth:`ServiceMetrics.snapshot`. Everything here is plain
counters — cheap enough to update on every request and every job.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.runtime.observe import RunMetrics

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counters for one service process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        # Job lifecycle counters.
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_rejected = 0
        self.jobs_timeout = 0
        self.job_seconds = 0.0
        # Resilience events folded out of each job's RunMetrics, plus
        # service-level recovery events (worker respawns).
        self.task_retries = 0
        self.task_timeouts = 0
        self.task_quarantines = 0
        self.cache_corruptions = 0
        self.workers_restarted = 0
        # Result-cache traffic observed by worker threads (includes the
        # service-level warm-hit store and every driver-level get/put).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_puts = 0
        self.cache_evictions = 0
        # ParallelRunner task timings observed by worker threads.
        self.tasks_run = 0
        self.task_seconds = 0.0
        # HTTP traffic.
        self.requests_total = 0
        self.requests_by_status: Dict[int, int] = {}
        # Exponential moving average of one job's service time, fed by
        # completed jobs only (failures finish fast and would bias the
        # estimate down). Backpressure uses it to compute Retry-After.
        self._ema_job_seconds: Optional[float] = None

    #: EMA smoothing: each new observation contributes 30%.
    EMA_ALPHA = 0.3

    @property
    def started_at(self) -> float:
        """Wall-clock time the service came up (epoch seconds)."""
        return self._started_at

    def uptime_seconds(self) -> float:
        """Seconds since the service came up (monotonic)."""
        return time.monotonic() - self._started_monotonic

    def record_request(self, status: int) -> None:
        """Count one HTTP response by status code."""
        with self._lock:
            self.requests_total += 1
            self.requests_by_status[status] = (
                self.requests_by_status.get(status, 0) + 1
            )

    def record_submitted(self) -> None:
        """Count one accepted job submission."""
        with self._lock:
            self.jobs_submitted += 1

    def record_rejected(self) -> None:
        """Count one submission bounced by backpressure (429)."""
        with self._lock:
            self.jobs_rejected += 1

    def record_cancelled(self) -> None:
        """Count one queued job cancelled by shutdown."""
        with self._lock:
            self.jobs_cancelled += 1

    def record_worker_restart(self) -> None:
        """Count one dead worker thread replaced by a fresh one."""
        with self._lock:
            self.workers_restarted += 1

    def _record_outcome_locked(
        self, seconds: float, failed: bool, timed_out: bool
    ) -> None:
        """Count one finished job and update the service-rate EMA."""
        if timed_out:
            self.jobs_timeout += 1
        elif failed:
            self.jobs_failed += 1
        else:
            self.jobs_completed += 1
            self._ema_job_seconds = (
                seconds
                if self._ema_job_seconds is None
                else (
                    self.EMA_ALPHA * seconds
                    + (1.0 - self.EMA_ALPHA) * self._ema_job_seconds
                )
            )
        self.job_seconds += seconds

    def record_job(
        self,
        run_metrics: Optional[RunMetrics],
        seconds: float,
        failed: bool = False,
        timed_out: bool = False,
    ) -> None:
        """Fold one finished job's observed events into the totals."""
        with self._lock:
            self._record_outcome_locked(seconds, failed, timed_out)
            if run_metrics is not None:
                self.cache_hits += run_metrics.cache_hits
                self.cache_misses += run_metrics.cache_misses
                self.cache_puts += run_metrics.cache_puts
                self.cache_evictions += run_metrics.cache_evictions
                self.tasks_run += len(run_metrics.task_timings)
                self.task_seconds += sum(
                    timing.seconds for timing in run_metrics.task_timings
                )
                self.task_retries += run_metrics.task_retries
                self.task_timeouts += run_metrics.task_timeouts
                self.task_quarantines += run_metrics.task_quarantines
                self.cache_corruptions += run_metrics.cache_corruptions

    def estimated_job_seconds(self) -> Optional[float]:
        """EMA of one completed job's service time (``None`` until one)."""
        with self._lock:
            return self._ema_job_seconds

    def snapshot(
        self,
        queue_depth: int = 0,
        jobs_running: int = 0,
        breaker: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON-ready view of every counter (the ``/metrics`` body)."""
        with self._lock:
            return {
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "started_at": self._started_at,
                "queue": {
                    "depth": queue_depth,
                    "running": jobs_running,
                },
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "completed": self.jobs_completed,
                    "failed": self.jobs_failed,
                    "cancelled": self.jobs_cancelled,
                    "rejected": self.jobs_rejected,
                    "timeout": self.jobs_timeout,
                    "seconds": round(self.job_seconds, 6),
                    "ema_seconds": (
                        None
                        if self._ema_job_seconds is None
                        else round(self._ema_job_seconds, 6)
                    ),
                },
                "resilience": {
                    "task_retries": self.task_retries,
                    "task_timeouts": self.task_timeouts,
                    "task_quarantines": self.task_quarantines,
                    "cache_corruptions": self.cache_corruptions,
                    "workers_restarted": self.workers_restarted,
                    "breaker": breaker,
                },
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "puts": self.cache_puts,
                    "evictions": self.cache_evictions,
                },
                "tasks": {
                    "run": self.tasks_run,
                    "seconds": round(self.task_seconds, 6),
                },
                "requests": {
                    "total": self.requests_total,
                    "by_status": {
                        str(status): count
                        for status, count in sorted(
                            self.requests_by_status.items()
                        )
                    },
                },
            }
