"""Transport-independent request handling for the simulation service.

:class:`ServiceAPI` maps ``(method, path, body)`` triples onto JSON
responses; the HTTP layer (:mod:`repro.service.server`) is a thin shim
around :meth:`ServiceAPI.handle`, which keeps the whole surface unit-
testable without sockets. The experiment surface is generated from
:mod:`repro.experiments.registry` — experiments appear, validate, and
run here the moment they are registered, with no service-side edits.

Error contract (mirrors the CLI's ``ReproError`` → exit-2 convention):
every failure is a structured JSON body ``{"error": {"code", "message",
...}}``, never a traceback. Validation failures carry a per-field
``fields`` mapping; backpressure responds 429; an open circuit breaker
responds 503 with ``Retry-After``; a timed-out run's detail responds
504; unknown experiments, jobs, and routes respond 404; anything
unexpected responds 500 with the exception type and message only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import math

from repro.errors import ConfigurationError, ReproError
from repro.resilience import CircuitOpenError, PoisonedTaskError
from repro.experiments.registry import (
    ParamValidationError,
    all_specs,
    get_spec,
    package_version,
)
from repro.experiments.result import to_jsonable
from repro.service.jobs import (
    JobManager,
    JobState,
    QueueFullError,
    ServiceStoppedError,
    UnknownJobError,
)

__all__ = ["ApiResponse", "ServiceAPI"]


@dataclass(frozen=True)
class ApiResponse:
    """One JSON response: status code, payload, and extra headers."""

    status: int
    payload: Dict[str, Any]
    headers: Tuple[Tuple[str, str], ...] = field(default=())


def _error(
    status: int,
    code: str,
    message: str,
    headers: Tuple[Tuple[str, str], ...] = (),
    **extra: Any,
) -> ApiResponse:
    """Build the uniform structured error body."""
    body: Dict[str, Any] = {"code": code, "message": message}
    body.update(extra)
    return ApiResponse(status=status, payload={"error": body}, headers=headers)


class ServiceAPI:
    """Routes service requests onto the registry and the job manager."""

    def __init__(self, manager: JobManager) -> None:
        self._manager = manager

    @property
    def manager(self) -> JobManager:
        """The job manager this API submits to."""
        return self._manager

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        headers: Optional[Mapping[str, str]] = None,
    ) -> ApiResponse:
        """Dispatch one request; never raises (errors become responses).

        ``headers`` (lower-cased names) is optional — transports that
        forward it enable conditional requests (``If-None-Match`` → 304
        on an unchanged job).
        """
        try:
            return self._route(
                method.upper(), path.rstrip("/") or "/", body, headers or {}
            )
        except ParamValidationError as error:
            return _error(
                400,
                "invalid-params",
                f"invalid parameters for experiment {error.spec_id!r}",
                fields=error.errors,
            )
        except QueueFullError as error:
            retry_after = max(1, int(getattr(error, "retry_after", 1)))
            return _error(
                429,
                "queue-full",
                str(error),
                headers=(("Retry-After", str(retry_after)),),
            )
        except CircuitOpenError as error:
            retry_after = max(1, math.ceil(error.retry_after))
            return _error(
                503,
                "circuit-open",
                str(error),
                headers=(("Retry-After", str(retry_after)),),
            )
        except ServiceStoppedError as error:
            return _error(503, "shutting-down", str(error))
        except PoisonedTaskError as error:
            # A quarantined content key: identical submissions keep
            # crashing workers, so they are failed fast, not retried.
            return _error(422, "quarantined", str(error))
        except UnknownJobError as error:
            return _error(404, "unknown-job", str(error))
        except ReproError as error:
            # The service twin of the CLI's one-line-stderr + exit 2.
            return _error(400, "repro-error", str(error))
        except Exception as error:  # noqa: BLE001 - never leak a traceback
            return _error(
                500,
                "internal-error",
                f"{type(error).__name__}: {error}",
            )

    # -- routing ------------------------------------------------------------

    def _route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        headers: Mapping[str, str],
    ) -> ApiResponse:
        if path == "/healthz":
            return self._healthz(method)
        if path == "/metrics":
            return self._metrics(method)
        if path == "/v1/experiments":
            return self._list_experiments(method)
        if path == "/v1/runs":
            return self._list_runs(method)
        parts = [part for part in path.split("/") if part]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "experiments":
            return self._experiment_detail(method, parts[2])
        if (
            len(parts) == 4
            and parts[0] == "v1"
            and parts[1] == "experiments"
            and parts[3] == "runs"
        ):
            return self._submit(method, parts[2], body)
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "runs":
            return self._run_detail(method, parts[2], headers)
        if (
            len(parts) == 4
            and parts[0] == "v1"
            and parts[1] == "runs"
            and parts[3] == "events"
        ):
            return self._run_events(method, parts[2], headers)
        return _error(404, "not-found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, allowed: str) -> Optional[ApiResponse]:
        if method != allowed:
            return _error(
                405,
                "method-not-allowed",
                f"expected {allowed}, got {method}",
                headers=(("Allow", allowed),),
            )
        return None

    # -- endpoints ----------------------------------------------------------

    def _healthz(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        workers = self._manager.worker_health()
        return ApiResponse(
            200,
            {
                "status": "ok",
                "version": package_version(),
                "uptime_seconds": round(
                    self._manager.metrics.uptime_seconds(), 3
                ),
                "workers": workers,
                "workers_alive": sum(1 for row in workers if row["alive"]),
            },
        )

    def _metrics(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        breaker = self._manager.breaker
        return ApiResponse(
            200,
            self._manager.metrics.snapshot(
                queue_depth=self._manager.queue_depth(),
                jobs_running=self._manager.running_count(),
                breaker=None if breaker is None else breaker.snapshot(),
            ),
        )

    def _list_experiments(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        return ApiResponse(
            200,
            {"experiments": [to_jsonable(spec) for spec in all_specs()]},
        )

    def _experiment_detail(self, method: str, spec_id: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        try:
            spec = get_spec(spec_id)
        except ConfigurationError as error:
            return _error(404, "unknown-experiment", str(error))
        return ApiResponse(200, {"experiment": to_jsonable(spec)})

    def _submit(
        self, method: str, spec_id: str, body: Optional[Dict[str, Any]]
    ) -> ApiResponse:
        rejected = self._require(method, "POST")
        if rejected:
            return rejected
        try:
            get_spec(spec_id)
        except ConfigurationError as error:
            return _error(404, "unknown-experiment", str(error))
        job = self._manager.submit(spec_id, body)
        return ApiResponse(
            202,
            {"job": job.summary(), "status_url": f"/v1/runs/{job.id}"},
            headers=(("Location", f"/v1/runs/{job.id}"),),
        )

    def _list_runs(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        return ApiResponse(
            200, {"runs": [job.summary() for job in self._manager.jobs()]}
        )

    def _run_detail(
        self, method: str, job_id: str, headers: Mapping[str, str]
    ) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        job = self._manager.get(job_id)
        etag = job.etag
        if headers.get("if-none-match") == etag:
            # The poller already holds this exact job state: cheap 304,
            # no body (transports must not serialize one).
            self._record_not_modified()
            return ApiResponse(304, {}, headers=(("ETag", etag),))
        # A timed-out job still returns its full detail body, but under
        # 504 so pollers can distinguish it without parsing the state.
        status = 504 if job.state == JobState.TIMEOUT else 200
        return ApiResponse(status, job.detail(), headers=(("ETag", etag),))

    def _record_not_modified(self) -> None:
        """Hook for metrics subclasses counting 304 responses."""
        record = getattr(self._manager.metrics, "record_not_modified", None)
        if record is not None:
            record()

    def _run_events(
        self, method: str, job_id: str, headers: Mapping[str, str]
    ) -> ApiResponse:
        """JSON replay of a job's progress events (the SSE fallback).

        The gateway's HTTP layer upgrades this route to a live
        ``text/event-stream``; through the transport-independent
        ``handle()`` contract (and on the thread-pool service, which
        keeps no event journal) it answers with the events recorded so
        far, honoring ``Last-Event-ID`` as the replay cursor.
        """
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        events_for = getattr(self._manager, "events_for", None)
        job = self._manager.get(job_id)
        if events_for is None:
            return _error(
                404,
                "not-streamable",
                "job progress streaming requires the gateway "
                "(start the service with `rota gateway`)",
            )
        try:
            cursor = int(headers.get("last-event-id", 0))
        except ValueError:
            cursor = 0
        events = [
            event for event in events_for(job.id) if event["seq"] > cursor
        ]
        return ApiResponse(
            200,
            {"job_id": job.id, "events": events, "terminal": job.done},
        )
