"""The service's job queue: bounded intake, worker threads, warm hits.

A :class:`JobManager` owns a bounded :class:`queue.Queue` of submitted
runs and a small pool of worker *threads* (not processes — each job's
driver already fans out through
:class:`~repro.runtime.parallel.ParallelRunner` when asked to). Each
worker executes jobs through the same
:func:`~repro.experiments.registry.run_experiment` entrypoint the CLI
uses, inside its own :func:`~repro.runtime.observe.collect_metrics`
scope (scopes are thread-local, so concurrent jobs never interleave
counters), and folds the observed cache/task events into the shared
:class:`~repro.service.metrics.ServiceMetrics`.

Completed payloads are stored in the persistent
:class:`~repro.runtime.cache.ResultCache` under a content key of
``(spec id, validated params, schema + package version)`` — a repeated
submission with identical parameters is served as a warm hit without
touching the simulation stack, and the hit is visible in ``/metrics``.

Backpressure and shutdown:

* a full queue raises :class:`QueueFullError` (the API maps it to 429);
* :meth:`JobManager.shutdown` stops intake, lets workers finish the
  jobs they are running (the SIGTERM drain), and cancels jobs still
  sitting in the queue.
"""

from __future__ import annotations

import itertools
import math
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.resilience import CircuitBreaker
from repro.experiments.registry import (
    get_spec,
    package_version,
    run_experiment,
    validate_params,
)
from repro.experiments.result import to_jsonable
from repro.runtime import CACHE_SCHEMA_VERSION, ResultCache, content_hash, result_cache
from repro.runtime.observe import collect_metrics
from repro.service.metrics import ServiceMetrics

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "ServiceStoppedError",
    "UnknownJobError",
]


class QueueFullError(ReproError):
    """The job queue is at capacity; the submission was rejected.

    ``retry_after`` is the backpressure hint (seconds) the API surfaces
    as a ``Retry-After`` header — computed from the current queue depth
    and the observed per-job service rate, not a constant.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ServiceStoppedError(ReproError):
    """The service is shutting down and no longer accepts submissions."""


class UnknownJobError(ReproError):
    """No job with the requested id exists."""


class JobState:
    """The job lifecycle: queued → running → done / failed / cancelled / timeout."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED, TIMEOUT)


@dataclass
class Job:
    """One submitted experiment run (mutated only under the manager lock)."""

    id: str
    spec_id: str
    params: Dict[str, Any]
    created_at: float
    state: str = JobState.QUEUED
    cached: bool = False
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[Dict[str, str]] = None
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: Bumped on every observable mutation; the basis of the detail
    #: endpoint's ``ETag`` (pollers sending ``If-None-Match`` get 304).
    version: int = 1

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in JobState.TERMINAL

    @property
    def etag(self) -> str:
        """The strong entity tag of the job's current state."""
        return f'"{self.id}-v{self.version}"'

    def summary(self) -> Dict[str, Any]:
        """JSON-ready status view (no result body — list endpoints)."""
        return {
            "id": self.id,
            "spec_id": self.spec_id,
            "params": to_jsonable(self.params),
            "state": self.state,
            "cached": self.cached,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    def detail(self) -> Dict[str, Any]:
        """JSON-ready full view, including result and manifest when done."""
        body = self.summary()
        body["result"] = None if self.payload is None else self.payload["result"]
        body["manifest"] = (
            None if self.payload is None else self.payload["manifest"]
        )
        return body


class JobManager:
    """Bounded job intake plus a worker-thread pool executing runs.

    Parameters
    ----------
    workers:
        Worker threads executing jobs (each runs one experiment at a
        time through :func:`run_experiment`).
    queue_depth:
        Maximum number of *queued* (not yet running) jobs; submissions
        beyond it raise :class:`QueueFullError`.
    cache:
        Warm-hit store for completed payloads; defaults to the
        environment-resolved persistent result cache.
    metrics:
        The service-wide counter sink (a fresh one when omitted).
    job_timeout:
        Wall-clock budget per executing job, in seconds. An overrunning
        job flips to :attr:`JobState.TIMEOUT` (the API maps it to 504)
        and its worker moves on; ``None`` disables the deadline.
    breaker:
        Optional :class:`~repro.resilience.CircuitBreaker`. Job
        failures/timeouts feed it; while it is open, :meth:`submit`
        raises :class:`~repro.resilience.CircuitOpenError` (the API
        maps it to 503 + ``Retry-After``).
    """

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 32,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        job_timeout: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"service workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ReproError(f"queue depth must be >= 1, got {queue_depth}")
        if job_timeout is not None and job_timeout <= 0:
            raise ReproError(f"job timeout must be > 0, got {job_timeout}")
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.breaker = breaker
        self._cache = cache if cache is not None else result_cache()
        self._workers = workers
        self._job_timeout = job_timeout
        self._queue: "queue.Queue[Job]" = queue.Queue(maxsize=queue_depth)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._running = 0
        self._counter = itertools.count(1)
        self._worker_stats: Dict[int, Dict[str, Any]] = {
            index: {"busy": None, "jobs_completed": 0, "restarts": 0}
            for index in range(workers)
        }

    # -- intake -------------------------------------------------------------

    def submit(self, spec_id: str, raw_params: Optional[Dict[str, Any]]) -> Job:
        """Validate and enqueue one run; returns the queued job.

        Raises :class:`~repro.errors.ConfigurationError` for an unknown
        experiment, :class:`~repro.experiments.registry.
        ParamValidationError` for a bad body,
        :class:`ServiceStoppedError` during shutdown,
        :class:`QueueFullError` when the queue is at capacity, and
        :class:`~repro.resilience.CircuitOpenError` while the breaker
        is shedding load.
        """
        spec = get_spec(spec_id)
        params = validate_params(spec, raw_params if raw_params is not None else {})
        if self._stop.is_set():
            raise ServiceStoppedError("service is shutting down")
        if self.breaker is not None:
            self.breaker.check()
        self._ensure_workers()
        job = Job(
            id=f"run-{next(self._counter):06d}-{uuid.uuid4().hex[:8]}",
            spec_id=spec.id,
            params=params,
            created_at=time.time(),
        )
        with self._lock:
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            self.metrics.record_rejected()
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} queued); retry later",
                retry_after=self.retry_after_seconds(),
            ) from None
        self.metrics.record_submitted()
        return job

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Look up one job by id."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def queue_depth(self) -> int:
        """Jobs waiting in the queue (approximate, by nature)."""
        return self._queue.qsize()

    def running_count(self) -> int:
        """Jobs currently executing on a worker thread."""
        with self._lock:
            return self._running

    def retry_after_seconds(self) -> int:
        """Backpressure hint for 429 responses, in whole seconds.

        Estimated time until the queue has drained enough to accept new
        work: outstanding jobs divided by the pool's observed service
        rate (EMA of completed-job seconds over ``workers`` lanes),
        clamped to [1, 60]. Before any job has completed there is no
        rate estimate and the hint stays at the 1-second floor.
        """
        ema = self.metrics.estimated_job_seconds()
        if ema is None:
            return 1
        outstanding = self.queue_depth() + self.running_count()
        estimate = math.ceil(outstanding * ema / max(1, self._workers))
        return int(min(60, max(1, estimate)))

    def worker_health(self) -> List[Dict[str, Any]]:
        """Per-worker liveness for ``/healthz`` (thread pool flavor)."""
        with self._lock:
            rows = []
            for index, thread in enumerate(self._threads):
                stats = self._worker_stats[index]
                rows.append(
                    {
                        "id": index,
                        "kind": "thread",
                        "name": thread.name,
                        "alive": thread.is_alive(),
                        "busy": stats["busy"] is not None,
                        "current_job": stats["busy"],
                        "jobs_completed": stats["jobs_completed"],
                        "restarts": stats["restarts"],
                    }
                )
            return rows

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self._workers):
            self._threads.append(self._spawn_worker(index))

    def _spawn_worker(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker_loop,
            args=(index,),
            name=f"rota-worker-{index}",
            daemon=True,
        )
        thread.start()
        return thread

    def _ensure_workers(self) -> None:
        """Replace worker threads that died; a dead thread must not
        silently shrink the pool to zero and strand queued jobs."""
        if not self._threads or self._stop.is_set():
            return
        with self._lock:
            for index, thread in enumerate(self._threads):
                if not thread.is_alive():
                    self._threads[index] = self._spawn_worker(index)
                    self._worker_stats[index]["restarts"] += 1
                    self.metrics.record_worker_restart()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop intake, drain running jobs, cancel queued ones.

        Workers finish the job they are currently executing (that is
        the graceful part of SIGTERM handling); jobs still waiting in
        the queue flip to ``cancelled``.
        """
        self._stop.set()
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            self._cancel(job)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def _cancel(self, job: Job) -> None:
        with self._lock:
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                job.version += 1
        self.metrics.record_cancelled()

    # -- execution ----------------------------------------------------------

    def _cache_key(self, job: Job) -> str:
        """Content key of one run (schema- and version-qualified)."""
        return content_hash(
            "service-run",
            CACHE_SCHEMA_VERSION,
            package_version(),
            job.spec_id,
            job.params,
        )

    def _worker_loop(self, index: int = 0) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if self._stop.is_set():
                # Shutdown raced our dequeue: the job never started, so
                # it is cancelled, not drained.
                self._cancel(job)
                continue
            try:
                self._execute(job, index)
            except BaseException:  # noqa: BLE001 - the loop itself must survive
                # _execute already routes ordinary exceptions into the
                # job record; anything that still escapes (KeyboardInterrupt
                # raised on a worker, MemoryError in the bookkeeping) must
                # not take the loop down with it.
                if not job.done:
                    self._fail(
                        job, code="worker-crash", message="worker thread crashed"
                    )

    def _execute(self, job: Job, index: int = 0) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.version += 1
            self._running += 1
            self._worker_stats[index]["busy"] = job.id
        observed = None
        failed = False
        timed_out = False
        start = time.perf_counter()
        try:
            payload = self._run_with_deadline(job)
            if payload is None:
                timed_out = True
                with self._lock:
                    job.state = JobState.TIMEOUT
                    job.error = {
                        "code": "timeout",
                        "message": (
                            f"job exceeded the {self._job_timeout:g}s "
                            f"request timeout"
                        ),
                    }
                    job.finished_at = time.time()
                    job.version += 1
            else:
                observed = payload.get("observed")
                with self._lock:
                    job.payload = payload["body"]
                    job.state = JobState.DONE
                    job.finished_at = time.time()
                    job.version += 1
        except ReproError as error:
            failed = True
            self._fail(job, code="repro-error", message=str(error))
        except Exception as error:  # noqa: BLE001 - a job must never kill its worker
            failed = True
            self._fail(
                job,
                code="internal-error",
                message=f"{type(error).__name__}: {error}",
            )
        finally:
            with self._lock:
                self._running -= 1
                stats = self._worker_stats[index]
                stats["busy"] = None
                if not failed and not timed_out:
                    stats["jobs_completed"] += 1
            self.metrics.record_job(
                observed,
                time.perf_counter() - start,
                failed=failed,
                timed_out=timed_out,
            )
            if self.breaker is not None:
                if failed or timed_out:
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()

    def _run_with_deadline(self, job: Job) -> Optional[Dict[str, Any]]:
        """Run one job, bounded by the configured wall-clock budget.

        Returns ``{"body": payload, "observed": RunMetrics}`` on
        completion or ``None`` on deadline overrun. The run happens on
        a helper daemon thread so the worker can abandon it; Python
        threads cannot be killed, so an overrunning run keeps burning
        its CPU until it finishes, but the job's slot and its caller
        are released immediately. Exceptions raised by the run are
        re-raised here, on the worker thread.

        The :func:`collect_metrics` scope lives *inside* the helper
        thread — observe scopes are thread-local, so wrapping the
        ``join`` would observe nothing.
        """
        if self._job_timeout is None:
            with collect_metrics() as observed:
                body = self._run_or_reuse(job)
            return {"body": body, "observed": observed}
        box: Dict[str, Any] = {}

        def _target() -> None:
            try:
                with collect_metrics() as observed:
                    box["body"] = self._run_or_reuse(job)
                box["observed"] = observed
            except BaseException as error:  # noqa: BLE001 - relayed below
                box["error"] = error

        helper = threading.Thread(
            target=_target, name=f"rota-job-{job.id}", daemon=True
        )
        helper.start()
        helper.join(self._job_timeout)
        if helper.is_alive():
            return None
        if "error" in box:
            raise box["error"]
        return {"body": box["body"], "observed": box.get("observed")}

    def _run_or_reuse(self, job: Job) -> Dict[str, Any]:
        """Serve the job from the warm-hit store or run it for real."""
        key = self._cache_key(job)
        hit = self._cache.get(key)
        if isinstance(hit, dict) and "result" in hit and "manifest" in hit:
            with self._lock:
                job.cached = True
            return hit
        run = run_experiment(job.spec_id, **job.params)
        payload = {
            "result": run.result.to_dict(),
            "manifest": run.manifest.to_dict(),
        }
        self._cache.put(key, payload)
        return payload

    def _fail(self, job: Job, code: str, message: str) -> None:
        with self._lock:
            job.state = JobState.FAILED
            job.error = {"code": code, "message": message}
            job.finished_at = time.time()
            job.version += 1
