"""Long-running simulation service: job queue, registry-driven API.

``rota serve`` turns the one-shot CLI into a warm resident daemon: the
HTTP surface is generated from :mod:`repro.experiments.registry`
(every registered experiment is listable, validatable, and runnable),
jobs flow through a bounded queue onto worker threads, repeat queries
are served from the persistent result cache, and ``/metrics`` exposes
live cache/queue/job counters. See ``docs/architecture.md``
("Serving") for the endpoint table and lifecycle semantics.
"""

from repro.service.api import ApiResponse, ServiceAPI
from repro.service.jobs import (
    Job,
    JobManager,
    JobState,
    QueueFullError,
    ServiceStoppedError,
    UnknownJobError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.server import RotaService, ServiceConfig, serve

__all__ = [
    "ApiResponse",
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "RotaService",
    "ServiceAPI",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceStoppedError",
    "UnknownJobError",
    "serve",
]
