"""The HTTP daemon behind ``rota serve``.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
parses the request line and JSON body, hands both to
:class:`~repro.service.api.ServiceAPI`, and writes the JSON response
back. All routing, validation, and error shaping live in the API layer;
this module adds only transport concerns — per-request socket timeouts,
request counting, and lifecycle:

* :class:`RotaService` ties config + metrics + job manager + HTTP
  server together and knows how to start and drain them;
* :func:`serve` is the CLI entrypoint: it installs SIGTERM/SIGINT
  handlers, blocks until a signal arrives, then shuts down gracefully —
  intake stops, running jobs finish, queued jobs cancel.
"""

from __future__ import annotations

import json
import signal
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError
from repro.resilience import CircuitBreaker
from repro.runtime import ResultCache
from repro.service.api import ApiResponse, ServiceAPI
from repro.service.jobs import JobManager
from repro.service.metrics import ServiceMetrics

__all__ = ["ServiceConfig", "RotaService", "serve"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one ``rota serve`` process.

    ``request_timeout`` is enforced end-to-end: it is both the
    per-request socket timeout and the wall-clock budget of each
    executing job (an overrunning job flips to ``timeout`` and its
    detail endpoint responds 504). ``breaker_threshold`` consecutive
    job failures open the circuit breaker, which sheds submissions
    with 503 + ``Retry-After`` until a probe succeeds after
    ``breaker_cooldown`` seconds.
    """

    host: str = "127.0.0.1"
    port: int = 8753
    workers: int = 2
    queue_depth: int = 32
    request_timeout: float = 300.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"serve workers must be >= 1, got {self.workers}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"serve queue depth must be >= 1, got {self.queue_depth}"
            )
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"serve request timeout must be > 0, got {self.request_timeout}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"serve breaker threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigurationError(
                f"serve breaker cooldown must be > 0, "
                f"got {self.breaker_cooldown}"
            )


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server that carries the API and config for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: Tuple[str, int], api: ServiceAPI, config: ServiceConfig
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.api = api
        self.config = config


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin JSON shim over :meth:`ServiceAPI.handle`."""

    server: _ServiceHTTPServer  # narrowed for the attribute accesses below
    server_version = "rota-serve"
    protocol_version = "HTTP/1.1"

    def setup(self) -> None:  # per-request socket timeout
        self.timeout = self.server.config.request_timeout
        super().setup()

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(body=None)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            body = self._read_json_body()
        except ValueError as error:
            self._write(
                ApiResponse(
                    400,
                    {"error": {"code": "invalid-json", "message": str(error)}},
                )
            )
            return
        self._dispatch(body=body)

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """Parse the JSON request body (``None`` when absent/empty)."""
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if parsed is not None and not isinstance(parsed, dict):
            raise ValueError(
                f"request body must be a JSON object, "
                f"got {type(parsed).__name__}"
            )
        return parsed

    def _dispatch(self, body: Optional[Dict[str, Any]]) -> None:
        path = urlsplit(self.path).path
        headers = {
            name.lower(): value for name, value in self.headers.items()
        }
        self._write(
            self.server.api.handle(self.command, path, body, headers)
        )

    def _write(self, response: ApiResponse) -> None:
        # A 304 must not carry a body (RFC 9110); everything else is a
        # JSON document.
        payload = (
            b""
            if response.status == 304
            else json.dumps(
                response.payload, indent=2, sort_keys=True
            ).encode("utf-8")
        )
        self.send_response(response.status)
        if payload:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if payload:
            self.wfile.write(payload)
        self.server.api.manager.metrics.record_request(response.status)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default per-request stderr chatter.

        The service is a daemon; request traffic is visible in
        ``/metrics`` instead of an unstructured access log.
        """


class RotaService:
    """One assembled service: metrics + job manager + API + HTTP server."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics()
        self.manager = JobManager(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            cache=cache,
            metrics=self.metrics,
            job_timeout=self.config.request_timeout,
            breaker=CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown_seconds=self.config.breaker_cooldown,
            ),
        )
        self.api = ServiceAPI(self.manager)
        self._httpd = _ServiceHTTPServer(
            (self.config.host, self.config.port), self.api, self.config
        )
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the workers and serve HTTP on a background thread."""
        self.manager.start()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="rota-serve-http",
                daemon=True,
            )
            self._serve_thread.start()

    def shutdown(self) -> str:
        """Graceful drain; returns a one-line shutdown summary.

        Order matters: stop accepting HTTP first (no new submissions),
        then drain the job manager — running jobs finish, queued jobs
        cancel.
        """
        if self._serve_thread is not None:
            self._httpd.shutdown()
            self._serve_thread.join()
            self._serve_thread = None
        self._httpd.server_close()
        self.manager.shutdown()
        metrics = self.metrics
        return (
            f"rota service drained: {metrics.jobs_completed} completed, "
            f"{metrics.jobs_failed} failed, {metrics.jobs_cancelled} "
            f"cancelled, {metrics.jobs_rejected} rejected; "
            f"{metrics.requests_total} requests in "
            f"{metrics.uptime_seconds():.1f}s"
        )


def serve(
    config: Optional[ServiceConfig] = None,
    install_signal_handlers: bool = True,
) -> str:
    """Run the service until SIGTERM/SIGINT, then drain and summarize.

    This is what ``rota serve`` calls: it prints one listening line
    (flushed before blocking, so wrappers can wait on it), parks the
    main thread on a shutdown event, and performs the graceful drain
    when a signal arrives.
    """
    service = RotaService(config)
    stop = threading.Event()

    if install_signal_handlers:

        def _request_shutdown(signum: int, frame: Any) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)

    service.start()
    print(
        f"rota service listening on {service.url} "
        f"(workers={service.config.workers}, "
        f"queue={service.config.queue_depth}); SIGTERM drains",
        flush=True,
    )
    stop.wait()
    return service.shutdown()
