"""Analysis helpers: imbalance metrics, heatmaps, tables, CSV export."""

from repro.analysis.attribution import WearAttribution, attribute_wear
from repro.analysis.export import counts_to_csv, trace_to_csv, write_csv
from repro.analysis.heatmap import heatmap_grid, render_heatmap, render_heatmap_grid
from repro.analysis.network_report import NetworkProfile, profile_network
from repro.analysis.metrics import (
    balance_summary,
    max_usage_difference,
    usage_gini,
    usage_r_diff,
)
from repro.analysis.report import format_table

__all__ = [
    "WearAttribution",
    "attribute_wear",
    "balance_summary",
    "counts_to_csv",
    "format_table",
    "heatmap_grid",
    "NetworkProfile",
    "max_usage_difference",
    "profile_network",
    "render_heatmap",
    "render_heatmap_grid",
    "trace_to_csv",
    "usage_gini",
    "usage_r_diff",
    "write_csv",
]
