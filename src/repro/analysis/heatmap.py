"""Terminal heatmaps of per-PE usage (Figs. 3 and 6c-e).

The paper's heatmaps show where stress concentrates in the array; the
same information renders well in a terminal with a density ramp. Row 0
(the scheduling origin) is drawn at the *bottom*, matching the paper's
lower-left-corner orientation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SimulationError

#: Density ramp from idle to hottest.
_RAMP = " .:-=+*#%@"


def heatmap_grid(counts) -> np.ndarray:
    """Normalize a usage array to [0, 1] for rendering or export."""
    array = np.asarray(counts, dtype=float)
    if array.ndim != 2:
        raise SimulationError(f"heatmap needs a 2-D array, got shape {array.shape}")
    peak = array.max()
    if peak <= 0:
        return np.zeros_like(array)
    return array / peak


def render_heatmap(counts, title: str = "", legend: bool = True) -> str:
    """Render a usage array as an ASCII heatmap string."""
    grid = heatmap_grid(counts)
    levels = np.minimum((grid * (len(_RAMP) - 1)).round().astype(int), len(_RAMP) - 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    # Flip vertically: row 0 is the array's bottom row in the paper.
    for row in levels[::-1]:
        lines.append("".join(_RAMP[level] for level in row))
    if legend:
        array = np.asarray(counts, dtype=float)
        lines.append(
            f"[min={array.min():g} max={array.max():g} "
            f"ramp='{_RAMP.strip() or ' '}']"
        )
    return "\n".join(lines)
