"""Terminal heatmaps of per-PE usage (Figs. 3 and 6c-e).

The paper's heatmaps show where stress concentrates in the array; the
same information renders well in a terminal with a density ramp. Row 0
(the scheduling origin) is drawn at the *bottom*, matching the paper's
lower-left-corner orientation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SimulationError

#: Density ramp from idle to hottest.
_RAMP = " .:-=+*#%@"


def heatmap_grid(counts) -> np.ndarray:
    """Normalize a usage array to [0, 1] for rendering or export."""
    array = np.asarray(counts, dtype=float)
    if array.ndim != 2:
        raise SimulationError(f"heatmap needs a 2-D array, got shape {array.shape}")
    peak = array.max()
    if peak <= 0:
        return np.zeros_like(array)
    return array / peak


#: Glyph marking a permanently dead PE in fault-study heatmaps.
_DEAD_GLYPH = "X"


def render_heatmap(counts, title: str = "", legend: bool = True, dead=None) -> str:
    """Render a usage array as an ASCII heatmap string.

    ``dead`` (optional) is a boolean ``(h, w)`` mask of permanently
    failed PEs; those cells render as ``X`` on top of the density ramp —
    the dead-PE overlay of the fault and degradation studies.
    """
    grid = heatmap_grid(counts)
    levels = np.minimum((grid * (len(_RAMP) - 1)).round().astype(int), len(_RAMP) - 1)
    dead_mask = None
    if dead is not None:
        dead_mask = np.asarray(dead, dtype=bool)
        if dead_mask.shape != levels.shape:
            raise SimulationError(
                f"dead mask shape {dead_mask.shape} does not match counts "
                f"shape {levels.shape}"
            )
    lines: List[str] = []
    if title:
        lines.append(title)
    # Flip vertically: row 0 is the array's bottom row in the paper.
    for v in range(levels.shape[0] - 1, -1, -1):
        lines.append(
            "".join(
                _DEAD_GLYPH
                if dead_mask is not None and dead_mask[v, u]
                else _RAMP[levels[v, u]]
                for u in range(levels.shape[1])
            )
        )
    if legend:
        array = np.asarray(counts, dtype=float)
        extra = ""
        if dead_mask is not None:
            extra = f" dead={int(dead_mask.sum())}({_DEAD_GLYPH})"
        lines.append(
            f"[min={array.min():g} max={array.max():g} "
            f"ramp='{_RAMP.strip() or ' '}'{extra}]"
        )
    return "\n".join(lines)
