"""Terminal heatmaps of per-PE usage (Figs. 3 and 6c-e).

The paper's heatmaps show where stress concentrates in the array; the
same information renders well in a terminal with a density ramp. Row 0
(the scheduling origin) is drawn at the *bottom*, matching the paper's
lower-left-corner orientation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

#: Density ramp from idle to hottest.
_RAMP = " .:-=+*#%@"


def heatmap_grid(counts, peak: Optional[float] = None) -> np.ndarray:
    """Normalize a usage array to [0, 1] for rendering or export.

    ``peak`` overrides the normalization ceiling (default: the array's
    own maximum) — pass a shared peak to render several arrays on one
    comparable scale.
    """
    array = np.asarray(counts, dtype=float)
    if array.ndim != 2:
        raise SimulationError(f"heatmap needs a 2-D array, got shape {array.shape}")
    if peak is None:
        peak = array.max()
    elif peak < 0:
        raise SimulationError(f"peak must be non-negative, got {peak}")
    if peak <= 0:
        return np.zeros_like(array)
    return np.minimum(array / peak, 1.0)


#: Glyph marking a permanently dead PE in fault-study heatmaps.
_DEAD_GLYPH = "X"


def render_heatmap(
    counts,
    title: str = "",
    legend: bool = True,
    dead=None,
    peak: Optional[float] = None,
) -> str:
    """Render a usage array as an ASCII heatmap string.

    ``dead`` (optional) is a boolean ``(h, w)`` mask of permanently
    failed PEs; those cells render as ``X`` on top of the density ramp —
    the dead-PE overlay of the fault and degradation studies. ``peak``
    (optional) pins the ramp's ceiling so several heatmaps share one
    scale.
    """
    grid = heatmap_grid(counts, peak=peak)
    levels = np.minimum((grid * (len(_RAMP) - 1)).round().astype(int), len(_RAMP) - 1)
    dead_mask = None
    if dead is not None:
        dead_mask = np.asarray(dead, dtype=bool)
        if dead_mask.shape != levels.shape:
            raise SimulationError(
                f"dead mask shape {dead_mask.shape} does not match counts "
                f"shape {levels.shape}"
            )
    lines: List[str] = []
    if title:
        lines.append(title)
    # Flip vertically: row 0 is the array's bottom row in the paper.
    for v in range(levels.shape[0] - 1, -1, -1):
        lines.append(
            "".join(
                _DEAD_GLYPH
                if dead_mask is not None and dead_mask[v, u]
                else _RAMP[levels[v, u]]
                for u in range(levels.shape[1])
            )
        )
    if legend:
        array = np.asarray(counts, dtype=float)
        extra = ""
        if dead_mask is not None:
            extra = f" dead={int(dead_mask.sum())}({_DEAD_GLYPH})"
        lines.append(
            f"[min={array.min():g} max={array.max():g} "
            f"ramp='{_RAMP.strip() or ' '}'{extra}]"
        )
    return "\n".join(lines)


def render_heatmap_grid(
    panels: Sequence[Tuple],
    title: str = "",
    legend: bool = True,
    gap: int = 3,
) -> str:
    """Render several arrays side by side on one shared color scale.

    ``panels`` is a sequence of ``(label, counts)`` or
    ``(label, counts, dead_mask)`` tuples — one per-device α-heatmap
    each, say. Every panel is normalized against the *global* peak, so
    density glyphs are directly comparable across panels: the whole
    point of a small-multiples view of fleet wear.
    """
    if not panels:
        raise SimulationError("a heatmap grid needs at least one panel")
    unpacked = []
    for panel in panels:
        label, counts = panel[0], np.asarray(panel[1], dtype=float)
        dead = panel[2] if len(panel) > 2 else None
        unpacked.append((str(label), counts, dead))
    shared_peak = max(counts.max() for _, counts, _ in unpacked)
    rendered = [
        render_heatmap(counts, legend=False, dead=dead, peak=shared_peak).split("\n")
        for _, counts, dead in unpacked
    ]
    height = max(len(block) for block in rendered)
    widths = [
        max(len(label), max(len(line) for line in block))
        for (label, _, _), block in zip(unpacked, rendered)
    ]
    spacer = " " * gap
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        spacer.join(
            label.ljust(width) for (label, _, _), width in zip(unpacked, widths)
        )
    )
    for row in range(height):
        lines.append(
            spacer.join(
                (block[row] if row < len(block) else "").ljust(width)
                for block, width in zip(rendered, widths)
            ).rstrip()
        )
    if legend:
        total_dead = sum(
            int(np.asarray(dead, dtype=bool).sum())
            for _, _, dead in unpacked
            if dead is not None
        )
        extra = f" dead={total_dead}({_DEAD_GLYPH})" if total_dead else ""
        lines.append(
            f"[shared max={shared_peak:g} ramp='{_RAMP.strip() or ' '}'{extra}]"
        )
    return "\n".join(lines)
