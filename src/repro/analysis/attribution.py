"""Wear attribution: which layers cause the baseline imbalance?

The baseline's stress hotspot is the superposition of every layer's
anchored utilization space. Attribution decomposes the hot corner's
stress by layer — the per-layer share of usage landing on the PE that
limits the array's lifetime — so a designer can see *which* layers to
reshape (or which the wear-leveler must rotate hardest). Shares are
exact: baseline usage is additive across layers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import BaselinePolicy
from repro.dataflow.tiling import TileStream
from repro.errors import SimulationError


@dataclass(frozen=True)
class LayerAttribution:
    """One layer's contribution to the limiting PE's stress."""

    layer: str
    hot_pe_usage: int
    total_usage: int
    hot_share: float
    utilization: float


@dataclass(frozen=True)
class WearAttribution:
    """Per-layer decomposition of the baseline's hottest-PE stress."""

    hot_pe: Tuple[int, int]
    hot_pe_usage: int
    rows: Tuple[LayerAttribution, ...]

    def __post_init__(self) -> None:
        if not self.rows:
            raise SimulationError("attribution needs at least one layer")

    @property
    def shares_sum_to_one(self) -> bool:
        """Attribution is exact: the shares partition the hot PE's usage."""
        return abs(sum(row.hot_share for row in self.rows) - 1.0) < 1e-9

    def top(self, n: int = 5) -> Tuple[LayerAttribution, ...]:
        """The ``n`` layers contributing most to the hot PE."""
        ordered = sorted(self.rows, key=lambda row: row.hot_share, reverse=True)
        return tuple(ordered[:n])

    def format(self, limit: int = 10) -> str:
        """Attribution table, biggest contributors first."""
        rows = [
            (
                row.layer,
                row.hot_pe_usage,
                f"{row.hot_share:.1%}",
                f"{row.utilization:.0%}",
            )
            for row in self.top(limit)
        ]
        col, row_idx = self.hot_pe
        return format_table(
            ("layer", "hot-PE usage", "share", "layer util"),
            rows,
            title=(
                f"Wear attribution — hottest PE at (u={col}, v={row_idx}) "
                f"with {self.hot_pe_usage} allocations"
            ),
        )


def attribute_wear(
    accelerator: Accelerator,
    streams: Sequence[TileStream],
    iterations: int = 1,
) -> WearAttribution:
    """Decompose the baseline hot-PE stress by layer.

    Runs each layer's stream separately under the fixed-corner baseline
    (baseline ledgers are additive, so per-layer runs sum exactly to the
    combined run) and reports each layer's share at the combined ledger's
    hottest PE.
    """
    if not streams:
        raise SimulationError("attribution needs at least one tile stream")
    mesh = accelerator.as_mesh()
    per_layer = []
    for stream in streams:
        engine = WearLevelingEngine(mesh, BaselinePolicy())
        engine.run([stream], iterations=iterations, record_trace=False)
        per_layer.append(engine.tracker.snapshot())

    combined = np.sum(per_layer, axis=0)
    flat_hot = int(combined.argmax())
    hot_row, hot_col = divmod(flat_hot, combined.shape[1])
    hot_total = int(combined[hot_row, hot_col])
    if hot_total <= 0:
        raise SimulationError("no usage recorded; streams were empty")

    num_pes = combined.size
    rows = []
    for stream, counts in zip(streams, per_layer):
        at_hot = int(counts[hot_row, hot_col])
        rows.append(
            LayerAttribution(
                layer=stream.layer_name,
                hot_pe_usage=at_hot,
                total_usage=int(counts.sum()),
                hot_share=at_hot / hot_total,
                utilization=stream.active_pes_per_tile / num_pes,
            )
        )
    return WearAttribution(
        hot_pe=(hot_col, hot_row), hot_pe_usage=hot_total, rows=tuple(rows)
    )
