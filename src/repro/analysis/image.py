"""Heatmap image export (PPM/PGM, no plotting dependencies).

The paper's Figs. 3 and 6c-e are color heatmaps. Terminal ASCII renders
are useful interactively, but for reports users want image files; this
module writes binary PPM (color) and PGM (grayscale) files — formats
every image viewer and converter understands — using only numpy.

The color ramp is a blue -> yellow -> red "heat" gradient with a
distinct color for fully idle PEs, matching how the paper's heatmaps
read: cold (unused) cells stand out against the wear gradient.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

#: Anchor colors of the heat ramp (positions in [0, 1], RGB in 0-255).
_RAMP: Sequence[Tuple[float, Tuple[int, int, int]]] = (
    (0.00, (20, 42, 120)),  # deep blue
    (0.35, (38, 130, 190)),  # blue
    (0.60, (250, 220, 80)),  # yellow
    (0.85, (240, 120, 40)),  # orange
    (1.00, (200, 20, 30)),  # red
)

#: Color of never-used PEs (outside the ramp so they pop).
_IDLE_COLOR = (235, 235, 235)


def _ramp_lookup(values: np.ndarray) -> np.ndarray:
    """Map normalized values in [0, 1] to RGB via the heat ramp."""
    positions = np.array([p for p, _ in _RAMP])
    channels = np.array([c for _, c in _RAMP], dtype=float)
    rgb = np.empty(values.shape + (3,), dtype=np.uint8)
    for channel in range(3):
        rgb[..., channel] = np.clip(
            np.interp(values, positions, channels[:, channel]), 0, 255
        ).astype(np.uint8)
    return rgb


def heatmap_rgb(counts, scale: int = 24, peak: Optional[float] = None) -> np.ndarray:
    """Render a usage array as an RGB pixel array.

    Each PE becomes a ``scale x scale`` block; row 0 (the scheduling
    origin) is drawn at the *bottom*, matching the paper's orientation.
    ``peak`` overrides the color ceiling (default: the array's own
    maximum) so several heatmaps can share one color scale.
    """
    array = np.asarray(counts, dtype=float)
    if array.ndim != 2:
        raise SimulationError(f"heatmap needs a 2-D array, got {array.shape}")
    if scale < 1:
        raise SimulationError(f"scale must be >= 1, got {scale}")
    if peak is None:
        peak = array.max()
    elif peak < 0:
        raise SimulationError(f"peak must be non-negative, got {peak}")
    normalized = np.minimum(array / peak, 1.0) if peak > 0 else np.zeros_like(array)
    rgb = _ramp_lookup(normalized)
    idle = array == 0
    rgb[idle] = _IDLE_COLOR
    # Flip vertically (origin at the bottom) and upsample to blocks.
    rgb = rgb[::-1]
    rgb = np.repeat(np.repeat(rgb, scale, axis=0), scale, axis=1)
    return rgb


def write_ppm(rgb: np.ndarray, path) -> Path:
    """Write an RGB array as a binary PPM (P6) file."""
    pixels = np.asarray(rgb)
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise SimulationError(f"PPM needs an (h, w, 3) array, got {pixels.shape}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    height, width, _ = pixels.shape
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    target.write_bytes(header + pixels.astype(np.uint8).tobytes())
    return target.resolve()


def write_pgm(gray: np.ndarray, path) -> Path:
    """Write a grayscale array as a binary PGM (P5) file."""
    pixels = np.asarray(gray)
    if pixels.ndim != 2:
        raise SimulationError(f"PGM needs an (h, w) array, got {pixels.shape}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    height, width = pixels.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    target.write_bytes(header + pixels.astype(np.uint8).tobytes())
    return target.resolve()


def heatmap_to_ppm(counts, path, scale: int = 24, peak: Optional[float] = None) -> Path:
    """One-call export: usage array to a PPM heatmap file."""
    return write_ppm(heatmap_rgb(counts, scale=scale, peak=peak), path)
