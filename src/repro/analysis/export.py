"""CSV and JSON export of experiment results.

Every figure driver produces structured rows; these helpers serialize
them (and raw engine traces) to CSV — and arbitrary result payloads to
JSON — so downstream users can re-plot the reproduction's data with
their own tooling. Only the standard library's ``csv`` and ``json``
modules are used; files are written atomically via a temp file.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.engine import RunResult
from repro.errors import SimulationError


def write_csv(path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write rows to ``path`` atomically and return the resolved path."""
    if not headers:
        raise SimulationError("CSV export needs at least one column")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    materialized = [tuple(row) for row in rows]
    for index, row in enumerate(materialized):
        if len(row) != len(headers):
            raise SimulationError(
                f"CSV row {index} has {len(row)} cells, expected {len(headers)}"
            )
    handle, temp_name = tempfile.mkstemp(
        dir=str(target.parent), suffix=".csv.tmp", text=True
    )
    try:
        with os.fdopen(handle, "w", newline="") as stream:
            writer = csv.writer(stream)
            writer.writerow(headers)
            writer.writerows(materialized)
        os.replace(temp_name, target)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return target.resolve()


def trace_to_csv(result: RunResult, path) -> Path:
    """Export an engine run's per-iteration imbalance trace."""
    if not result.trace:
        raise SimulationError(
            "run has no trace; rerun the engine with record_trace=True"
        )
    headers = (
        "iteration",
        "tiles_seen",
        "max_usage",
        "min_usage",
        "max_difference",
        "r_diff",
    )
    rows = [
        (
            point.iteration,
            point.tiles_seen,
            point.max_usage,
            point.min_usage,
            point.max_difference,
            point.r_diff,
        )
        for point in result.trace
    ]
    return write_csv(path, headers, rows)


def counts_to_csv(counts: np.ndarray, path) -> Path:
    """Export a usage heatmap as ``(row, col, usage)`` triples."""
    array = np.asarray(counts)
    if array.ndim != 2:
        raise SimulationError(f"usage export needs a 2-D array, got {array.shape}")
    rows = [
        (row, col, int(array[row, col]))
        for row in range(array.shape[0])
        for col in range(array.shape[1])
    ]
    return write_csv(path, ("row", "col", "usage"), rows)


def write_json(path, payload: Any) -> Path:
    """Write a JSON-safe payload to ``path`` atomically.

    ``payload`` must already be plain data — run experiment results
    through :func:`repro.experiments.result.to_jsonable` first. Output
    is deterministic (sorted keys, two-space indent, trailing newline).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=str(target.parent), suffix=".json.tmp", text=True
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target.resolve()
