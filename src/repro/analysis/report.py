"""Fixed-width table formatting for benchmark and CLI output.

Every experiment driver prints its paper-table rows through
:func:`format_table` so the reproduction's console output stays uniform.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SimulationError


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render a list of rows as an aligned fixed-width text table.

    Floats are printed with three decimals; everything else via ``str``.
    """
    if not headers:
        raise SimulationError("table needs at least one column")
    rendered: List[List[str]] = [[_render_cell(value) for value in row] for row in rows]
    for index, row in enumerate(rendered):
        if len(row) != len(headers):
            raise SimulationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in rendered)) if rendered else len(header)
        for col, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
