"""Imbalance metrics over per-PE usage arrays.

These are the scalar summaries the paper's figures plot: the max usage
difference ``D_max`` (Fig. 6), the relative imbalance ``R_diff``
(Fig. 7), plus a Gini coefficient used by the ablation benches as an
alternative imbalance lens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


def _as_counts(counts) -> np.ndarray:
    array = np.asarray(counts, dtype=float)
    if array.size == 0:
        raise SimulationError("usage array must be non-empty")
    if np.any(array < 0):
        raise SimulationError("usage counts must be non-negative")
    return array


def max_usage_difference(counts) -> float:
    """The paper's ``D_max``: max minus min per-PE usage."""
    array = _as_counts(counts)
    return float(array.max() - array.min())


def usage_r_diff(counts) -> float:
    """The paper's ``R_diff = D_max / min(A_PE)`` (Eq. 11).

    0 for a perfectly level array, infinite while some PE is untouched
    but others are not.
    """
    array = _as_counts(counts)
    diff = float(array.max() - array.min())
    if diff == 0.0:
        return 0.0
    low = float(array.min())
    if low == 0.0:
        return float("inf")
    return diff / low


def usage_gini(counts) -> float:
    """Gini coefficient of the usage distribution (0 = perfectly level)."""
    array = np.sort(_as_counts(counts).ravel())
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * array)) / (n * total) - (n + 1) / n)


@dataclass(frozen=True)
class BalanceSummary:
    """All imbalance scalars of one usage array."""

    max_usage: float
    min_usage: float
    mean_usage: float
    max_difference: float
    r_diff: float
    gini: float


def balance_summary(counts) -> BalanceSummary:
    """Compute every imbalance metric at once."""
    array = _as_counts(counts)
    return BalanceSummary(
        max_usage=float(array.max()),
        min_usage=float(array.min()),
        mean_usage=float(array.mean()),
        max_difference=max_usage_difference(array),
        r_diff=usage_r_diff(array),
        gini=usage_gini(array),
    )
