"""Whole-network profiling report.

Combines everything the library knows about one network on one
accelerator into a single per-layer table: the energy-optimal schedule
(utilization space, Z, energy split, cycles), the roofline bound, and
the closed-form RWL quantities. This is the "give me the whole picture"
view behind ``rota profile``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.rwl_math import rwl_parameters
from repro.dataflow.roofline import Bound, analyze_roofline
from repro.dataflow.simulator import NetworkExecution


@dataclass(frozen=True)
class LayerProfile:
    """One layer's combined profile row."""

    layer: str
    space: Tuple[int, int]
    num_tiles: int
    utilization: float
    energy_uj: float
    dram_energy_share: float
    cycles: int
    bound: Bound
    rwl_d_max_bound: int
    rwl_min_a_pe: int


@dataclass(frozen=True)
class NetworkProfile:
    """Per-layer profiles plus network totals."""

    network: str
    accelerator: str
    layers: Tuple[LayerProfile, ...]
    total_energy_uj: float
    total_cycles: int
    mean_utilization: float

    def layer_for(self, name: str) -> LayerProfile:
        """Look up one layer's profile."""
        for profile in self.layers:
            if profile.layer == name:
                return profile
        raise KeyError(name)

    def format(self, limit: Optional[int] = None) -> str:
        """The profile table (optionally truncated to ``limit`` rows)."""
        rows = [
            (
                profile.layer,
                f"{profile.space[0]}x{profile.space[1]}",
                profile.num_tiles,
                f"{profile.utilization:.0%}",
                f"{profile.energy_uj:.1f}",
                f"{profile.dram_energy_share:.0%}",
                f"{profile.cycles:,}",
                profile.bound.value[:3],
                profile.rwl_d_max_bound,
                profile.rwl_min_a_pe,
            )
            for profile in (self.layers[:limit] if limit else self.layers)
        ]
        header = (
            "layer",
            "space",
            "Z",
            "util",
            "uJ",
            "DRAM%",
            "cycles",
            "bnd",
            "Dmax<=",
            "minA>=",
        )
        title = (
            f"Profile — {self.network} on {self.accelerator}: "
            f"{self.total_energy_uj:.0f} uJ, {self.total_cycles:,} cycles, "
            f"mean util {self.mean_utilization:.1%}"
        )
        table = format_table(header, rows, title=title)
        if limit and len(self.layers) > limit:
            table += f"\n... ({len(self.layers) - limit} more layers)"
        return table


def profile_network(
    accelerator: Accelerator, execution: NetworkExecution
) -> NetworkProfile:
    """Build the combined profile of one scheduled network."""
    roofline = analyze_roofline(
        accelerator, [layer.schedule for layer in execution.layers]
    )
    profiles = []
    for layer_execution in execution.layers:
        schedule = layer_execution.schedule
        stream = layer_execution.stream
        energy = schedule.energy
        params = rwl_parameters(
            w=accelerator.width,
            h=accelerator.height,
            x=stream.space_width,
            y=stream.space_height,
            z=stream.num_tiles,
        )
        profiles.append(
            LayerProfile(
                layer=schedule.layer.name,
                space=schedule.space_shape,
                num_tiles=stream.num_tiles,
                utilization=schedule.utilization,
                energy_uj=energy.total_uj,
                dram_energy_share=energy.dram_pj / energy.total_pj,
                cycles=schedule.cycles,
                bound=roofline.point_for(schedule.layer.name).bound,
                rwl_d_max_bound=params.d_max_bound,
                rwl_min_a_pe=params.min_a_pe,
            )
        )
    return NetworkProfile(
        network=execution.network_name,
        accelerator=accelerator.name,
        layers=tuple(profiles),
        total_energy_uj=execution.total_energy_pj / 1e6,
        total_cycles=execution.total_cycles,
        mean_utilization=execution.mean_utilization,
    )
