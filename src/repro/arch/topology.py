"""PE-array interconnect topologies: 2-D mesh and unidirectional torus.

The baseline accelerator uses a mesh-style local network (nearest-neighbor
links for partial-sum forwarding and operand sharing). RoTA adds one
unidirectional ring per row and per column — a 2-D torus — so utilization
spaces can wrap around the array edges (paper Section IV-A).

Section V-D's overhead argument rests on the *folded* (interleaved) torus
layout: instead of one long wrap-around wire per ring, PEs are placed in a
zigzag order so every link spans at most two PE pitches. This module
enumerates the links of both layouts and reports their physical lengths so
the area model can price them.

Coordinates are 0-based ``(col, row)`` with ``col in [0, w)`` and
``row in [0, h)``; the paper's 1-based ``(u, v)`` maps to
``(u - 1, v - 1)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError

Coord = Tuple[int, int]


class Topology(enum.Enum):
    """Local-network topology of the PE array."""

    MESH = "mesh"
    TORUS = "torus"

    @property
    def supports_wraparound(self) -> bool:
        """Whether utilization spaces may wrap around the array edges."""
        return self is Topology.TORUS


@dataclass(frozen=True)
class TorusLink:
    """One unidirectional link of the local network.

    ``length_pitches`` is the Manhattan length of the wire measured in PE
    pitches under the chosen physical layout (1.0 for a nearest-neighbor
    mesh hop, up to 2.0 for folded-torus hops, ``n - 1`` for the naive
    wrap-around wire of an ``n``-PE ring).
    """

    src: Coord
    dst: Coord
    length_pitches: float

    def __post_init__(self) -> None:
        if self.length_pitches <= 0:
            raise ConfigurationError(
                f"link {self.src}->{self.dst} must have positive length"
            )


def _validate_dims(width: int, height: int) -> None:
    if width < 1 or height < 1:
        raise ConfigurationError(
            f"PE array dimensions must be at least 1x1, got {width}x{height}"
        )


def mesh_links(width: int, height: int) -> List[TorusLink]:
    """Enumerate the unidirectional nearest-neighbor links of a 2-D mesh.

    Rows carry left-to-right links, columns carry bottom-to-top links,
    matching the unidirectional local networks of Eyeriss-style arrays.
    """
    _validate_dims(width, height)
    links: List[TorusLink] = []
    for row in range(height):
        for col in range(width - 1):
            links.append(TorusLink((col, row), (col + 1, row), 1.0))
    for col in range(width):
        for row in range(height - 1):
            links.append(TorusLink((col, row), (col, row + 1), 1.0))
    return links


def _ring_order_folded(n: int) -> List[int]:
    """Physical placement order of a folded ``n``-node ring.

    ``_ring_order_folded(n)[slot]`` is the logical ring node placed at
    that physical slot. The ring is folded in half and interleaved —
    slots hold ``0, n-1, 1, n-2, 2, ...`` — so every logical ring edge
    (``k`` to ``k+1`` and the wrap ``n-1`` to ``0``) spans at most two
    physical slots, removing the long wrap-around wire.
    """
    order: List[int] = []
    low, high = 0, n - 1
    while low <= high:
        order.append(low)
        if high != low:
            order.append(high)
        low += 1
        high -= 1
    return order


def folded_ring_hop_lengths(n: int) -> List[float]:
    """Physical lengths (in pitches) of the ``n`` hops of a folded ring.

    For ``n >= 3`` every hop spans at most 2 pitches; a 2-ring degenerates
    to two 1-pitch hops and a 1-ring has a single zero-ish stub that we
    report as 1 pitch (a self-loop register bypass).
    """
    if n < 1:
        raise ConfigurationError(f"ring size must be at least 1, got {n}")
    if n == 1:
        return [1.0]
    order = _ring_order_folded(n)
    slot_of = {logical: slot for slot, logical in enumerate(order)}
    lengths = []
    for k in range(n):
        nxt = (k + 1) % n
        lengths.append(float(abs(slot_of[nxt] - slot_of[k])))
    return lengths


def folded_torus_links(width: int, height: int) -> List[TorusLink]:
    """Enumerate the unidirectional links of a folded 2-D torus.

    Every row forms one folded ring of ``width`` nodes and every column one
    folded ring of ``height`` nodes. Link endpoints are reported in logical
    coordinates; lengths reflect the folded physical layout, so no link is
    longer than two PE pitches (for rings of 3+ nodes).
    """
    _validate_dims(width, height)
    links: List[TorusLink] = []
    row_hops = folded_ring_hop_lengths(width)
    for row in range(height):
        for col in range(width):
            nxt = (col + 1) % width
            links.append(TorusLink((col, row), (nxt, row), row_hops[col]))
    col_hops = folded_ring_hop_lengths(height)
    for col in range(width):
        for row in range(height):
            nxt = (row + 1) % height
            links.append(TorusLink((col, row), (col, nxt), col_hops[row]))
    return links


def naive_torus_links(width: int, height: int) -> List[TorusLink]:
    """Torus links under a naive (non-folded) layout.

    Wrap-around wires span the full array edge (``n - 1`` pitches). Only
    used to demonstrate why the folded layout matters for the overhead
    claim; RoTA itself assumes the folded layout.
    """
    _validate_dims(width, height)
    links: List[TorusLink] = []
    for row in range(height):
        for col in range(width):
            nxt = (col + 1) % width
            length = 1.0 if nxt else max(1.0, float(width - 1))
            links.append(TorusLink((col, row), (nxt, row), length))
    for col in range(width):
        for row in range(height):
            nxt = (row + 1) % height
            length = 1.0 if nxt else max(1.0, float(height - 1))
            links.append(TorusLink((col, row), (col, nxt), length))
    return links


def total_wire_pitches(links: List[TorusLink]) -> float:
    """Total wire length of a link set, in PE pitches."""
    return math.fsum(link.length_pitches for link in links)


def ring_neighbors(coord: Coord, width: int, height: int) -> Iterator[Coord]:
    """Yield the two downstream torus neighbors (east then north) of a PE."""
    _validate_dims(width, height)
    col, row = coord
    if not (0 <= col < width and 0 <= row < height):
        raise ConfigurationError(f"coordinate {coord} outside {width}x{height} array")
    yield ((col + 1) % width, row)
    yield (col, (row + 1) % height)
