"""Area model for the torus-overhead claim (paper Section V-D).

The paper synthesizes RoTA with Synopsys DC on SAED 32 nm and reports that
the torus-connected PE array costs only **0.3%** more area than the mesh
baseline. We cannot run proprietary synthesis, so this module prices the
design from first principles:

* PE logic + local-buffer SRAM area comes from :class:`ProcessingElement`;
* the GLB SRAM comes from :class:`GlobalBuffer`;
* links are priced per endpoint (destination register + mux) plus
  length-proportional repeaters; the wire tracks themselves route on
  metal layers over the PE logic and consume no die area. The folded
  layout from :mod:`repro.arch.topology` keeps every wrap-around link
  under two PE pitches, so repeater cost stays negligible.

The torus adds exactly one link per row and per column over the mesh.
Because buffers and MAC logic dominate the floorplan, those extra links
land at a fraction of a percent of total area — the substitution
preserves the *order* of the published 0.3% claim rather than its third
decimal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.arch.topology import (
    Topology,
    folded_torus_links,
    mesh_links,
    naive_torus_links,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WireParameters:
    """Physical assumptions for the link-area estimate.

    Inter-PE wires route on intermediate metal layers *over* the PE
    logic, so the tracks themselves consume no die area (this is why the
    paper's synthesized overhead is so small). What a link does cost is:

    * **endpoint logic** — the widened input mux at the destination PE
      (the operand register already exists in the mesh design),
      ``wires_per_link x endpoint_area_um2_per_bit``;
    * **repeaters** — drivers inserted along the wire, proportional to
      its physical length.

    ``wires_per_link`` is the bus width of one connection (a 16-bit word
    plus valid/ready).
    """

    wires_per_link: int = 18
    endpoint_area_um2_per_bit: float = 4.0
    repeater_area_um2_per_mm: float = 60.0

    def __post_init__(self) -> None:
        if self.wires_per_link <= 0 or self.endpoint_area_um2_per_bit <= 0:
            raise ConfigurationError("wire parameters must be positive")
        if self.repeater_area_um2_per_mm < 0:
            raise ConfigurationError("repeater area must be non-negative")

    def link_area_um2(self, length_um: float) -> float:
        """Area of one link of the given physical length."""
        if length_um < 0:
            raise ConfigurationError(f"link length must be non-negative: {length_um}")
        endpoint_area = self.wires_per_link * self.endpoint_area_um2_per_bit
        repeater_area = (length_um / 1000.0) * self.repeater_area_um2_per_mm
        return endpoint_area + repeater_area


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of an accelerator, in square micrometres."""

    pe_logic_um2: float
    local_buffer_um2: float
    glb_um2: float
    local_network_um2: float
    controller_um2: float

    @property
    def total_um2(self) -> float:
        """Total accelerator area."""
        return (
            self.pe_logic_um2
            + self.local_buffer_um2
            + self.glb_um2
            + self.local_network_um2
            + self.controller_um2
        )

    @property
    def total_mm2(self) -> float:
        """Total accelerator area in mm^2."""
        return self.total_um2 / 1.0e6


class AreaModel:
    """Prices an accelerator's floorplan and the torus overhead.

    Parameters
    ----------
    wires:
        Physical wire assumptions; defaults are 32 nm-class.
    controller_area_um2:
        Area of the mapping controller. The wear-leveling extension adds
        four parameter registers and two circular counters
        (:meth:`wear_leveling_logic_um2`).
    """

    #: Area of one register bit plus mux in a 32 nm-class process (um^2).
    _REGISTER_BIT_UM2 = 8.0

    def __init__(
        self,
        wires: WireParameters = WireParameters(),
        controller_area_um2: float = 40_000.0,
    ) -> None:
        if controller_area_um2 < 0:
            raise ConfigurationError("controller area must be non-negative")
        self._wires = wires
        self._controller_area_um2 = controller_area_um2

    def local_network_area_um2(
        self, accelerator: Accelerator, folded: bool = True
    ) -> float:
        """Total area of the local (inter-PE) network.

        Priced per link: endpoint logic at each destination plus
        length-proportional repeaters. The torus variant carries one more
        link per row and per column than the mesh, which is the whole
        area story behind the paper's 0.3% figure.
        """
        array = accelerator.array
        if array.topology is Topology.MESH:
            links = mesh_links(array.width, array.height)
        elif folded:
            links = folded_torus_links(array.width, array.height)
        else:
            links = naive_torus_links(array.width, array.height)
        return math.fsum(
            self._wires.link_area_um2(link.length_pitches * array.pitch_um)
            for link in links
        )

    def wear_leveling_logic_um2(self, accelerator: Accelerator) -> float:
        """Area of the RWL+RO controller extension (Section V-D).

        Four parameter registers (w, h, x, y) plus two circular counters
        (u, v), each sized to address the array dimension.
        """
        width_bits = max(1, (accelerator.width - 1).bit_length())
        height_bits = max(1, (accelerator.height - 1).bit_length())
        parameter_bits = 2 * (width_bits + height_bits)  # w, x and h, y
        counter_bits = width_bits + height_bits  # circular counters u, v
        return (parameter_bits + counter_bits) * self._REGISTER_BIT_UM2

    def breakdown(self, accelerator: Accelerator, folded: bool = True) -> AreaBreakdown:
        """Full floorplan breakdown of an accelerator."""
        array = accelerator.array
        pe = array.pe
        pe_logic = (pe.mac.area_um2 + pe.control_area_um2) * array.num_pes
        local_buffers = pe.local_buffers.area_um2 * array.num_pes
        controller = self._controller_area_um2
        if array.is_torus:
            controller += self.wear_leveling_logic_um2(accelerator)
        return AreaBreakdown(
            pe_logic_um2=pe_logic,
            local_buffer_um2=local_buffers,
            glb_um2=accelerator.glb.area_um2,
            local_network_um2=self.local_network_area_um2(accelerator, folded=folded),
            controller_um2=controller,
        )

    def torus_overhead_ratio(
        self, mesh_accelerator: Accelerator, folded: bool = True
    ) -> float:
        """Fractional area overhead of the RoTA variant over the mesh.

        Returns ``(torus_area - mesh_area) / mesh_area``; the paper reports
        0.003 for the Eyeriss-scale design.
        """
        mesh = mesh_accelerator.as_mesh()
        torus = mesh_accelerator.as_torus()
        mesh_area = self.breakdown(mesh, folded=folded).total_um2
        torus_area = self.breakdown(torus, folded=folded).total_um2
        return (torus_area - mesh_area) / mesh_area
