"""On-chip network models: the global (GLB<->PE) and local (PE<->PE) nets.

The paper's accelerator (Section II, Fig. 1) has two networks:

* the *global network* scatters tile data from the GLB to the PEs of the
  active utilization space and gathers results back;
* the *local network* forwards partial sums / shared operands between
  neighboring PEs (and, in RoTA, around the torus rings).

The wear-leveling claim "no performance degradation" (Section V-D) rests
on the observation that a striding utilization space is still a contiguous
rectangle — scatter/gather cost depends on the tile size and the number of
active PEs, not on *where* the rectangle sits. The cycle model here makes
that property explicit and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GlobalNetwork:
    """Bus/tree network between the GLB and the PE array.

    Parameters
    ----------
    bandwidth_bytes_per_cycle:
        Peak GLB-side bandwidth of the scatter/gather bus.
    multicast:
        Whether one GLB read can feed every PE that needs the same value
        (true for Eyeriss-style X/Y-bus delivery). With multicast, scatter
        traffic is counted once per distinct value rather than once per
        destination PE.
    energy_per_byte_pj:
        Wire + driver energy per byte moved on the global network.
    """

    bandwidth_bytes_per_cycle: int = 16
    multicast: bool = True
    energy_per_byte_pj: float = 0.35

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError("global network bandwidth must be positive")
        if self.energy_per_byte_pj < 0:
            raise ConfigurationError("global network energy must be non-negative")

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles to move ``nbytes`` over the global network."""
        if nbytes < 0:
            raise ConfigurationError(f"transfer size must be non-negative: {nbytes}")
        return math.ceil(nbytes / self.bandwidth_bytes_per_cycle)

    def transfer_energy_pj(self, nbytes: int) -> float:
        """Energy to move ``nbytes`` over the global network."""
        if nbytes < 0:
            raise ConfigurationError(f"transfer size must be non-negative: {nbytes}")
        return nbytes * self.energy_per_byte_pj


@dataclass(frozen=True)
class LocalNetwork:
    """Nearest-neighbor (and torus) links between PEs.

    Every hop moves one operand-width word per cycle. Folded-torus hops
    span at most two PE pitches, so they close timing at the same clock as
    mesh hops; the model therefore charges the same per-hop latency for
    both, which is exactly the paper's no-degradation argument.
    """

    hop_latency_cycles: int = 1
    word_bytes: int = 2
    energy_per_hop_pj: float = 0.06

    def __post_init__(self) -> None:
        if self.hop_latency_cycles <= 0 or self.word_bytes <= 0:
            raise ConfigurationError("local network latency/word size must be positive")
        if self.energy_per_hop_pj < 0:
            raise ConfigurationError("local hop energy must be non-negative")

    def forward_cycles(self, num_hops: int) -> int:
        """Latency of forwarding one word across ``num_hops`` links."""
        if num_hops < 0:
            raise ConfigurationError(f"hop count must be non-negative: {num_hops}")
        return num_hops * self.hop_latency_cycles

    def forward_energy_pj(self, num_words: int, num_hops: int) -> float:
        """Energy of moving ``num_words`` words across ``num_hops`` links each."""
        if num_words < 0 or num_hops < 0:
            raise ConfigurationError("word/hop counts must be non-negative")
        return num_words * num_hops * self.energy_per_hop_pj


@dataclass(frozen=True)
class NocModel:
    """The accelerator's complete on-chip network: global + local."""

    global_net: GlobalNetwork = GlobalNetwork()
    local_net: LocalNetwork = LocalNetwork()

    def scatter_cycles(self, tile_input_bytes: int, tile_weight_bytes: int) -> int:
        """Cycles to deliver one tile's operands from the GLB to the PEs.

        Position-independent by construction: the cost depends only on the
        tile's data volume.
        """
        return self.global_net.transfer_cycles(tile_input_bytes + tile_weight_bytes)

    def gather_cycles(self, tile_output_bytes: int) -> int:
        """Cycles to collect one tile's outputs from the PEs into the GLB."""
        return self.global_net.transfer_cycles(tile_output_bytes)

    def psum_forward_cycles(self, chain_length: int) -> int:
        """Drain latency of a partial-sum chain of ``chain_length`` PEs."""
        if chain_length <= 0:
            raise ConfigurationError(f"chain length must be positive: {chain_length}")
        return self.local_net.forward_cycles(chain_length - 1)
