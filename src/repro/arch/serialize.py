"""Accelerator configuration (de)serialization.

Experiment configs want to live in files: this module converts an
:class:`~repro.arch.accelerator.Accelerator` to/from a plain dict (and
JSON), round-tripping every parameter of the hardware model. Unknown
keys are rejected rather than ignored, so a typo in a config file fails
loudly instead of silently running the default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.arch.accelerator import Accelerator, DramInterface
from repro.arch.array import PEArray
from repro.arch.buffers import Buffer, GlobalBuffer, LocalBufferSet
from repro.arch.noc import GlobalNetwork, LocalNetwork, NocModel
from repro.arch.pe import MacUnit, ProcessingElement
from repro.arch.topology import Topology
from repro.errors import ConfigurationError


def _buffer_dict(buffer: Buffer) -> Dict[str, Any]:
    return {
        "name": buffer.name,
        "capacity_bytes": buffer.capacity_bytes,
        "read_energy_pj": buffer.read_energy_pj,
        "write_energy_pj": buffer.write_energy_pj,
        "um2_per_byte": buffer.um2_per_byte,
    }


def _buffer_from(payload: Dict[str, Any]) -> Buffer:
    return Buffer(**_checked(payload, set(_buffer_dict(Buffer("x", 1, 0.0)))))


def _checked(payload: Dict[str, Any], allowed: set) -> Dict[str, Any]:
    unknown = set(payload) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown configuration keys: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    return payload


def accelerator_to_dict(accelerator: Accelerator) -> Dict[str, Any]:
    """Serialize an accelerator to a plain, JSON-safe dict."""
    array = accelerator.array
    pe = array.pe
    return {
        "name": accelerator.name,
        "clock_mhz": accelerator.clock_mhz,
        "array": {
            "width": array.width,
            "height": array.height,
            "topology": array.topology.value,
            "pitch_um": array.pitch_um,
        },
        "pe": {
            "mac": {
                "operand_bits": pe.mac.operand_bits,
                "energy_pj": pe.mac.energy_pj,
                "area_um2": pe.mac.area_um2,
            },
            "control_area_um2": pe.control_area_um2,
            "buffers": {
                "input": _buffer_dict(pe.local_buffers.input),
                "weight": _buffer_dict(pe.local_buffers.weight),
                "output": _buffer_dict(pe.local_buffers.output),
            },
        },
        "glb": _buffer_dict(accelerator.glb.buffer),
        "noc": {
            "global": {
                "bandwidth_bytes_per_cycle": accelerator.noc.global_net.bandwidth_bytes_per_cycle,
                "multicast": accelerator.noc.global_net.multicast,
                "energy_per_byte_pj": accelerator.noc.global_net.energy_per_byte_pj,
            },
            "local": {
                "hop_latency_cycles": accelerator.noc.local_net.hop_latency_cycles,
                "word_bytes": accelerator.noc.local_net.word_bytes,
                "energy_per_hop_pj": accelerator.noc.local_net.energy_per_hop_pj,
            },
        },
        "dram": {
            "bandwidth_bytes_per_cycle": accelerator.dram.bandwidth_bytes_per_cycle,
            "energy_per_byte_pj": accelerator.dram.energy_per_byte_pj,
        },
    }


def accelerator_from_dict(payload: Dict[str, Any]) -> Accelerator:
    """Rebuild an accelerator from :func:`accelerator_to_dict` output."""
    top = _checked(
        dict(payload), {"name", "clock_mhz", "array", "pe", "glb", "noc", "dram"}
    )
    try:
        array_cfg = _checked(
            dict(top["array"]), {"width", "height", "topology", "pitch_um"}
        )
        pe_cfg = _checked(dict(top["pe"]), {"mac", "control_area_um2", "buffers"})
        buffers_cfg = _checked(
            dict(pe_cfg["buffers"]), {"input", "weight", "output"}
        )
        noc_cfg = _checked(dict(top["noc"]), {"global", "local"})

        pe = ProcessingElement(
            mac=MacUnit(**pe_cfg["mac"]),
            local_buffers=LocalBufferSet(
                input=_buffer_from(buffers_cfg["input"]),
                weight=_buffer_from(buffers_cfg["weight"]),
                output=_buffer_from(buffers_cfg["output"]),
            ),
            control_area_um2=pe_cfg["control_area_um2"],
        )
        array = PEArray(
            width=array_cfg["width"],
            height=array_cfg["height"],
            topology=Topology(array_cfg["topology"]),
            pe=pe,
            pitch_um=array_cfg["pitch_um"],
        )
        return Accelerator(
            name=top["name"],
            array=array,
            glb=GlobalBuffer(_buffer_from(top["glb"])),
            noc=NocModel(
                global_net=GlobalNetwork(**noc_cfg["global"]),
                local_net=LocalNetwork(**noc_cfg["local"]),
            ),
            dram=DramInterface(**top["dram"]),
            clock_mhz=top["clock_mhz"],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(f"malformed accelerator config: {error}") from error


def save_accelerator(accelerator: Accelerator, path) -> Path:
    """Write an accelerator config as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(accelerator_to_dict(accelerator), indent=2) + "\n")
    return target.resolve()


def load_accelerator(path) -> Accelerator:
    """Read an accelerator config from JSON."""
    return accelerator_from_dict(json.loads(Path(path).read_text()))
