"""Ready-made accelerator configurations.

:func:`eyeriss_v1` is the paper's evaluation platform (Section V): a 14x12
PE array with 24/448/48-byte local buffers and a 108 KB GLB. The scaled
variants back the Fig. 10 array-size sweep.
"""

from __future__ import annotations

from repro.arch.accelerator import Accelerator
from repro.arch.array import PEArray
from repro.arch.buffers import Buffer, GlobalBuffer
from repro.arch.pe import ProcessingElement
from repro.arch.topology import Topology
from repro.errors import ConfigurationError


def eyeriss_v1(torus: bool = False) -> Accelerator:
    """The paper's Eyeriss-style baseline accelerator.

    Parameters
    ----------
    torus:
        When true, build the RoTA variant (torus local network); otherwise
        the conventional mesh baseline.
    """
    topology = Topology.TORUS if torus else Topology.MESH
    array = PEArray(width=14, height=12, topology=topology)
    suffix = "torus" if torus else "mesh"
    return Accelerator(name=f"eyeriss-14x12-{suffix}", array=array)


def scaled_array(
    width: int, height: int, torus: bool = True, scale_glb: bool = False
) -> Accelerator:
    """An accelerator with a custom PE-array size (Fig. 10 sweep).

    Local buffers and PE design match the Eyeriss preset. By default the
    GLB stays at the Eyeriss 108 KB — the paper's Fig. 10 scales *only*
    the PE array, which is what makes utilization (and hence baseline
    reliability) degrade on larger arrays. Pass ``scale_glb=True`` to
    co-scale GLB capacity with the PE count instead.
    """
    if width < 1 or height < 1:
        raise ConfigurationError(f"array size must be positive, got {width}x{height}")
    topology = Topology.TORUS if torus else Topology.MESH
    pe = ProcessingElement()
    array = PEArray(width=width, height=height, topology=topology, pe=pe)
    glb_bytes = 108 * 1024
    if scale_glb:
        glb_bytes = max(glb_bytes, width * height * pe.storage_bytes)
    glb = GlobalBuffer(Buffer("glb", glb_bytes, read_energy_pj=1.6))
    suffix = "torus" if torus else "mesh"
    return Accelerator(name=f"array-{width}x{height}-{suffix}", array=array, glb=glb)
