"""Hardware model of the accelerator: PEs, buffers, array, NoC, area.

This subpackage models the physical substrate the paper's wear-leveling
schemes run on: an Eyeriss-style accelerator with a 2-D PE array, per-PE
local buffers, a shared global buffer, global/local on-chip networks, and
(for RoTA) unidirectional torus links on every row and column.
"""

from repro.arch.accelerator import Accelerator
from repro.arch.area import AreaBreakdown, AreaModel
from repro.arch.array import PEArray
from repro.arch.buffers import Buffer, GlobalBuffer, LocalBufferSet
from repro.arch.noc import GlobalNetwork, LocalNetwork, NocModel
from repro.arch.pe import MacUnit, ProcessingElement
from repro.arch.presets import eyeriss_v1, scaled_array
from repro.arch.serialize import (
    accelerator_from_dict,
    accelerator_to_dict,
    load_accelerator,
    save_accelerator,
)
from repro.arch.topology import Topology, TorusLink, folded_torus_links, mesh_links

__all__ = [
    "Accelerator",
    "AreaBreakdown",
    "AreaModel",
    "Buffer",
    "GlobalBuffer",
    "GlobalNetwork",
    "LocalBufferSet",
    "LocalNetwork",
    "MacUnit",
    "NocModel",
    "PEArray",
    "ProcessingElement",
    "Topology",
    "TorusLink",
    "accelerator_from_dict",
    "accelerator_to_dict",
    "eyeriss_v1",
    "folded_torus_links",
    "load_accelerator",
    "mesh_links",
    "save_accelerator",
    "scaled_array",
]
