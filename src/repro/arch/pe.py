"""Processing-element model: a MAC unit plus local buffers.

A PE is the unit of wear in this study. The wear-leveling schemes never
look inside a PE; what matters architecturally is (a) that each PE has a
fixed physical location in the array, and (b) that its activity per data
tile is all-or-nothing — a PE inside the active utilization space performs
MACs for the whole tile, a PE outside it idles. The MAC/buffer detail here
feeds the energy model and the area model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.buffers import LocalBufferSet
from repro.errors import ConfigurationError

#: MAC datapath area for a 16-bit fixed-point multiplier-accumulator in a
#: 32 nm-class process, in um^2. Used by the area model; only ratios matter.
DEFAULT_MAC_AREA_UM2 = 2100.0

#: Control/register overhead per PE (FSM, pipeline registers), in um^2.
DEFAULT_PE_CONTROL_AREA_UM2 = 900.0


@dataclass(frozen=True)
class MacUnit:
    """A multiply-accumulate datapath.

    Parameters
    ----------
    operand_bits:
        Width of the input operands (16 for Eyeriss-style fixed point).
    energy_pj:
        Energy of one MAC operation in picojoules.
    area_um2:
        Datapath area in square micrometres.
    """

    operand_bits: int = 16
    energy_pj: float = 0.075
    area_um2: float = DEFAULT_MAC_AREA_UM2

    def __post_init__(self) -> None:
        if self.operand_bits <= 0:
            raise ConfigurationError(
                f"MAC operand width must be positive, got {self.operand_bits}"
            )
        if self.energy_pj < 0 or self.area_um2 <= 0:
            raise ConfigurationError("MAC energy/area must be non-negative/positive")


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: a MAC unit, local buffers, and control overhead.

    The same immutable instance describes every PE in a homogeneous array;
    per-PE *state* (usage counters) lives in :class:`repro.core.tracker`.
    """

    mac: MacUnit = field(default_factory=MacUnit)
    local_buffers: LocalBufferSet = field(default_factory=LocalBufferSet)
    control_area_um2: float = DEFAULT_PE_CONTROL_AREA_UM2

    def __post_init__(self) -> None:
        if self.control_area_um2 < 0:
            raise ConfigurationError(
                f"PE control area must be non-negative, got {self.control_area_um2}"
            )

    @property
    def area_um2(self) -> float:
        """Total PE area: MAC datapath + local buffer SRAM + control."""
        return self.mac.area_um2 + self.local_buffers.area_um2 + self.control_area_um2

    @property
    def storage_bytes(self) -> int:
        """Total local-buffer capacity of this PE."""
        return self.local_buffers.total_capacity_bytes

    def mac_energy_pj(self, num_macs: int) -> float:
        """Energy of ``num_macs`` MAC operations on this PE."""
        if num_macs < 0:
            raise ConfigurationError(f"num_macs must be non-negative, got {num_macs}")
        return num_macs * self.mac.energy_pj
