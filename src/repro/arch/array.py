"""The 2-D PE array: geometry, topology, and coordinate arithmetic.

The array is the wear-leveling substrate. Its two responsibilities here
are (a) validating/normalizing coordinates under the mesh or torus
topology and (b) materializing the PE footprint of a utilization space —
the set of array cells a tile placed at a given starting coordinate
activates, including wrap-around on the torus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.arch.pe import ProcessingElement
from repro.arch.topology import Topology
from repro.errors import ConfigurationError

Coord = Tuple[int, int]


@dataclass(frozen=True)
class PEArray:
    """A homogeneous ``width x height`` array of processing elements.

    Parameters
    ----------
    width:
        Number of PE columns (the paper's ``w``; 14 for Eyeriss).
    height:
        Number of PE rows (the paper's ``h``; 12 for Eyeriss).
    topology:
        ``Topology.MESH`` for the baseline, ``Topology.TORUS`` for RoTA.
    pe:
        The PE design replicated at every cell.
    pitch_um:
        Physical PE pitch in micrometres (used by the area/wire model).
    """

    width: int
    height: int
    topology: Topology = Topology.MESH
    pe: ProcessingElement = field(default_factory=ProcessingElement)
    pitch_um: float = 120.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"PE array must be at least 1x1, got {self.width}x{self.height}"
            )
        if self.pitch_um <= 0:
            raise ConfigurationError(f"PE pitch must be positive, got {self.pitch_um}")

    @property
    def num_pes(self) -> int:
        """Total number of PEs, ``width * height``."""
        return self.width * self.height

    @property
    def shape(self) -> Tuple[int, int]:
        """Numpy-style array shape ``(height, width)`` i.e. ``(rows, cols)``."""
        return (self.height, self.width)

    @property
    def is_torus(self) -> bool:
        """Whether this array has wrap-around (RoTA) connectivity."""
        return self.topology.supports_wraparound

    def contains(self, coord: Coord) -> bool:
        """Return whether ``(col, row)`` lies inside the array."""
        col, row = coord
        return 0 <= col < self.width and 0 <= row < self.height

    def wrap(self, coord: Coord) -> Coord:
        """Normalize a coordinate modulo the array dimensions.

        On a torus any integer coordinate has a physical cell; on a mesh
        out-of-range coordinates are an error.
        """
        col, row = coord
        if self.is_torus:
            return (col % self.width, row % self.height)
        if not self.contains(coord):
            raise ConfigurationError(
                f"coordinate {coord} outside {self.width}x{self.height} mesh array"
            )
        return coord

    def max_space_shape(self) -> Tuple[int, int]:
        """Largest legal utilization-space shape ``(x, y)`` on this array."""
        return (self.width, self.height)

    def footprint_indices(
        self, start: Coord, space_width: int, space_height: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array indices covered by a utilization space.

        Returns ``(rows, cols)`` index arrays (each of length
        ``space_width * space_height``) suitable for fancy-indexing a
        ``(height, width)`` usage array. On a torus the footprint wraps;
        on a mesh a footprint that would cross the boundary is an error.
        """
        if not (1 <= space_width <= self.width and 1 <= space_height <= self.height):
            raise ConfigurationError(
                f"utilization space {space_width}x{space_height} does not fit "
                f"the {self.width}x{self.height} array"
            )
        col0, row0 = self.wrap(start)
        cols = np.arange(col0, col0 + space_width)
        rows = np.arange(row0, row0 + space_height)
        if self.is_torus:
            cols %= self.width
            rows %= self.height
        elif cols[-1] >= self.width or rows[-1] >= self.height:
            raise ConfigurationError(
                f"utilization space at {start} of size "
                f"{space_width}x{space_height} crosses the mesh boundary"
            )
        grid_rows, grid_cols = np.meshgrid(rows, cols, indexing="ij")
        return grid_rows.ravel(), grid_cols.ravel()

    def footprint_mask(
        self, start: Coord, space_width: int, space_height: int
    ) -> np.ndarray:
        """Boolean ``(height, width)`` mask of the cells a space activates."""
        mask = np.zeros(self.shape, dtype=bool)
        rows, cols = self.footprint_indices(start, space_width, space_height)
        mask[rows, cols] = True
        return mask

    def with_topology(self, topology: Topology) -> "PEArray":
        """Return a copy of this array with a different local network."""
        return PEArray(
            width=self.width,
            height=self.height,
            topology=topology,
            pe=self.pe,
            pitch_um=self.pitch_um,
        )

    def coords(self) -> List[Coord]:
        """All ``(col, row)`` coordinates in row-major order."""
        return [(col, row) for row in range(self.height) for col in range(self.width)]
