"""Top-level accelerator assembly: PE array + GLB + NoC + DRAM interface.

An :class:`Accelerator` bundles everything a scheduling or wear-leveling
experiment needs to know about the hardware. Construct one directly or use
the presets in :mod:`repro.arch.presets` (e.g. the paper's Eyeriss-style
14x12 configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.array import PEArray
from repro.arch.buffers import GlobalBuffer
from repro.arch.noc import NocModel
from repro.arch.topology import Topology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DramInterface:
    """Off-chip memory interface: bandwidth and per-access energy.

    DRAM access energy dominates the hierarchy (two orders of magnitude
    above a MAC), so mappings that re-fetch data from DRAM lose the
    scheduler's energy comparison — the same pressure the paper's
    NeuroSpector setup exerts.
    """

    bandwidth_bytes_per_cycle: int = 8
    energy_per_byte_pj: float = 32.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.energy_per_byte_pj < 0:
            raise ConfigurationError("DRAM energy must be non-negative")


@dataclass(frozen=True)
class Accelerator:
    """A complete accelerator configuration.

    Parameters
    ----------
    name:
        Identifier used in reports ("eyeriss-14x12", ...).
    array:
        The PE array (geometry + topology + PE design).
    glb:
        Shared global buffer.
    noc:
        Global + local network models.
    dram:
        Off-chip interface.
    clock_mhz:
        Nominal clock, used only to convert cycle counts to wall time in
        reports; the relative-lifetime math never needs absolute time.
    """

    name: str
    array: PEArray
    glb: GlobalBuffer = field(default_factory=GlobalBuffer)
    noc: NocModel = field(default_factory=NocModel)
    dram: DramInterface = field(default_factory=DramInterface)
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("accelerator needs a non-empty name")
        if self.clock_mhz <= 0:
            raise ConfigurationError(f"clock must be positive, got {self.clock_mhz}")

    @property
    def width(self) -> int:
        """PE array width (the paper's ``w``)."""
        return self.array.width

    @property
    def height(self) -> int:
        """PE array height (the paper's ``h``)."""
        return self.array.height

    @property
    def num_pes(self) -> int:
        """Total PE count."""
        return self.array.num_pes

    @property
    def is_torus(self) -> bool:
        """Whether the local network supports wrap-around (RoTA)."""
        return self.array.is_torus

    def as_torus(self) -> "Accelerator":
        """Return the RoTA variant of this accelerator (torus local net)."""
        if self.is_torus:
            return self
        return replace(
            self,
            name=f"{self.name}-torus",
            array=self.array.with_topology(Topology.TORUS),
        )

    def as_mesh(self) -> "Accelerator":
        """Return the conventional mesh variant of this accelerator."""
        if not self.is_torus:
            return self
        return replace(
            self,
            name=f"{self.name}-mesh",
            array=self.array.with_topology(Topology.MESH),
        )
