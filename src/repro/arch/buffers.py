"""On-chip buffer models: per-PE local buffers and the shared global buffer.

The paper's evaluation platform (Section V) uses the Eyeriss configuration:
each PE holds 24 B of input, 448 B of weight, and 48 B of output local
buffer, and the accelerator has a 108 KB shared global buffer (GLB).

Buffers here carry three things the rest of the library consumes:

* a capacity in bytes (capacity checks during mapping),
* a per-access energy in picojoules (the scheduler's energy model),
* an SRAM area estimate in square micrometres (the area model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default SRAM density used for buffer area estimates, in um^2 per byte.
#: Calibrated to a 32 nm-class technology so that the Eyeriss-scale design
#: lands in the published mm^2 range; the area *ratios* are what matter to
#: the torus-overhead experiment, not the absolute density.
DEFAULT_SRAM_UM2_PER_BYTE = 1.4


@dataclass(frozen=True)
class Buffer:
    """A single SRAM buffer.

    Parameters
    ----------
    name:
        Human-readable identifier (``"input_lb"``, ``"glb"``, ...).
    capacity_bytes:
        Usable storage in bytes. Must be positive.
    read_energy_pj:
        Energy per read access in picojoules.
    write_energy_pj:
        Energy per write access in picojoules. Defaults to the read energy.
    um2_per_byte:
        SRAM density used when estimating this buffer's area.
    """

    name: str
    capacity_bytes: int
    read_energy_pj: float
    write_energy_pj: float = -1.0
    um2_per_byte: float = DEFAULT_SRAM_UM2_PER_BYTE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"buffer {self.name!r} needs positive capacity, "
                f"got {self.capacity_bytes}"
            )
        if self.read_energy_pj < 0:
            raise ConfigurationError(
                f"buffer {self.name!r} needs non-negative read energy, "
                f"got {self.read_energy_pj}"
            )
        if self.write_energy_pj < 0:
            object.__setattr__(self, "write_energy_pj", self.read_energy_pj)

    @property
    def area_um2(self) -> float:
        """Estimated SRAM macro area in square micrometres."""
        return self.capacity_bytes * self.um2_per_byte

    def fits(self, nbytes: int) -> bool:
        """Return whether ``nbytes`` of data fit in this buffer."""
        return 0 <= nbytes <= self.capacity_bytes


@dataclass(frozen=True)
class LocalBufferSet:
    """The three per-PE local buffers (input, weight, output).

    The default sizes follow the paper's Eyeriss configuration
    (24 B / 448 B / 48 B).
    """

    input: Buffer = field(
        default_factory=lambda: Buffer("input_lb", 24, read_energy_pj=0.08)
    )
    weight: Buffer = field(
        default_factory=lambda: Buffer("weight_lb", 448, read_energy_pj=0.20)
    )
    output: Buffer = field(
        default_factory=lambda: Buffer("output_lb", 48, read_energy_pj=0.10)
    )

    @property
    def total_capacity_bytes(self) -> int:
        """Combined capacity of the three local buffers."""
        return (
            self.input.capacity_bytes
            + self.weight.capacity_bytes
            + self.output.capacity_bytes
        )

    @property
    def area_um2(self) -> float:
        """Combined SRAM area of the three local buffers."""
        return self.input.area_um2 + self.weight.area_um2 + self.output.area_um2

    def fits_tile(self, input_bytes: int, weight_bytes: int, output_bytes: int) -> bool:
        """Return whether a per-PE working set fits in the local buffers."""
        return (
            self.input.fits(input_bytes)
            and self.weight.fits(weight_bytes)
            and self.output.fits(output_bytes)
        )


@dataclass(frozen=True)
class GlobalBuffer:
    """The shared on-chip global buffer (GLB).

    Defaults to the paper's 108 KB Eyeriss GLB. GLB accesses are roughly an
    order of magnitude more expensive than local-buffer accesses and an
    order of magnitude cheaper than DRAM, which is what drives the
    scheduler toward high-reuse mappings.
    """

    buffer: Buffer = field(
        default_factory=lambda: Buffer("glb", 108 * 1024, read_energy_pj=1.6)
    )

    @property
    def capacity_bytes(self) -> int:
        """Usable GLB storage in bytes."""
        return self.buffer.capacity_bytes

    @property
    def area_um2(self) -> float:
        """Estimated GLB SRAM area."""
        return self.buffer.area_um2

    def fits(self, nbytes: int) -> bool:
        """Return whether ``nbytes`` fit in the GLB."""
        return self.buffer.fits(nbytes)
