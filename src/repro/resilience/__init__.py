"""Fault-tolerant execution primitives shared across the stack.

The paper's premise is graceful degradation under wear; this package
applies the same discipline to the *software* reproducing it. Four
small, stdlib-only building blocks:

* :mod:`repro.resilience.atomic` — one shared write-temp-fsync-rename
  helper, so no snapshot, cache entry, or journal file can be left
  truncated by a crash mid-write;
* :mod:`repro.resilience.integrity` — checksum sidecars for on-disk
  payloads, so torn or bit-rotted entries are *detected* instead of
  exploding in ``pickle.load``;
* :mod:`repro.resilience.journal` — :class:`CheckpointJournal`, the
  checkpoint/resume store :class:`~repro.runtime.parallel.
  ParallelRunner` records completed task results into (and skips on
  resume), making interrupted Monte Carlo sweeps restartable with
  bit-identical output;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, seeded
  exponential backoff with deterministic jitter, plus the quarantine
  and timeout error types the runner raises when a task is beyond
  saving;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  closed → open → half-open load-shedding state machine ``rota serve``
  puts in front of its job queue.

Everything here is deterministic under a fixed seed — the chaos suite
(:mod:`repro.chaos`, ``tests/resilience/``) relies on replaying the
exact same fault schedule to prove recovery is bit-identical.
"""

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text
from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.integrity import (
    CHECKSUM_SUFFIX,
    checksum_path,
    digest,
    read_checksum,
    write_with_checksum,
)
from repro.resilience.journal import CheckpointJournal, JournalMismatchError
from repro.resilience.retry import (
    PoisonedTaskError,
    RetryPolicy,
    TaskTimeoutError,
    stable_unit,
)

__all__ = [
    "CHECKSUM_SUFFIX",
    "CheckpointJournal",
    "CircuitBreaker",
    "CircuitOpenError",
    "JournalMismatchError",
    "PoisonedTaskError",
    "RetryPolicy",
    "TaskTimeoutError",
    "atomic_write_bytes",
    "atomic_write_text",
    "checksum_path",
    "digest",
    "read_checksum",
    "stable_unit",
    "write_with_checksum",
]
