"""Checkpoint journal: crash-safe record of completed parallel tasks.

A :class:`CheckpointJournal` is a directory holding one pickled entry
per completed task of a :meth:`ParallelRunner.map <repro.runtime.
parallel.ParallelRunner.map>` call, plus a ``journal.json`` manifest
binding the journal to one specific run (task labels + an optional
caller-supplied ``run_key`` content hash). Entries are written through
:func:`~repro.resilience.integrity.write_with_checksum`, so a crash can
never leave a torn entry that poisons the resume — a corrupt or
truncated entry simply fails verification and is recomputed.

Because the experiment layer's Monte Carlo seeding is chunk-invariant
(every chunk's ``SeedSequence`` children are spawned up front), a run
resumed from a journal produces output **bit-identical** to an
uninterrupted run: skipped chunks return their journaled results, fresh
chunks recompute exactly what they would have the first time.

The manifest guards against resuming the wrong run: if an existing
journal's ``run_key`` or label list does not match, binding raises
:class:`JournalMismatchError` instead of silently splicing results from
a different configuration.
"""

from __future__ import annotations

import json
import pickle
import re
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.integrity import (
    checksum_path,
    verify_bytes,
    write_with_checksum,
)

__all__ = ["CheckpointJournal", "JournalMismatchError"]

#: Bump when the journal layout changes; mismatched journals refuse to
#: resume instead of misreading old entries.
JOURNAL_SCHEMA = 1

_ENTRY_PATTERN = re.compile(r"^entry-(\d{5})\.pkl$")


class JournalMismatchError(ConfigurationError):
    """An existing journal belongs to a different run configuration."""


class CheckpointJournal:
    """Directory-backed store of completed task results for one run.

    Parameters
    ----------
    path:
        Journal directory (created on first write).
    run_key:
        Optional content hash of everything that determines the run's
        results. Recorded in the manifest; a resume with a different
        key is refused. Callers that cannot compute one still get the
        label-list check.
    """

    def __init__(
        self, path: Union[str, Path], run_key: Optional[str] = None
    ) -> None:
        self._directory = Path(path)
        self._run_key = run_key or ""
        self._bound = False

    @property
    def directory(self) -> Path:
        """The journal directory."""
        return self._directory

    @property
    def run_key(self) -> str:
        """The run content key this journal is bound to ("" if none)."""
        return self._run_key

    @property
    def _manifest_path(self) -> Path:
        return self._directory / "journal.json"

    def _entry_path(self, index: int) -> Path:
        return self._directory / f"entry-{index:05d}.pkl"

    # -- binding ------------------------------------------------------------

    def bind(self, labels: Sequence[str]) -> None:
        """Bind the journal to one task list (validating any existing one).

        Idempotent. Raises :class:`JournalMismatchError` when the
        directory already journals a run with different labels or a
        different ``run_key``.
        """
        labels = [str(label) for label in labels]
        manifest = self._load_manifest()
        if manifest is None:
            self._directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self._manifest_path,
                json.dumps(
                    {
                        "schema": JOURNAL_SCHEMA,
                        "run_key": self._run_key,
                        "labels": labels,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        else:
            if manifest.get("schema") != JOURNAL_SCHEMA:
                raise JournalMismatchError(
                    f"journal at {self._directory} uses schema "
                    f"{manifest.get('schema')!r}; this version writes "
                    f"{JOURNAL_SCHEMA} — delete the directory to start over"
                )
            recorded_key = manifest.get("run_key", "")
            if recorded_key != self._run_key:
                raise JournalMismatchError(
                    f"journal at {self._directory} belongs to a different "
                    f"run configuration (recorded key {recorded_key!r}, "
                    f"this run {self._run_key!r}); delete the directory or "
                    f"pass the original parameters"
                )
            if manifest.get("labels") != labels:
                raise JournalMismatchError(
                    f"journal at {self._directory} records "
                    f"{len(manifest.get('labels') or [])} task(s) that do "
                    f"not match this run's {len(labels)} task label(s)"
                )
        self._bound = True

    def _load_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self._manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn manifest means the journal never completed its
            # first write; treat as absent and start over.
            return None

    def _require_bound(self) -> None:
        if not self._bound:
            raise ConfigurationError(
                "journal must be bound to a task list before use "
                "(ParallelRunner.map does this automatically)"
            )

    # -- entries ------------------------------------------------------------

    def record(self, index: int, value: Any) -> None:
        """Persist one completed task result (atomic, checksummed).

        Best-effort: a full disk must degrade checkpointing, not kill
        the run that is producing results.
        """
        self._require_bound()
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            write_with_checksum(self._entry_path(index), data)
        except (OSError, pickle.PicklingError):
            pass

    def completed(self) -> Dict[int, Any]:
        """Every verifiable journaled result, keyed by task index.

        Entries whose checksum mismatches (torn write, chaos
        corruption) or that fail to unpickle are skipped — the resume
        recomputes them. Never raises for a damaged entry.
        """
        self._require_bound()
        results: Dict[int, Any] = {}
        if not self._directory.is_dir():
            return results
        for path in sorted(self._directory.glob("entry-*.pkl")):
            match = _ENTRY_PATTERN.match(path.name)
            if not match:
                continue
            index = int(match.group(1))
            try:
                data = path.read_bytes()
            except OSError:
                continue
            if verify_bytes(path, data) != "ok":
                continue
            try:
                results[index] = pickle.loads(data)
            except Exception:  # noqa: BLE001 - any damage means recompute
                continue
        return results

    def entry_count(self) -> int:
        """How many entry files the journal currently holds."""
        if not self._directory.is_dir():
            return 0
        return sum(
            1
            for path in self._directory.glob("entry-*.pkl")
            if _ENTRY_PATTERN.match(path.name)
        )

    def clear(self) -> None:
        """Delete every entry and the manifest (the journal stays usable)."""
        if not self._directory.is_dir():
            return
        for path in self._directory.glob("entry-*.pkl"):
            for victim in (path, checksum_path(path)):
                try:
                    victim.unlink()
                except OSError:
                    pass
        try:
            self._manifest_path.unlink()
        except OSError:
            pass
        self._bound = False
