"""Circuit breaker: shed load after consecutive failures, probe, recover.

The classic three-state machine, used by :class:`~repro.service.jobs.
JobManager` in front of its queue:

* **closed** — everything flows; consecutive failures are counted and
  a success resets the count;
* **open** — entered after ``failure_threshold`` consecutive failures;
  every request is shed (the API maps this to 503 + ``Retry-After``)
  until ``cooldown_seconds`` have passed;
* **half-open** — after the cooldown, exactly one probe request is
  admitted; its success closes the circuit, its failure reopens it
  (restarting the cooldown).

The clock is injectable so tests can drive the transitions without
sleeping, and every method is thread-safe — worker threads report
outcomes while the intake thread asks for admission.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Union

from repro.errors import ConfigurationError, ReproError

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(ReproError):
    """The circuit is open; the request was shed without queueing.

    ``retry_after`` is the seconds remaining until the breaker will
    admit a probe (the API surfaces it as a ``Retry-After`` header).
    """

    def __init__(self, retry_after: float) -> None:
        self.retry_after = max(0.0, retry_after)
        super().__init__(
            f"service is shedding load after repeated worker failures; "
            f"retry in {self.retry_after:.1f}s"
        )


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker with an injectable clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ConfigurationError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self._threshold = failure_threshold
        self._cooldown = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._opens = 0

    @property
    def state(self) -> str:
        """The current state (recomputing open → half-open lazily)."""
        with self._lock:
            self._refresh_locked()
            return self._state

    @property
    def opens(self) -> int:
        """How many times the circuit has opened over its lifetime."""
        with self._lock:
            return self._opens

    @property
    def consecutive_failures(self) -> int:
        """Current run of uninterrupted failures."""
        with self._lock:
            return self._consecutive_failures

    def _refresh_locked(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self._cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_outstanding = False

    def allow(self) -> bool:
        """Whether one request may proceed right now.

        In half-open state exactly one caller gets ``True`` (the probe)
        until its outcome is reported.
        """
        with self._lock:
            self._refresh_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a request may proceed."""
        if not self.allow():
            raise CircuitOpenError(self.retry_after())

    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a probe (0 if now)."""
        with self._lock:
            self._refresh_locked()
            if self._state == self.OPEN:
                return max(
                    0.0, self._cooldown - (self._clock() - self._opened_at)
                )
            return 0.0

    def record_success(self) -> None:
        """Report one successful request: closes a half-open circuit."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_outstanding = False
            if self._state != self.CLOSED:
                self._state = self.CLOSED

    def record_failure(self) -> None:
        """Report one failed request: may open (or reopen) the circuit."""
        with self._lock:
            self._refresh_locked()
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: back to open, cooldown restarts.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_outstanding = False
                self._opens += 1
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self._threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._opens += 1

    def snapshot(self) -> Dict[str, Union[str, int, float]]:
        """JSON-ready view for ``/metrics``."""
        with self._lock:
            self._refresh_locked()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self._opens,
                "failure_threshold": self._threshold,
                "cooldown_seconds": self._cooldown,
            }
