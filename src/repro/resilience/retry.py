"""Seeded retry policy: exponential backoff with deterministic jitter.

:class:`RetryPolicy` tells :class:`~repro.runtime.parallel.
ParallelRunner` how many attempts a task gets and how long to wait
between them. The jitter is *derived*, not drawn: a stable hash of
``(seed, label, attempt)`` maps to ``[0, 1)``, so two runs with the
same seed produce the exact same backoff schedule — which is what lets
the chaos suite assert that a faulty run retried deterministically.

Also home to the error types the runner raises when retrying is no
longer an option: :class:`TaskTimeoutError` (a task overran its
wall-clock budget) and :class:`PoisonedTaskError` (a task kept killing
workers or timing out until its attempts were exhausted and it was
quarantined).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "PoisonedTaskError",
    "RetryPolicy",
    "TaskTimeoutError",
    "stable_unit",
]


def stable_unit(*parts: object) -> float:
    """Map arbitrary parts to a deterministic float in ``[0, 1)``.

    Process- and platform-stable (unlike ``hash()``): the parts are
    ``repr``-joined and SHA-256 hashed, so every worker process agrees
    on the value — the basis of both backoff jitter and chaos-injection
    decisions.
    """
    token = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    value = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
    return value / float(1 << 64)


class TaskTimeoutError(ReproError):
    """A runner task exceeded its per-task wall-clock timeout."""


class PoisonedTaskError(ReproError):
    """A task exhausted every retry attempt and was quarantined.

    Carries the task ``label``, the number of ``attempts`` made, and
    the ``kind`` of failure (``"crash"``, ``"timeout"``, ``"error"``)
    that finally condemned it.
    """

    def __init__(self, label: str, attempts: int, kind: str) -> None:
        self.label = label
        self.attempts = attempts
        self.kind = kind
        super().__init__(
            f"task {label!r} quarantined after {attempts} attempt(s); "
            f"last failure: {kind}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a task gets, and how long to wait between them.

    Parameters
    ----------
    max_attempts:
        Total attempts per task (1 = no retries).
    base_delay:
        Backoff before the second attempt, in seconds; doubles per
        further attempt.
    max_delay:
        Cap on any single backoff delay.
    jitter:
        Fraction of each delay randomized *downward* (0 = none, 1 =
        full). Deterministic: derived from ``(seed, label, attempt)``.
    seed:
        Jitter seed; fixed seed ⇒ identical backoff schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError(
                f"delays must be >= 0, got base={self.base_delay} "
                f"max={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, label: str, attempt: int) -> float:
        """Seconds to wait after failed ``attempt`` of task ``label``.

        Exponential in the attempt number, capped at ``max_delay``,
        jittered by the stable hash of ``(seed, label, attempt)``.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        fraction = stable_unit(self.seed, "backoff", label, attempt)
        return raw * (1.0 - self.jitter * fraction)
