"""Crash-safe file writes: one shared write-temp-fsync-rename helper.

Every persistent artifact in the repo — ``BENCH_<n>.json`` snapshots,
result-cache entries, the schedule disk cache, checkpoint journals —
goes through :func:`atomic_write_bytes`. A reader therefore sees either
the previous complete file or the new complete file, never a truncated
half-write, regardless of when the writing process dies.

The temp file is created in the destination's directory so the final
``os.replace`` is a same-filesystem rename (atomic on POSIX). ``fsync``
is on by default: without it a rename can be durable while the data is
not, which is exactly the torn state this module exists to prevent.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, fsync: bool = True
) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    Creates parent directories as needed. On any failure the temp file
    is removed and the destination is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, fsync: bool = True
) -> Path:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
