"""Checksum sidecars: detect torn, truncated, or bit-rotted payloads.

A payload file ``foo.pkl`` gets a sibling ``foo.pkl.sha256`` holding the
hex SHA-256 of its intended contents. Readers recompute the digest and
compare; a mismatch means the entry is corrupt (torn write, truncated
disk, chaos injection) and must be quarantined rather than unpickled.

Write ordering matters: the sidecar is written *first*, then the
payload. Both writes are atomic, so the only crash states are
(no sidecar, no payload), (sidecar, no payload) — a miss either way —
or both complete. A payload can never exist whose checksum was lost.
Payloads without a sidecar (written by older versions) verify as
``"unverified"`` and fall back to the reader's legacy behavior.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text

__all__ = [
    "CHECKSUM_SUFFIX",
    "checksum_path",
    "digest",
    "read_checksum",
    "verify_bytes",
    "write_with_checksum",
]

#: Sidecar filename suffix (appended to the payload's full name).
CHECKSUM_SUFFIX = ".sha256"


def checksum_path(path: Union[str, Path]) -> Path:
    """The sidecar path for a payload file."""
    path = Path(path)
    return path.with_name(path.name + CHECKSUM_SUFFIX)


def digest(data: bytes) -> str:
    """Hex SHA-256 of a payload."""
    return hashlib.sha256(data).hexdigest()


def read_checksum(path: Union[str, Path]) -> Optional[str]:
    """The recorded digest for a payload, or ``None`` if no sidecar."""
    try:
        return checksum_path(path).read_text().strip() or None
    except OSError:
        return None


def write_with_checksum(
    path: Union[str, Path], data: bytes, payload: Optional[bytes] = None
) -> Path:
    """Atomically write ``data`` to ``path`` with a checksum sidecar.

    ``payload`` overrides the bytes physically written while the
    checksum still covers ``data`` — the hook :mod:`repro.chaos` uses to
    simulate a torn write that the checksum then catches.
    """
    path = Path(path)
    atomic_write_text(checksum_path(path), digest(data) + "\n")
    atomic_write_bytes(path, data if payload is None else payload)
    return path


def verify_bytes(path: Union[str, Path], data: bytes) -> str:
    """Check ``data`` against the sidecar: ``ok``/``corrupt``/``unverified``."""
    expected = read_checksum(path)
    if expected is None:
        return "unverified"
    return "ok" if digest(data) == expected else "corrupt"
