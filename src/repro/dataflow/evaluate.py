"""Multi-objective pricing of mapping candidates.

One :class:`MappingEvaluator` prices every candidate a search engine
visits with the three cost models the repo already has — energy
(:class:`repro.dataflow.energy.EnergyModel`), latency
(:class:`repro.dataflow.cycles.CycleModel`) — plus the wear profile of
:mod:`repro.dataflow.wear`, which is what lets the search co-optimize
the mapping with the wear-leveling hardware instead of evaluating wear
on a fixed energy-optimal point.

Objectives are lexicographic score tuples (compare with ``<``; lower is
better), so ties on the primary axis fall through to stable secondary
axes instead of depending on enumeration order:

==============  ====================================================
objective       primary axis (then tie-breakers)
==============  ====================================================
``energy``      total energy in pJ (cycles, -active PEs)
``latency``     layer cycles (energy, -active PEs)
``edp``         energy x cycles (cycles, -active PEs)
``wear``        peak-to-mean usage ratio (energy, cycles, -active)
``energy-wear`` energy x peak-to-mean ratio — the balanced composite
                (energy, cycles, -active)
==============  ====================================================

Wear metrics depend only on the utilization-space geometry
``(x, y, Z)``, so the evaluator memoizes profiles per geometry: all
temporal splits of one spatial skeleton share a profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataflow.cycles import CycleModel
from repro.dataflow.energy import EnergyBreakdown, EnergyModel
from repro.dataflow.mapping import Mapping
from repro.dataflow.wear import WearProfile, profile_key, wear_profile
from repro.errors import MappingError

#: Selectable scheduling objectives, in documentation order.
OBJECTIVES = ("energy", "latency", "edp", "wear", "energy-wear")

#: Objectives that need a wear profile to score a candidate.
WEAR_OBJECTIVES = ("wear", "energy-wear")


def objective_score(
    objective: str,
    energy_pj: float,
    cycles: int,
    active_pes: int,
    peak_ppm: Optional[float] = None,
) -> Tuple:
    """Lexicographic score tuple of one candidate (lower is better)."""
    if objective == "energy":
        return (energy_pj, cycles, -active_pes)
    if objective == "latency":
        return (cycles, energy_pj, -active_pes)
    if objective == "edp":
        return (energy_pj * cycles, cycles, -active_pes)
    if objective in WEAR_OBJECTIVES:
        if peak_ppm is None:
            raise MappingError(
                f"objective {objective!r} needs a wear profile (peak_ppm)"
            )
        if objective == "wear":
            return (peak_ppm, energy_pj, cycles, -active_pes)
        return (energy_pj * peak_ppm, energy_pj, cycles, -active_pes)
    raise MappingError(
        f"unknown objective {objective!r}; choose from {OBJECTIVES}"
    )


@dataclass(frozen=True)
class MappingEvaluation:
    """All objective axes of one candidate mapping, priced once."""

    mapping: Mapping
    energy: EnergyBreakdown
    cycles: int
    peak_ppm: float
    mttf_proxy: float

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def active_pes(self) -> int:
        return self.mapping.active_pes

    @property
    def space_shape(self) -> Tuple[int, int]:
        return self.mapping.space_shape

    @property
    def num_tiles(self) -> int:
        return self.mapping.num_tiles

    def score(self, objective: str) -> Tuple:
        """Score tuple under ``objective`` (lower is better)."""
        return objective_score(
            objective,
            self.energy_pj,
            self.cycles,
            self.active_pes,
            peak_ppm=self.peak_ppm,
        )


class MappingEvaluator:
    """Prices mapping candidates on one accelerator.

    Holds the energy and cycle models plus a per-geometry wear-profile
    memo; safe to reuse across every candidate of a layer (and across
    layers of the same accelerator).
    """

    def __init__(self, accelerator) -> None:
        self._accelerator = accelerator
        self._energy = EnergyModel(accelerator)
        self._cycles = CycleModel(accelerator)
        # Wear profiles describe the rotational walk, which wraps; they
        # are computed on the torus variant of the array (RoTA's mode).
        self._wear_array = accelerator.as_torus().array
        self._profiles: Dict[Tuple[int, int, int], WearProfile] = {}

    @property
    def accelerator(self):
        return self._accelerator

    def wear_of(self, mapping: Mapping) -> WearProfile:
        """The (memoized) wear profile of a mapping's geometry."""
        x, y = mapping.space_shape
        key = profile_key(x, y, mapping.num_tiles)
        profile = self._profiles.get(key)
        if profile is None:
            profile = wear_profile(self._wear_array, x, y, mapping.num_tiles)
            self._profiles[key] = profile
        return profile

    def evaluate(self, mapping: Mapping) -> MappingEvaluation:
        """Price one candidate on every objective axis."""
        wear = self.wear_of(mapping)
        return MappingEvaluation(
            mapping=mapping,
            energy=self._energy.evaluate(mapping),
            cycles=self._cycles.layer_cycles(mapping),
            peak_ppm=wear.peak_ppm,
            mttf_proxy=wear.mttf_proxy,
        )
