"""Tile streams: the sequence of data tiles a schedule emits for a layer.

The wear-leveling engine does not care about tensor contents — a data
tile is characterized by the utilization space it activates (``x x y``
PEs) and how many such tiles the layer produces (``Z``). A
:class:`TileStream` is that compact description, with enough metadata
(per-tile bytes, MACs, cycles) for the cycle/energy cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.dataflow.scheduler import Schedule
from repro.errors import SimulationError


@dataclass(frozen=True)
class TileStream:
    """The data tiles of one layer, as the PE array sees them.

    Parameters
    ----------
    layer_name:
        Name of the originating layer (for traces and reports).
    space_width, space_height:
        Utilization-space shape ``(x, y)`` in PEs.
    num_tiles:
        The paper's ``Z``: how many tiles the layer streams.
    tile_bytes:
        GLB-resident footprint of one tile (inputs+weights+outputs).
    tile_macs:
        MAC operations per tile.
    tile_cycles:
        Steady-state latency of one tile.
    """

    layer_name: str
    space_width: int
    space_height: int
    num_tiles: int
    tile_bytes: int = 0
    tile_macs: int = 0
    tile_cycles: int = 0

    def __post_init__(self) -> None:
        if self.space_width < 1 or self.space_height < 1:
            raise SimulationError(
                f"tile stream {self.layer_name!r}: utilization space must be "
                f"at least 1x1, got {self.space_width}x{self.space_height}"
            )
        if self.num_tiles < 1:
            raise SimulationError(
                f"tile stream {self.layer_name!r}: needs at least one tile, "
                f"got {self.num_tiles}"
            )
        if min(self.tile_bytes, self.tile_macs, self.tile_cycles) < 0:
            raise SimulationError(
                f"tile stream {self.layer_name!r}: metadata must be non-negative"
            )

    @property
    def space_shape(self) -> Tuple[int, int]:
        """Utilization-space shape ``(x, y)``."""
        return (self.space_width, self.space_height)

    @property
    def active_pes_per_tile(self) -> int:
        """PEs activated by each tile."""
        return self.space_width * self.space_height

    @property
    def total_pe_activations(self) -> int:
        """Sum of per-PE activations over the whole stream: ``Z * x * y``."""
        return self.num_tiles * self.active_pes_per_tile

    def tiles(self) -> Iterator[Tuple[int, int]]:
        """Iterate the stream as ``num_tiles`` copies of the space shape."""
        for _ in range(self.num_tiles):
            yield self.space_shape


def tile_stream_for(schedule: Schedule) -> TileStream:
    """Build the tile stream implied by a layer schedule."""
    x, y = schedule.space_shape
    mapping = schedule.mapping
    # Steady-state tile latency, re-derived from the schedule's totals so
    # the stream stays self-consistent with the layer cycle count.
    z = schedule.num_tiles
    steady = schedule.cycles // z if z else 0
    return TileStream(
        layer_name=schedule.layer.name,
        space_width=x,
        space_height=y,
        num_tiles=z,
        tile_bytes=mapping.tile_bytes(),
        tile_macs=mapping.tile_macs(),
        tile_cycles=steady,
    )
