"""Dataflow scheduling substrate (NeuroSpector-style, SCALE-Sim flavored).

The paper obtains each layer's energy-optimal *utilization space* from the
NeuroSpector scheduling optimizer [15] and streams the resulting data
tiles through the PE array. This subpackage reproduces that pipeline:

* :mod:`repro.dataflow.layer` — layer shape descriptions (conv, depthwise
  conv, GEMM/FC);
* :mod:`repro.dataflow.mapping` — spatial/temporal loop factorizations and
  their derived tile geometry;
* :mod:`repro.dataflow.tiling` — the stream of data tiles a schedule
  produces for a layer;
* :mod:`repro.dataflow.energy` — hierarchical access-count energy model
  (DRAM / GLB / local buffers / MAC);
* :mod:`repro.dataflow.scheduler` — mapping-space search for the
  energy-optimal schedule of a layer on an accelerator;
* :mod:`repro.dataflow.cycles` — cycle model (supports the paper's
  no-performance-degradation claim);
* :mod:`repro.dataflow.simulator` — end-to-end: network in, per-layer
  schedules and tile streams out.
"""

from repro.dataflow.cycles import CycleModel, TileCycles
from repro.dataflow.dma import DmaDescriptor, DmaGenerator, TileDma
from repro.dataflow.energy import EnergyBreakdown, EnergyModel
from repro.dataflow.layer import LayerKind, LayerShape
from repro.dataflow.mapping import Mapping, SpatialAssignment
from repro.dataflow.pipeline import (
    PipelineResult,
    PipelineSimulator,
    simulate_layer,
    validate_cycle_model,
)
from repro.dataflow.roofline import Bound, RooflineAnalysis, analyze_roofline
from repro.dataflow.scalesim import ScaleSimExport, export_scalesim
from repro.dataflow.scheduler import Schedule, Scheduler, SchedulerOptions
from repro.dataflow.simulator import DataflowSimulator, LayerExecution, NetworkExecution
from repro.dataflow.tiling import TileStream, tile_stream_for

__all__ = [
    "Bound",
    "CycleModel",
    "DataflowSimulator",
    "DmaDescriptor",
    "DmaGenerator",
    "EnergyBreakdown",
    "EnergyModel",
    "LayerExecution",
    "LayerKind",
    "LayerShape",
    "Mapping",
    "NetworkExecution",
    "PipelineResult",
    "PipelineSimulator",
    "RooflineAnalysis",
    "ScaleSimExport",
    "Schedule",
    "Scheduler",
    "SchedulerOptions",
    "SpatialAssignment",
    "TileCycles",
    "TileDma",
    "TileStream",
    "analyze_roofline",
    "export_scalesim",
    "simulate_layer",
    "validate_cycle_model",
    "tile_stream_for",
]
