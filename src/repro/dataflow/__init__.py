"""Dataflow scheduling substrate (NeuroSpector-style, SCALE-Sim flavored).

The paper obtains each layer's energy-optimal *utilization space* from the
NeuroSpector scheduling optimizer [15] and streams the resulting data
tiles through the PE array. This subpackage reproduces that pipeline:

* :mod:`repro.dataflow.layer` — layer shape descriptions (conv, depthwise
  conv, GEMM/FC);
* :mod:`repro.dataflow.mapping` — spatial/temporal loop factorizations and
  their derived tile geometry;
* :mod:`repro.dataflow.tiling` — the stream of data tiles a schedule
  produces for a layer;
* :mod:`repro.dataflow.energy` — hierarchical access-count energy model
  (DRAM / GLB / local buffers / MAC);
* :mod:`repro.dataflow.space` — the declarative mapping space (spatial
  skeletons x divisor-lattice temporal factorizations, lazily
  enumerated with legality pruning);
* :mod:`repro.dataflow.evaluate` — multi-objective candidate pricing
  (energy, latency, EDP, wear);
* :mod:`repro.dataflow.wear` — closed-form per-mapping wear profiles
  (peak-to-mean usage, MTTF proxy);
* :mod:`repro.dataflow.search` — greedy / exhaustive / beam search
  engines returning best points and energy/wear Pareto frontiers;
* :mod:`repro.dataflow.scheduler` — orchestration: search the mapping
  space of a layer on an accelerator, cache and package the result;
* :mod:`repro.dataflow.cycles` — cycle model (supports the paper's
  no-performance-degradation claim);
* :mod:`repro.dataflow.simulator` — end-to-end: network in, per-layer
  schedules and tile streams out.
"""

from repro.dataflow.cycles import CycleModel, TileCycles
from repro.dataflow.dma import DmaDescriptor, DmaGenerator, TileDma
from repro.dataflow.energy import EnergyBreakdown, EnergyModel
from repro.dataflow.evaluate import MappingEvaluation, MappingEvaluator
from repro.dataflow.layer import LayerKind, LayerShape
from repro.dataflow.mapping import Mapping, SpatialAssignment
from repro.dataflow.pipeline import (
    PipelineResult,
    PipelineSimulator,
    simulate_layer,
    validate_cycle_model,
)
from repro.dataflow.roofline import Bound, RooflineAnalysis, analyze_roofline
from repro.dataflow.scalesim import ScaleSimExport, export_scalesim
from repro.dataflow.scheduler import (
    OBJECTIVES,
    SEARCH_MODES,
    Schedule,
    Scheduler,
    SchedulerOptions,
)
from repro.dataflow.search import (
    LayerSearchResult,
    SearchStats,
    pareto_front,
    search_layer,
    search_network,
)
from repro.dataflow.simulator import DataflowSimulator, LayerExecution, NetworkExecution
from repro.dataflow.space import MappingPoint, MappingSpace, SpaceStats, layer_signature
from repro.dataflow.tiling import TileStream, tile_stream_for
from repro.dataflow.wear import WearProfile, wear_counts, wear_profile

__all__ = [
    "Bound",
    "CycleModel",
    "DataflowSimulator",
    "DmaDescriptor",
    "DmaGenerator",
    "EnergyBreakdown",
    "EnergyModel",
    "LayerExecution",
    "LayerKind",
    "LayerSearchResult",
    "LayerShape",
    "Mapping",
    "MappingEvaluation",
    "MappingEvaluator",
    "MappingPoint",
    "MappingSpace",
    "NetworkExecution",
    "OBJECTIVES",
    "SEARCH_MODES",
    "SearchStats",
    "SpaceStats",
    "WearProfile",
    "PipelineResult",
    "PipelineSimulator",
    "RooflineAnalysis",
    "ScaleSimExport",
    "Schedule",
    "Scheduler",
    "SchedulerOptions",
    "SpatialAssignment",
    "TileCycles",
    "TileDma",
    "TileStream",
    "analyze_roofline",
    "export_scalesim",
    "layer_signature",
    "pareto_front",
    "search_layer",
    "search_network",
    "simulate_layer",
    "validate_cycle_model",
    "tile_stream_for",
    "wear_counts",
    "wear_profile",
]
