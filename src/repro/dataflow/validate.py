"""Mapping validation with actionable diagnostics.

The scheduler only ever produces legal mappings, but users handcrafting
a :class:`~repro.dataflow.mapping.Mapping` (or porting one from another
tool) want to know *why* a mapping is illegal and by how much — not
just that a buffer overflowed. :func:`validate_mapping` checks every
constraint the scheduler enforces and returns a structured report with
per-check margins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.accelerator import Accelerator
from repro.dataflow.layer import WORD_BYTES
from repro.dataflow.mapping import Mapping


class CheckKind(enum.Enum):
    """The constraint a finding refers to."""

    SPACE_WIDTH = "space_width"
    SPACE_HEIGHT = "space_height"
    INPUT_BUFFER = "input_buffer"
    WEIGHT_BUFFER = "weight_buffer"
    OUTPUT_BUFFER = "output_buffer"
    GLB_CAPACITY = "glb_capacity"
    KERNEL_COVERAGE = "kernel_coverage"


@dataclass(frozen=True)
class CheckResult:
    """One constraint check: required vs available, with a margin."""

    kind: CheckKind
    ok: bool
    required: int
    available: int
    detail: str

    @property
    def utilization(self) -> float:
        """Fraction of the resource the mapping uses."""
        if self.available == 0:
            return float("inf")
        return self.required / self.available


@dataclass(frozen=True)
class ValidationReport:
    """All constraint checks for one mapping on one accelerator."""

    mapping_summary: str
    checks: Tuple[CheckResult, ...]

    @property
    def ok(self) -> bool:
        """Whether the mapping is legal on the accelerator."""
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> Tuple[CheckResult, ...]:
        """The failed checks."""
        return tuple(check for check in self.checks if not check.ok)

    @property
    def tightest_constraint(self) -> CheckResult:
        """The resource closest to (or furthest past) its limit."""
        return max(self.checks, key=lambda check: check.utilization)

    def format(self) -> str:
        """Human-readable report."""
        lines = [self.mapping_summary]
        for check in self.checks:
            status = "ok  " if check.ok else "FAIL"
            lines.append(
                f"  [{status}] {check.kind.value}: {check.required} / "
                f"{check.available} ({check.detail})"
            )
        return "\n".join(lines)


def validate_mapping(accelerator: Accelerator, mapping: Mapping) -> ValidationReport:
    """Check a mapping against every accelerator constraint."""
    checks: List[CheckResult] = []
    x, y = mapping.space_shape
    layer = mapping.layer
    buffers = accelerator.array.pe.local_buffers

    checks.append(
        CheckResult(
            kind=CheckKind.SPACE_WIDTH,
            ok=x <= accelerator.width,
            required=x,
            available=accelerator.width,
            detail="utilization-space width vs PE columns",
        )
    )
    checks.append(
        CheckResult(
            kind=CheckKind.SPACE_HEIGHT,
            ok=y <= accelerator.height,
            required=y,
            available=accelerator.height,
            detail="utilization-space height vs PE rows",
        )
    )

    input_bytes = mapping.pe_input_words() * WORD_BYTES
    checks.append(
        CheckResult(
            kind=CheckKind.INPUT_BUFFER,
            ok=input_bytes <= buffers.input.capacity_bytes,
            required=input_bytes,
            available=buffers.input.capacity_bytes,
            detail="per-PE streaming input window (bytes)",
        )
    )
    weight_bytes = mapping.pe_weight_words() * WORD_BYTES
    checks.append(
        CheckResult(
            kind=CheckKind.WEIGHT_BUFFER,
            ok=weight_bytes <= buffers.weight.capacity_bytes,
            required=weight_bytes,
            available=buffers.weight.capacity_bytes,
            detail="per-PE stationary weights (bytes)",
        )
    )
    output_bytes = mapping.pe_output_words() * WORD_BYTES
    checks.append(
        CheckResult(
            kind=CheckKind.OUTPUT_BUFFER,
            ok=output_bytes <= buffers.output.capacity_bytes,
            required=output_bytes,
            available=buffers.output.capacity_bytes,
            detail="per-PE partial sums (bytes)",
        )
    )

    glb_limit = accelerator.glb.capacity_bytes // 2  # double buffering
    tile_bytes = mapping.tile_bytes()
    checks.append(
        CheckResult(
            kind=CheckKind.GLB_CAPACITY,
            ok=tile_bytes <= glb_limit,
            required=tile_bytes,
            available=glb_limit,
            detail="data-tile footprint vs half the GLB (double buffer)",
        )
    )

    kernel_covered = (
        mapping.tile_extent("R") == layer.R and mapping.tile_extent("S") == layer.S
    )
    checks.append(
        CheckResult(
            kind=CheckKind.KERNEL_COVERAGE,
            ok=kernel_covered,
            required=mapping.tile_extent("R") * mapping.tile_extent("S"),
            available=layer.R * layer.S,
            detail="each tile must cover the full R x S kernel",
        )
    )

    return ValidationReport(
        mapping_summary=mapping.describe(), checks=tuple(checks)
    )
