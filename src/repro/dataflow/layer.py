"""Neural-layer shape descriptions.

A :class:`LayerShape` is everything the scheduler needs to know about one
layer: its loop-nest extents. Three kinds cover the paper's workloads
(Table II):

* ``CONV`` — standard convolution with output channels ``K``, input
  channels ``C``, kernel ``R x S``, output feature map ``P x Q``;
* ``DEPTHWISE`` — depthwise convolution (MobileNet/EfficientNet blocks):
  one filter per channel, so the channel loop is shared between input and
  output (``K`` counts channels, ``C == 1``);
* ``GEMM`` — fully-connected layers and transformer matmuls, expressed as
  an output-stationary loop nest with ``K`` output features, ``C`` input
  features (reduction), and ``P`` rows (tokens / batch), ``Q = R = S = 1``.

All tensors are 16-bit words (2 bytes), matching the Eyeriss datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import WorkloadError

#: Bytes per tensor element (16-bit fixed point).
WORD_BYTES = 2

#: The loop dimensions a mapping may reference.
LOOP_DIMS = ("K", "C", "P", "Q", "R", "S")


class LayerKind(enum.Enum):
    """Computational kind of a layer."""

    CONV = "conv"
    DEPTHWISE = "depthwise"
    GEMM = "gemm"


@dataclass(frozen=True)
class LayerShape:
    """Loop-nest extents of one neural layer.

    Use the :meth:`conv`, :meth:`depthwise`, and :meth:`gemm` constructors
    rather than instantiating directly; they enforce the per-kind
    conventions documented in the module docstring.
    """

    name: str
    kind: LayerKind
    K: int
    C: int
    P: int
    Q: int
    R: int
    S: int
    stride: int = 1

    def __post_init__(self) -> None:
        for dim in LOOP_DIMS:
            value = getattr(self, dim)
            if value < 1:
                raise WorkloadError(
                    f"layer {self.name!r}: dimension {dim} must be >= 1, got {value}"
                )
        if self.stride < 1:
            raise WorkloadError(
                f"layer {self.name!r}: stride must be >= 1, got {self.stride}"
            )
        if self.kind is LayerKind.DEPTHWISE and self.C != 1:
            raise WorkloadError(
                f"depthwise layer {self.name!r} must have C == 1 (per-channel "
                f"loop lives in K), got C={self.C}"
            )
        if self.kind is LayerKind.GEMM and (self.Q, self.R, self.S) != (1, 1, 1):
            raise WorkloadError(
                f"GEMM layer {self.name!r} must have Q = R = S = 1, got "
                f"Q={self.Q} R={self.R} S={self.S}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def conv(
        cls,
        name: str,
        out_channels: int,
        in_channels: int,
        out_hw: Tuple[int, int],
        kernel: Tuple[int, int],
        stride: int = 1,
    ) -> "LayerShape":
        """A standard convolution layer.

        ``out_hw`` is the output feature-map size ``(P, Q)`` and ``kernel``
        the filter size ``(R, S)``.
        """
        p, q = out_hw
        r, s = kernel
        return cls(
            name=name,
            kind=LayerKind.CONV,
            K=out_channels,
            C=in_channels,
            P=p,
            Q=q,
            R=r,
            S=s,
            stride=stride,
        )

    @classmethod
    def depthwise(
        cls,
        name: str,
        channels: int,
        out_hw: Tuple[int, int],
        kernel: Tuple[int, int],
        stride: int = 1,
    ) -> "LayerShape":
        """A depthwise convolution layer (one filter per channel)."""
        p, q = out_hw
        r, s = kernel
        return cls(
            name=name,
            kind=LayerKind.DEPTHWISE,
            K=channels,
            C=1,
            P=p,
            Q=q,
            R=r,
            S=s,
            stride=stride,
        )

    @classmethod
    def gemm(cls, name: str, rows: int, cols: int, inner: int) -> "LayerShape":
        """A GEMM / fully-connected layer: ``rows x inner @ inner x cols``.

        ``rows`` is the number of output rows (tokens or batch), ``cols``
        the output features, ``inner`` the reduction dimension.
        """
        return cls(
            name=name,
            kind=LayerKind.GEMM,
            K=cols,
            C=inner,
            P=rows,
            Q=1,
            R=1,
            S=1,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def dim_sizes(self) -> Dict[str, int]:
        """Loop extents keyed by dimension letter."""
        return {dim: getattr(self, dim) for dim in LOOP_DIMS}

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations in the layer."""
        return self.K * self.C * self.P * self.Q * self.R * self.S

    @property
    def input_hw(self) -> Tuple[int, int]:
        """Input feature-map size implied by output size, kernel, stride."""
        h = (self.P - 1) * self.stride + self.R
        w = (self.Q - 1) * self.stride + self.S
        return (h, w)

    @property
    def input_words(self) -> int:
        """Input tensor volume in words."""
        h, w = self.input_hw
        channels = self.K if self.kind is LayerKind.DEPTHWISE else self.C
        return channels * h * w

    @property
    def weight_words(self) -> int:
        """Weight tensor volume in words."""
        if self.kind is LayerKind.DEPTHWISE:
            return self.K * self.R * self.S
        return self.K * self.C * self.R * self.S

    @property
    def output_words(self) -> int:
        """Output tensor volume in words."""
        return self.K * self.P * self.Q

    @property
    def input_bytes(self) -> int:
        """Input tensor volume in bytes."""
        return self.input_words * WORD_BYTES

    @property
    def weight_bytes(self) -> int:
        """Weight tensor volume in bytes."""
        return self.weight_words * WORD_BYTES

    @property
    def output_bytes(self) -> int:
        """Output tensor volume in bytes."""
        return self.output_words * WORD_BYTES

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kind is LayerKind.GEMM:
            return f"{self.name}: GEMM {self.P}x{self.C} @ {self.C}x{self.K}"
        tag = "dwconv" if self.kind is LayerKind.DEPTHWISE else "conv"
        return (
            f"{self.name}: {tag} K={self.K} C={self.C} out={self.P}x{self.Q} "
            f"kernel={self.R}x{self.S} stride={self.stride}"
        )
