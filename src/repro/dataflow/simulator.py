"""End-to-end dataflow simulation: networks in, tile streams out.

The :class:`DataflowSimulator` composes the scheduler, energy model, and
cycle model: given a network (a sequence of layers) it produces one
:class:`LayerExecution` per layer — the energy-optimal schedule plus its
tile stream — and aggregates them into a :class:`NetworkExecution`. The
wear-leveling engine (:mod:`repro.core.engine`) consumes the tile
streams; the figure drivers consume the aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.accelerator import Accelerator
from repro.dataflow.layer import LayerShape
from repro.dataflow.scheduler import Schedule, Scheduler, SchedulerOptions
from repro.dataflow.tiling import TileStream, tile_stream_for
from repro.errors import SimulationError


@dataclass(frozen=True)
class LayerExecution:
    """One layer's schedule and the tile stream it emits."""

    schedule: Schedule
    stream: TileStream

    @property
    def layer(self) -> LayerShape:
        """The executed layer."""
        return self.schedule.layer

    @property
    def utilization(self) -> float:
        """PE-array utilization of this layer's tiles."""
        return self.schedule.utilization


@dataclass(frozen=True)
class NetworkExecution:
    """Aggregated execution of a whole network on one accelerator."""

    network_name: str
    accelerator_name: str
    layers: Sequence[LayerExecution]

    def __post_init__(self) -> None:
        if not self.layers:
            raise SimulationError(
                f"network {self.network_name!r} produced no layer executions"
            )

    @property
    def total_energy_pj(self) -> float:
        """Total energy across all layers."""
        return math.fsum(ex.schedule.energy.total_pj for ex in self.layers)

    @property
    def total_cycles(self) -> int:
        """Total cycles across all layers."""
        return sum(ex.schedule.cycles for ex in self.layers)

    @property
    def total_tiles(self) -> int:
        """Total data tiles across all layers."""
        return sum(ex.stream.num_tiles for ex in self.layers)

    @property
    def mean_utilization(self) -> float:
        """Unweighted mean PE utilization across layers (paper Fig. 2a)."""
        return math.fsum(ex.utilization for ex in self.layers) / len(self.layers)

    @property
    def tile_weighted_utilization(self) -> float:
        """Tile-count-weighted mean PE utilization."""
        tiles = self.total_tiles
        weighted = math.fsum(
            ex.utilization * ex.stream.num_tiles for ex in self.layers
        )
        return weighted / tiles

    def streams(self) -> List[TileStream]:
        """The per-layer tile streams, in execution order."""
        return [ex.stream for ex in self.layers]

    def latency_ms(self, clock_mhz: float) -> float:
        """Wall-clock inference latency at a given clock."""
        if clock_mhz <= 0:
            raise SimulationError(f"clock must be positive, got {clock_mhz}")
        return self.total_cycles / (clock_mhz * 1e3)

    def average_power_mw(self, clock_mhz: float) -> float:
        """Average power while the inference runs.

        Energy-per-inference divided by inference time: the figure a
        deployment compares against its thermal budget.
        """
        latency_s = self.latency_ms(clock_mhz) / 1e3
        if latency_s == 0:
            raise SimulationError("zero-latency execution has no average power")
        return (self.total_energy_pj / 1e12) / latency_s * 1e3

    def throughput_inferences_per_second(self, clock_mhz: float) -> float:
        """Back-to-back inference throughput at a given clock."""
        return 1e3 / self.latency_ms(clock_mhz)


class DataflowSimulator:
    """Schedules and executes networks on one accelerator."""

    def __init__(
        self, accelerator: Accelerator, options: SchedulerOptions = SchedulerOptions()
    ) -> None:
        self._accelerator = accelerator
        self._scheduler = Scheduler(accelerator, options)

    @property
    def accelerator(self) -> Accelerator:
        """The simulated accelerator."""
        return self._accelerator

    @property
    def scheduler(self) -> Scheduler:
        """The underlying mapping-space search."""
        return self._scheduler

    def execute_layer(self, layer: LayerShape) -> LayerExecution:
        """Schedule one layer and derive its tile stream."""
        schedule = self._scheduler.schedule_layer(layer)
        return LayerExecution(schedule=schedule, stream=tile_stream_for(schedule))

    def execute_network(
        self, layers: Sequence[LayerShape], name: str = "network"
    ) -> NetworkExecution:
        """Schedule a full network and aggregate its execution."""
        if not layers:
            raise SimulationError(f"network {name!r} has no layers")
        executions = [self.execute_layer(layer) for layer in layers]
        return NetworkExecution(
            network_name=name,
            accelerator_name=self._accelerator.name,
            layers=executions,
        )
