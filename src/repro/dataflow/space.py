"""The declarative mapping space: what the search engines enumerate.

A mapping of one layer onto one accelerator is a point in a finite
space: a *spatial skeleton* (which loop dimension unrolls along each
array axis, with which factor) crossed with a *temporal factorization*
(how the per-dimension quotient left after spatial unrolling splits
between the per-PE level and the GLB level). This module makes that
space first-class:

* :func:`iter_spatial_skeletons` enumerates the spatial skeletons of a
  layer — every dimension pair of the active dataflow preset crossed
  with its legal axis factors, kernel dimensions pre-bound so each
  array pass covers the full receptive field;
* :func:`temporal_splits` is the divisor-lattice generator: every
  ordered pair ``(pe, glb)`` whose product divides the remaining loop
  quotient, so pass and tile extents always divide the loop extent
  (the factorization discipline of NeuroSpector/Timeloop-class
  mappers);
* :class:`MappingSpace` lazily enumerates the full cross product as
  :class:`MappingPoint` objects, applying the two legality predicates
  (per-PE working set fits the local buffers; one tile fits half the
  GLB for double buffering) and pruning dominated branches — both
  working sets are monotone in every temporal factor, so once a factor
  overflows a buffer every larger divisor of the same slot overflows
  too and the whole branch is cut;
* :func:`grow_temporal_greedy` is the legacy greedy temporal growth
  (largest fitting divisor first, in priority order) — one specific
  walk through this space, kept because the pre-refactor scheduler's
  results are golden-pinned.

The enumeration is deliberately lazy (generators all the way down):
search engines decide how much of the space to visit.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dataflow.layer import LOOP_DIMS, LayerKind, LayerShape
from repro.dataflow.mapping import Mapping, SpatialAssignment
from repro.errors import MappingError

#: Named spatial-dimension-pair presets. ``(x_dim, y_dim)`` tuples: the
#: first unrolls along the array's horizontal axis, the second vertically.
DATAFLOW_PRESETS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    # Search every ordered pair of distinct dimensions (NeuroSpector-like).
    "flexible": tuple(
        (dx, dy) for dx, dy in itertools.permutations(LOOP_DIMS, 2)
    ),
    # Output pixels stationary in the array (SCALE-Sim "os").
    "output_stationary": (("Q", "P"), ("P", "Q")),
    # Filters x channels in the array (SCALE-Sim "ws").
    "weight_stationary": (("K", "C"), ("C", "K")),
    # Eyeriss row-stationary flavor: ofmap rows x filter rows.
    "row_stationary": (("P", "R"), ("Q", "R")),
}

#: Dimensions whose temporal quotient the search factorizes freely. The
#: kernel dimensions R and S are excluded: each array pass must cover
#: the full receptive field, so their temporal factors are forced by the
#: spatial skeleton (see :func:`forced_kernel_temporal`).
TEMPORAL_DIMS = ("K", "C", "P", "Q")


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise MappingError(f"divisors() needs a positive integer, got {n}")
    small, large = [], []
    for candidate in range(1, int(math.isqrt(n)) + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return small + large[::-1]


def layer_signature(layer: LayerShape) -> Tuple:
    """Everything but the layer name: identical shapes share searches."""
    return (
        layer.kind.value,
        layer.K,
        layer.C,
        layer.P,
        layer.Q,
        layer.R,
        layer.S,
        layer.stride,
    )


def spatial_factor_candidates(
    extent: int, limit: int, allow_partial: bool
) -> List[int]:
    """Legal spatial factors for a loop extent on an axis of ``limit`` PEs."""
    candidates = [d for d in divisors(extent) if d <= limit]
    if allow_partial:
        cap = min(extent, limit)
        if cap not in candidates:
            candidates.append(cap)
    return candidates


def forced_kernel_temporal(
    layer: LayerShape, dim_x: str, fx: int, dim_y: str, fy: int
) -> Dict[str, int]:
    """Per-PE factors that keep each pass covering the full kernel.

    R and S must stay fully covered by every array pass (the per-PE
    weight working set assumes it), so whatever share of them is not
    unrolled spatially is bound temporally here.
    """
    temporal: Dict[str, int] = {}
    if dim_x != "R" and dim_y != "R" and layer.R > 1:
        temporal["R"] = layer.R
    elif dim_x == "R":
        temporal["R"] = layer.R // fx
    elif dim_y == "R":
        temporal["R"] = layer.R // fy
    if dim_x != "S" and dim_y != "S" and layer.S > 1:
        temporal["S"] = layer.S
    elif dim_x == "S":
        temporal["S"] = layer.S // fx
    elif dim_y == "S":
        temporal["S"] = layer.S // fy
    return {d: f for d, f in temporal.items() if f > 1}


def iter_secondary_assignments(
    accelerator, options, layer: LayerShape,
    dim_x: str, fx: int, dim_y: str, fy: int,
) -> Iterator[Tuple[Optional[SpatialAssignment], Optional[SpatialAssignment]]]:
    """Secondary per-axis spatial options (composite mode).

    Always yields the plain ``(None, None)`` single-dimension case;
    with ``composite_spatial`` enabled, additionally yields co-mapped
    secondaries from the non-kernel dimensions, using the few largest
    divisors that still fit the axis.
    """
    yield (None, None)
    if not options.composite_spatial:
        return
    sizes = layer.dim_sizes()
    used = {dim_x, dim_y}
    candidate_dims = [d for d in ("K", "C", "P", "Q") if d not in used]

    def axis_options(limit: int, base_factor: int):
        choices = []
        for dim in candidate_dims:
            room = limit // base_factor
            factors = [
                f
                for f in divisors(sizes[dim])
                if 1 < f <= room
            ][-2:]  # largest couple of divisors that fit
            choices.extend(SpatialAssignment(dim, f) for f in factors)
        return choices

    x_options = axis_options(accelerator.width, fx)
    y_options = axis_options(accelerator.height, fy)
    for x2 in x_options:
        yield (x2, None)
    for y2 in y_options:
        yield (None, y2)
    for x2 in x_options:
        for y2 in y_options:
            if x2.dim != y2.dim:
                yield (x2, y2)


def iter_spatial_skeletons(
    accelerator, options, layer: LayerShape
) -> Iterator[Mapping]:
    """Every spatial skeleton of a layer, as a base :class:`Mapping`.

    A skeleton binds the spatial assignments plus the forced kernel
    temporal factors and nothing else; both the greedy growth and the
    divisor-lattice enumeration start from these. The iteration order is
    the pre-refactor scheduler's exactly (the greedy path is
    golden-pinned against it).
    """
    sizes = layer.dim_sizes()
    width = accelerator.width
    height = accelerator.height
    seen: set = set()
    for dim_x, dim_y in options.spatial_pairs:
        # R and S must stay fully covered by each tile, so a spatial
        # factor on them must divide exactly even in partial mode.
        fx_candidates = [
            f
            for f in spatial_factor_candidates(
                sizes[dim_x], width, options.allow_partial_spaces
            )
            if dim_x not in ("R", "S") or sizes[dim_x] % f == 0
        ]
        fy_candidates = [
            f
            for f in spatial_factor_candidates(
                sizes[dim_y], height, options.allow_partial_spaces
            )
            if dim_y not in ("R", "S") or sizes[dim_y] % f == 0
        ]
        for fx in fx_candidates:
            for fy in fy_candidates:
                key = (dim_x, fx, dim_y, fy)
                if key in seen:
                    continue
                seen.add(key)
                temporal = forced_kernel_temporal(layer, dim_x, fx, dim_y, fy)
                for x2, y2 in iter_secondary_assignments(
                    accelerator, options, layer, dim_x, fx, dim_y, fy
                ):
                    try:
                        yield Mapping(
                            layer=layer,
                            spatial_x=SpatialAssignment(dim_x, fx),
                            spatial_y=SpatialAssignment(dim_y, fy),
                            pe_temporal=temporal,
                            spatial_x2=x2,
                            spatial_y2=y2,
                        )
                    except MappingError:
                        continue


def grow_temporal_greedy(accelerator, options, base: Mapping) -> Mapping:
    """Greedily grow the temporal levels of a spatial skeleton.

    First the per-PE factors (bounded by the local buffers), then the
    GLB factors (bounded by half the GLB, for double buffering). Both
    levels grow dimensions in the configured priority order, largest
    fitting divisor first — the standard greedy of factorization
    mappers, and the walk whose results the pre-refactor goldens pin.
    """
    layer = base.layer
    buffers = accelerator.array.pe.local_buffers
    glb_limit = accelerator.glb.capacity_bytes // 2  # double buffer
    sizes = layer.dim_sizes()
    pe_temporal = dict(base.pe_temporal)
    glb_temporal = dict(base.glb_temporal)

    def build() -> Mapping:
        return Mapping(
            layer=layer,
            spatial_x=base.spatial_x,
            spatial_y=base.spatial_y,
            pe_temporal=pe_temporal,
            glb_temporal=glb_temporal,
            spatial_x2=base.spatial_x2,
            spatial_y2=base.spatial_y2,
        )

    def fits(mapping: Mapping) -> bool:
        return (
            not mapping.violates_local_buffers(buffers)
            and mapping.tile_bytes() <= glb_limit
        )

    current = build()
    if not fits(current):
        raise MappingError("base mapping does not fit the buffers")

    # Level 1: per-PE factors under the local-buffer budget.
    for dim in options.temporal_priority:
        quotient = sizes[dim] // current.pass_extent(dim)
        if quotient <= 1:
            continue
        base_factor = pe_temporal.get(dim, 1)
        for factor in reversed(divisors(quotient)):
            if factor == 1:
                break
            pe_temporal[dim] = base_factor * factor
            candidate = build()
            if fits(candidate):
                current = candidate
                break
            pe_temporal[dim] = base_factor
    # Level 2: GLB factors (array passes per data tile) under the GLB
    # budget — this is what pushes Z down to the tens-to-hundreds the
    # paper reports per layer.
    for dim in options.temporal_priority:
        quotient = sizes[dim] // current.tile_extent(dim)
        if quotient <= 1:
            continue
        for factor in reversed(divisors(quotient)):
            if factor == 1:
                break
            glb_temporal[dim] = factor
            candidate = build()
            if fits(candidate):
                current = candidate
                break
            glb_temporal.pop(dim, None)
    return current


def factor_ladder(values: List[int], max_rungs: Optional[int]) -> List[int]:
    """Deterministically thin a divisor list to at most ``max_rungs``.

    Keeps the first entry (factor 1) and the last (the maximal divisor)
    and spaces the interior evenly by index, so a thinned ladder still
    spans the whole range of factorization granularities. ``None``
    means no thinning.
    """
    if max_rungs is None or len(values) <= max_rungs:
        return values
    if max_rungs < 1:
        raise MappingError(f"ladder needs at least one rung, got {max_rungs}")
    if max_rungs == 1:
        return values[:1]
    span = len(values) - 1
    indices = sorted(
        {round(i * span / (max_rungs - 1)) for i in range(max_rungs)}
    )
    return [values[i] for i in indices]


def temporal_splits(quotient: int) -> Iterator[Tuple[int, int]]:
    """The divisor lattice of one dimension's temporal quotient.

    Yields every ordered pair ``(pe, glb)`` with ``pe * glb`` dividing
    ``quotient`` — per-PE sequential factor times GLB bundling factor —
    in ascending ``(pe, glb)`` order. The pair ``(1, 1)`` (leave the
    dimension at DRAM-trip granularity) is always first.
    """
    for pe in divisors(quotient):
        for glb in divisors(quotient // pe):
            yield (pe, glb)


@dataclass(frozen=True)
class MappingPoint:
    """One enumerated point of the mapping space."""

    mapping: Mapping

    def key(self) -> Tuple:
        """Canonical identity: equal keys mean the same factorization.

        Factors of 1 are dropped, temporal dicts are sorted — two points
        that differ only in how the defaults were spelled collapse to
        one key. Search engines use this for deduplication and for
        deterministic tie-breaking.
        """
        mapping = self.mapping

        def secondary(assignment):
            if assignment is None:
                return None
            return (assignment.dim, assignment.factor)

        return (
            mapping.spatial_x.dim,
            mapping.spatial_x.factor,
            mapping.spatial_y.dim,
            mapping.spatial_y.factor,
            secondary(mapping.spatial_x2),
            secondary(mapping.spatial_y2),
            tuple(
                sorted(
                    (d, int(f)) for d, f in mapping.pe_temporal.items() if f > 1
                )
            ),
            tuple(
                sorted(
                    (d, int(f)) for d, f in mapping.glb_temporal.items() if f > 1
                )
            ),
        )


@dataclass
class SpaceStats:
    """Counters of one enumeration pass over a mapping space."""

    skeletons: int = 0
    #: Temporal candidates whose legality was actually checked.
    generated: int = 0
    #: Candidates that passed both legality predicates (yielded points).
    yielded: int = 0
    #: Candidates skipped without a check because a smaller factor in the
    #: same slot already overflowed a buffer (monotone dominance cut).
    pruned: int = 0

    def merge(self, other: "SpaceStats") -> None:
        self.skeletons += other.skeletons
        self.generated += other.generated
        self.yielded += other.yielded
        self.pruned += other.pruned


class MappingSpace:
    """The full legal mapping space of one layer on one accelerator.

    Enumeration is lazy and deterministic: skeletons in preset order,
    temporal factors in ascending divisor-lattice order. Legality is
    enforced at generation time, with branch-level dominance pruning
    (``prune=True``) or plain generate-and-test (``prune=False``, the
    naive baseline the bench compares against).
    """

    def __init__(self, accelerator, layer: LayerShape, options) -> None:
        self._accelerator = accelerator
        self._layer = layer
        self._options = options
        self._buffers = accelerator.array.pe.local_buffers
        self._glb_limit = accelerator.glb.capacity_bytes // 2

    @property
    def layer(self) -> LayerShape:
        """The layer this space maps."""
        return self._layer

    def skeletons(self) -> Iterator[Mapping]:
        """The spatial skeletons of the space."""
        return iter_spatial_skeletons(self._accelerator, self._options, self._layer)

    def points(
        self,
        prune: bool = True,
        stats: Optional[SpaceStats] = None,
        max_rungs: Optional[int] = None,
    ) -> Iterator[MappingPoint]:
        """Lazily enumerate every legal mapping point of the layer.

        ``max_rungs`` thins each temporal slot's divisor list with
        :func:`factor_ladder` (``None`` = the full lattice).
        """
        for skeleton in self.skeletons():
            if stats is not None:
                stats.skeletons += 1
            yield from self.temporal_points(
                skeleton, prune=prune, stats=stats, max_rungs=max_rungs
            )

    # ------------------------------------------------------------------
    # Temporal enumeration (divisor lattice, monotone pruning)
    # ------------------------------------------------------------------
    def temporal_points(
        self,
        base: Mapping,
        prune: bool = True,
        stats: Optional[SpaceStats] = None,
        max_rungs: Optional[int] = None,
    ) -> Iterator[MappingPoint]:
        """Every legal temporal factorization of one spatial skeleton."""
        layer = self._layer
        sizes = layer.dim_sizes()
        quotients = [
            (dim, sizes[dim] // base.pass_extent(dim)) for dim in TEMPORAL_DIMS
        ]
        # Slots in evaluation order: all per-PE factors, then all GLB
        # factors, each dimension in TEMPORAL_DIMS order.
        slots: List[Tuple[str, str]] = [
            (level, dim)
            for level in ("pe", "glb")
            for dim, quotient in quotients
            if quotient > 1
        ]
        quotient_of = dict(quotients)
        pe: Dict[str, int] = {}
        glb: Dict[str, int] = {}

        def legal() -> bool:
            return (
                self._pe_words_fit(base, pe)
                and self._tile_bytes(base, pe, glb) <= self._glb_limit
            )

        def emit() -> MappingPoint:
            pe_temporal = dict(base.pe_temporal)
            for dim, factor in pe.items():
                if factor > 1:
                    pe_temporal[dim] = factor
            glb_temporal = {d: f for d, f in glb.items() if f > 1}
            return MappingPoint(
                Mapping(
                    layer=layer,
                    spatial_x=base.spatial_x,
                    spatial_y=base.spatial_y,
                    pe_temporal=pe_temporal,
                    glb_temporal=glb_temporal,
                    spatial_x2=base.spatial_x2,
                    spatial_y2=base.spatial_y2,
                )
            )

        def recurse(index: int) -> Iterator[MappingPoint]:
            if index == len(slots):
                return
            level, dim = slots[index]
            if level == "pe":
                room = quotient_of[dim]
            else:
                room = quotient_of[dim] // pe.get(dim, 1)
            store = pe if level == "pe" else glb
            options = factor_ladder(divisors(room), max_rungs)
            for position, factor in enumerate(options):
                store[dim] = factor
                if factor > 1:
                    if stats is not None:
                        stats.generated += 1
                    if legal():
                        if stats is not None:
                            stats.yielded += 1
                        yield emit()
                    elif prune:
                        store.pop(dim, None)
                        # Working sets are monotone in every factor, so
                        # every larger divisor of this slot (and its
                        # whole subtree) is illegal too.
                        if stats is not None:
                            stats.pruned += len(options) - position - 1
                        break
                    # Naive mode (prune=False) keeps descending through
                    # the illegal subtree: every deeper candidate gets
                    # checked and rejected individually.
                yield from recurse(index + 1)
                store.pop(dim, None)

        # The all-ones point (the bare skeleton) first.
        if stats is not None:
            stats.generated += 1
        if legal():
            if stats is not None:
                stats.yielded += 1
            yield emit()
            yield from recurse(0)
        elif stats is not None and prune:
            stats.pruned += max(0, self._subtree_size(slots, quotient_of) - 1)

    def _subtree_size(self, slots, quotient_of) -> int:
        """Upper bound of candidates under an illegal skeleton root."""
        total = 1
        for level, dim in slots:
            total *= len(divisors(quotient_of[dim]))
        return total

    # ------------------------------------------------------------------
    # Cheap legality arithmetic (no Mapping construction per candidate)
    # ------------------------------------------------------------------
    def _pe_words_fit(self, base: Mapping, pe: Dict[str, int]) -> bool:
        from repro.dataflow.layer import WORD_BYTES

        layer = self._layer

        def pe_factor(dim: str) -> int:
            return pe.get(dim, base.pe_temporal_factor(dim))

        eff_r = max(1, layer.R // base.spatial_factor("R"))
        eff_s = max(1, layer.S // base.spatial_factor("S"))
        k, c = pe_factor("K"), pe_factor("C")
        p, q = pe_factor("P"), pe_factor("Q")
        if layer.kind is LayerKind.DEPTHWISE:
            weight_words = k * eff_r * eff_s
            channels = k
        else:
            weight_words = k * c * eff_r * eff_s
            channels = c
        window_cols = (q - 1) * layer.stride + eff_s
        input_words = channels * window_cols
        output_words = k * p * q
        return self._buffers.fits_tile(
            input_words * WORD_BYTES,
            weight_words * WORD_BYTES,
            output_words * WORD_BYTES,
        )

    def _tile_bytes(
        self, base: Mapping, pe: Dict[str, int], glb: Dict[str, int]
    ) -> int:
        from repro.dataflow.layer import WORD_BYTES

        layer = self._layer

        def tile_extent(dim: str) -> int:
            pe_factor = pe.get(dim, base.pe_temporal_factor(dim))
            glb_factor = glb.get(dim, base.glb_temporal_factor(dim))
            return base.spatial_factor(dim) * pe_factor * glb_factor

        extents = {dim: tile_extent(dim) for dim in LOOP_DIMS}
        stride = layer.stride
        rows = (extents["P"] - 1) * stride + layer.R
        cols = (extents["Q"] - 1) * stride + layer.S
        if layer.kind is LayerKind.DEPTHWISE:
            channels = extents["K"]
            weight_words = extents["K"] * extents["R"] * extents["S"]
        else:
            channels = extents["C"]
            weight_words = (
                extents["K"] * extents["C"] * extents["R"] * extents["S"]
            )
        input_words = channels * rows * cols
        output_words = extents["K"] * extents["P"] * extents["Q"]
        return (input_words + weight_words + output_words) * WORD_BYTES

    # ------------------------------------------------------------------
    # Size accounting (for the bench's pruned-vs-naive comparison)
    # ------------------------------------------------------------------
    def naive_size(self) -> int:
        """Temporal candidates a generate-and-test sweep would check."""
        total = 0
        for skeleton in self.skeletons():
            sizes = self._layer.dim_sizes()
            per_dim = 1
            for dim in TEMPORAL_DIMS:
                quotient = sizes[dim] // skeleton.pass_extent(dim)
                per_dim *= sum(
                    len(divisors(quotient // pe)) for pe in divisors(quotient)
                )
            total += per_dim
        return total
