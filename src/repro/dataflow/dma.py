"""DMA descriptor generation: the data movement a schedule implies.

A schedule is only executable if someone moves the bytes. For each data
tile, the accelerator's DMA engine needs descriptors — (DRAM offset,
length) runs — for the input patch, the weight block, and the output
block, against a canonical row-major tensor layout. This module derives
those descriptor lists from a mapping, giving (a) the driver-side
artifact a real deployment would program and (b) an independent check
of the energy model's DRAM traffic accounting: summing descriptor
lengths over all tiles must reproduce (or bound) the modeled traffic.

Layouts (row-major, 16-bit words):

* input  ``[C][H][W]``   (depthwise: ``[K][H][W]``)
* weight ``[K][C][R][S]`` (depthwise: ``[K][R][S]``)
* output ``[K][P][Q]``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.dataflow.layer import WORD_BYTES, LayerKind
from repro.dataflow.mapping import Mapping
from repro.errors import SimulationError


@dataclass(frozen=True)
class DmaDescriptor:
    """One contiguous DRAM run."""

    tensor: str
    offset_bytes: int
    length_bytes: int

    def __post_init__(self) -> None:
        if self.offset_bytes < 0 or self.length_bytes <= 0:
            raise SimulationError(
                f"descriptor for {self.tensor!r} must have non-negative "
                f"offset and positive length"
            )

    @property
    def end_bytes(self) -> int:
        """One past the last byte."""
        return self.offset_bytes + self.length_bytes


@dataclass(frozen=True)
class TileDma:
    """All descriptors of one data tile."""

    tile_index: int
    input_runs: Tuple[DmaDescriptor, ...]
    weight_runs: Tuple[DmaDescriptor, ...]
    output_runs: Tuple[DmaDescriptor, ...]

    @property
    def input_bytes(self) -> int:
        """Input bytes this tile fetches."""
        return sum(run.length_bytes for run in self.input_runs)

    @property
    def weight_bytes(self) -> int:
        """Weight bytes this tile fetches."""
        return sum(run.length_bytes for run in self.weight_runs)

    @property
    def output_bytes(self) -> int:
        """Output bytes this tile writes back."""
        return sum(run.length_bytes for run in self.output_runs)


class DmaGenerator:
    """Builds per-tile DMA descriptor lists for one mapping."""

    def __init__(self, mapping: Mapping) -> None:
        self._mapping = mapping
        self._layer = mapping.layer

    # ------------------------------------------------------------------
    # Tile grid
    # ------------------------------------------------------------------
    def tile_grid(self) -> Tuple[int, int, int, int]:
        """GLB-level trip counts over (K, C, P, Q)."""
        m = self._mapping
        return (m.trips("K"), m.trips("C"), m.trips("P"), m.trips("Q"))

    def _tile_ranges(
        self, index: int
    ) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
        """Half-open (start, stop) ranges of tile ``index`` per dimension.

        Tiles are ordered K-major, then C, P, Q — matching the loop
        order the energy model's reuse analysis assumes.
        """
        m = self._mapping
        layer = self._layer
        trips_k, trips_c, trips_p, trips_q = self.tile_grid()
        total = trips_k * trips_c * trips_p * trips_q
        if not 0 <= index < total:
            raise SimulationError(f"tile index {index} outside [0, {total})")
        q_index = index % trips_q
        p_index = (index // trips_q) % trips_p
        c_index = (index // (trips_q * trips_p)) % trips_c
        k_index = index // (trips_q * trips_p * trips_c)

        def clamp(start: int, extent: int, size: int) -> Tuple[int, int]:
            return (start, min(start + extent, size))

        return (
            clamp(k_index * m.tile_extent("K"), m.tile_extent("K"), layer.K),
            clamp(c_index * m.tile_extent("C"), m.tile_extent("C"), layer.C),
            clamp(p_index * m.tile_extent("P"), m.tile_extent("P"), layer.P),
            clamp(q_index * m.tile_extent("Q"), m.tile_extent("Q"), layer.Q),
        )

    # ------------------------------------------------------------------
    # Descriptor construction
    # ------------------------------------------------------------------
    def _input_runs(self, k, c, p, q) -> List[DmaDescriptor]:
        layer = self._layer
        in_h, in_w = layer.input_hw
        stride = layer.stride
        if layer.kind is LayerKind.DEPTHWISE:
            channels = k
        else:
            channels = c
        row_start = p[0] * stride
        row_stop = min((p[1] - 1) * stride + layer.R, in_h)
        col_start = q[0] * stride
        col_stop = min((q[1] - 1) * stride + layer.S, in_w)
        runs = []
        full_rows = col_stop - col_start == in_w
        for channel in range(channels[0], channels[1]):
            base = channel * in_h * in_w
            if full_rows:
                offset = (base + row_start * in_w) * WORD_BYTES
                length = (row_stop - row_start) * in_w * WORD_BYTES
                runs.append(DmaDescriptor("input", offset, length))
                continue
            for row in range(row_start, row_stop):
                offset = (base + row * in_w + col_start) * WORD_BYTES
                length = (col_stop - col_start) * WORD_BYTES
                runs.append(DmaDescriptor("input", offset, length))
        return runs

    def _weight_runs(self, k, c) -> List[DmaDescriptor]:
        layer = self._layer
        kernel = layer.R * layer.S
        runs = []
        if layer.kind is LayerKind.DEPTHWISE:
            offset = k[0] * kernel * WORD_BYTES
            length = (k[1] - k[0]) * kernel * WORD_BYTES
            return [DmaDescriptor("weight", offset, length)]
        full_c = c[1] - c[0] == layer.C
        for filt in range(k[0], k[1]):
            base = filt * layer.C * kernel
            if full_c and filt == k[0]:
                # Whole contiguous filter block for the K range.
                offset = base * WORD_BYTES
                length = (k[1] - k[0]) * layer.C * kernel * WORD_BYTES
                return [DmaDescriptor("weight", offset, length)]
            offset = (base + c[0] * kernel) * WORD_BYTES
            length = (c[1] - c[0]) * kernel * WORD_BYTES
            runs.append(DmaDescriptor("weight", offset, length))
        return runs

    def _output_runs(self, k, p, q) -> List[DmaDescriptor]:
        layer = self._layer
        runs = []
        full_rows = q[1] - q[0] == layer.Q
        for filt in range(k[0], k[1]):
            base = filt * layer.P * layer.Q
            if full_rows:
                offset = (base + p[0] * layer.Q) * WORD_BYTES
                length = (p[1] - p[0]) * layer.Q * WORD_BYTES
                runs.append(DmaDescriptor("output", offset, length))
                continue
            for row in range(p[0], p[1]):
                offset = (base + row * layer.Q + q[0]) * WORD_BYTES
                length = (q[1] - q[0]) * WORD_BYTES
                runs.append(DmaDescriptor("output", offset, length))
        return runs

    def tile_dma(self, index: int) -> TileDma:
        """Descriptors of one tile."""
        k, c, p, q = self._tile_ranges(index)
        return TileDma(
            tile_index=index,
            input_runs=tuple(self._input_runs(k, c, p, q)),
            weight_runs=tuple(self._weight_runs(k, c)),
            output_runs=tuple(self._output_runs(k, p, q)),
        )

    def tiles(self) -> Iterator[TileDma]:
        """Descriptors of every tile, in execution order."""
        trips_k, trips_c, trips_p, trips_q = self.tile_grid()
        for index in range(trips_k * trips_c * trips_p * trips_q):
            yield self.tile_dma(index)

    # ------------------------------------------------------------------
    # Aggregate checks
    # ------------------------------------------------------------------
    def total_traffic_bytes(self) -> Tuple[int, int, int]:
        """Summed (input, weight, output) descriptor bytes over all tiles."""
        input_total = weight_total = output_total = 0
        for tile in self.tiles():
            input_total += tile.input_bytes
            weight_total += tile.weight_bytes
            output_total += tile.output_bytes
        return input_total, weight_total, output_total
