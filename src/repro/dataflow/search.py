"""Pruned search over the mapping space of :mod:`repro.dataflow.space`.

Three modes, all deterministic:

* ``"greedy"`` — the legacy single-point walk: grow each spatial
  skeleton with :func:`~repro.dataflow.space.grow_temporal_greedy` and
  keep the best grown point. One candidate per skeleton; what the
  pre-refactor scheduler did, and what its goldens pin.
* ``"exhaustive"`` — evaluate every legal point of the divisor-lattice
  space (with monotone dominance pruning at enumeration time). The
  ground truth the property tests compare the other modes against;
  practical for small layers.
* ``"beam"`` — rank the spatial skeletons by the score of their
  greedily grown point, keep the ``beam_width`` best, then factorize
  only the surviving skeletons, on a divisor ladder thinned to
  :data:`BEAM_TEMPORAL_RUNGS` rungs per temporal slot. Every grown
  point (including the greedy winner) stays in the candidate pool.
  The mode for real networks: broad coverage of the energy/wear
  trade-off at a bounded candidate count.

Every evaluated candidate is priced on *all* objective axes
(:class:`~repro.dataflow.evaluate.MappingEvaluation`), so a search
returns both the best point under the configured objective and the
energy/wear Pareto frontier of everything it visited. Ties are broken
by the candidate's canonical :meth:`~repro.dataflow.space.MappingPoint.key`,
never by enumeration order.

:func:`search_network` fans per-layer searches out over a
:class:`~repro.runtime.parallel.ParallelRunner` and memoizes them in
the persistent :class:`~repro.runtime.cache.ResultCache`, keyed on the
accelerator fingerprint, the options, and the layer signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.evaluate import MappingEvaluation, MappingEvaluator
from repro.dataflow.layer import LayerShape
from repro.dataflow.mapping import Mapping
from repro.dataflow.space import (
    MappingPoint,
    MappingSpace,
    SpaceStats,
    grow_temporal_greedy,
    layer_signature,
)
from repro.errors import MappingError

#: Selectable search modes, in documentation order.
SEARCH_MODES = ("greedy", "exhaustive", "beam")

#: Per-slot factor-ladder rungs in beam mode: each surviving skeleton's
#: temporal lattice is thinned to at most this many divisors per slot
#: (always keeping 1 and the maximum), which bounds the per-layer
#: candidate count to the low thousands while still spanning every
#: factorization granularity. Exhaustive mode never thins.
BEAM_TEMPORAL_RUNGS = 3


@dataclass(frozen=True)
class SearchStats:
    """Counters of one layer search."""

    #: Spatial skeletons the search considered.
    skeletons: int
    #: Candidates whose legality was checked at enumeration time.
    generated: int
    #: Candidates priced by the evaluator.
    evaluated: int
    #: Candidates skipped by monotone dominance cuts.
    pruned: int


@dataclass(frozen=True)
class LayerSearchResult:
    """Outcome of searching one layer's mapping space."""

    layer: LayerShape
    objective: str
    search: str
    #: Best evaluation under the configured objective.
    best: MappingEvaluation
    #: Energy/wear Pareto frontier of every candidate evaluated,
    #: ascending in energy (so descending in peak-to-mean ratio).
    pareto: Tuple[MappingEvaluation, ...]
    stats: SearchStats

    @property
    def best_mapping(self) -> Mapping:
        return self.best.mapping


def _point_key(evaluation: MappingEvaluation) -> Tuple:
    return MappingPoint(evaluation.mapping).key()


def _best_of(
    evaluations: Sequence[MappingEvaluation], objective: str
) -> MappingEvaluation:
    return min(evaluations, key=lambda e: (e.score(objective), _point_key(e)))


def pareto_front(
    evaluations: Sequence[MappingEvaluation],
    max_points: Optional[int] = None,
) -> Tuple[MappingEvaluation, ...]:
    """Energy/wear Pareto frontier of a candidate pool.

    A candidate survives if no other candidate is at least as good on
    both axes (energy in pJ, peak-to-mean wear ratio) and strictly
    better on one. The frontier is returned ascending in energy; with
    ``max_points`` it is thinned by dropping interior points closest in
    energy to their predecessor, keeping both endpoints.
    """
    ranked = sorted(
        evaluations, key=lambda e: (e.energy_pj, e.peak_ppm, _point_key(e))
    )
    frontier: List[MappingEvaluation] = []
    best_wear = float("inf")
    for candidate in ranked:
        if candidate.peak_ppm < best_wear:
            frontier.append(candidate)
            best_wear = candidate.peak_ppm
    if max_points is not None and max_points >= 2:
        while len(frontier) > max_points:
            gaps = [
                frontier[i].energy_pj - frontier[i - 1].energy_pj
                for i in range(1, len(frontier) - 1)
            ]
            frontier.pop(1 + gaps.index(min(gaps)))
    return tuple(frontier)


def _grown_evaluations(
    space: MappingSpace, evaluator: MappingEvaluator, accelerator, options
) -> List[Tuple[Mapping, MappingEvaluation]]:
    """(skeleton, grown evaluation) per skeleton, greedy-grown."""
    grown: List[Tuple[Mapping, MappingEvaluation]] = []
    for skeleton in space.skeletons():
        try:
            mapping = grow_temporal_greedy(accelerator, options, skeleton)
        except MappingError:
            continue
        grown.append((skeleton, evaluator.evaluate(mapping)))
    return grown


def search_layer(accelerator, layer: LayerShape, options) -> LayerSearchResult:
    """Search one layer's mapping space under ``options``.

    ``options`` is a :class:`~repro.dataflow.scheduler.SchedulerOptions`
    (duck-typed: ``search``, ``beam_width``, ``objective``, and the
    space-shaping fields are read). Raises :class:`MappingError` when no
    legal mapping exists.
    """
    evaluator = MappingEvaluator(accelerator)
    space = MappingSpace(accelerator, layer, options)
    objective = options.objective
    mode = options.search
    stats = SpaceStats()

    pool: List[MappingEvaluation]
    if mode == "greedy":
        grown = _grown_evaluations(space, evaluator, accelerator, options)
        stats.skeletons = len(grown)
        stats.generated = len(grown)
        pool = [evaluation for _, evaluation in grown]
    elif mode == "exhaustive":
        pool = [
            evaluator.evaluate(point.mapping)
            for point in space.points(stats=stats)
        ]
    elif mode == "beam":
        grown = _grown_evaluations(space, evaluator, accelerator, options)
        ranked = sorted(
            grown,
            key=lambda pair: (pair[1].score(objective), _point_key(pair[1])),
        )
        survivors = ranked[: max(1, int(options.beam_width))]
        pool = [evaluation for _, evaluation in grown]
        for skeleton, _ in survivors:
            stats.skeletons += 1
            pool.extend(
                evaluator.evaluate(point.mapping)
                for point in space.temporal_points(
                    skeleton, stats=stats, max_rungs=BEAM_TEMPORAL_RUNGS
                )
            )
    else:
        raise MappingError(
            f"unknown search mode {mode!r}; choose from {SEARCH_MODES}"
        )

    if not pool:
        raise MappingError(
            f"no legal mapping for layer {layer.name!r} "
            f"({layer.describe()}) on {accelerator.name}"
        )
    # Deduplicate by canonical point key: beam pools contain the grown
    # points twice (once from growth, once from enumeration).
    unique: Dict[Tuple, MappingEvaluation] = {}
    for evaluation in pool:
        unique.setdefault(_point_key(evaluation), evaluation)
    candidates = list(unique.values())
    return LayerSearchResult(
        layer=layer,
        objective=objective,
        search=mode,
        best=_best_of(candidates, objective),
        pareto=pareto_front(candidates),
        stats=SearchStats(
            skeletons=stats.skeletons,
            generated=stats.generated,
            evaluated=len(candidates),
            pruned=stats.pruned,
        ),
    )


# ----------------------------------------------------------------------
# Network-level fan-out (parallel per-layer search, memoized)
# ----------------------------------------------------------------------
def search_key(accelerator, layer: LayerShape, options) -> str:
    """Persistent-cache key of one layer search."""
    from repro.runtime import (
        CACHE_SCHEMA_VERSION,
        accelerator_fingerprint,
        content_hash,
    )

    return content_hash(
        "mapping-search",
        CACHE_SCHEMA_VERSION,
        accelerator_fingerprint(accelerator),
        options,
        layer_signature(layer),
    )


def _search_task(spec: Tuple) -> LayerSearchResult:
    """Search one layer (module-level for pickling)."""
    accelerator, layer, options = spec
    return search_layer(accelerator, layer, options)


def search_network(
    accelerator,
    layers: Sequence[LayerShape],
    options,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[Tuple, LayerSearchResult]:
    """Search every distinct layer shape of a network.

    Layers sharing a :func:`~repro.dataflow.space.layer_signature` share
    one search (the result carries the first-seen layer). Misses of the
    persistent result cache fan out over a
    :class:`~repro.runtime.parallel.ParallelRunner`; serial and parallel
    runs return identical results. Returns ``{signature: result}``.
    """
    from repro.runtime import ParallelRunner, result_cache

    store = result_cache() if cache is None else cache
    distinct: Dict[Tuple, LayerShape] = {}
    for layer in layers:
        distinct.setdefault(layer_signature(layer), layer)
    results: Dict[Tuple, LayerSearchResult] = {}
    pending: List[Tuple[Tuple, LayerShape, str]] = []
    for signature, layer in distinct.items():
        key = search_key(accelerator, layer, options)
        hit = store.get(key)
        if isinstance(hit, LayerSearchResult):
            results[signature] = hit
        else:
            pending.append((signature, layer, key))
    if pending:
        runner = ParallelRunner(jobs)
        specs = [(accelerator, layer, options) for _, layer, _ in pending]
        fresh = runner.map(
            _search_task, specs, labels=[layer.name for _, layer, _ in pending]
        )
        for (signature, _, key), result in zip(pending, fresh):
            results[signature] = result
            store.put(key, result)
    return {signature: results[signature] for signature in distinct}
