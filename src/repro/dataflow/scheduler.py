"""Layer scheduling: search the mapping space, return a :class:`Schedule`.

The paper feeds its wear-leveling study with per-layer utilization spaces
"obtained from NeuroSpector [15] for energy-optimal execution". This
module reproduces that role as the orchestration layer of a three-part
subsystem:

* :mod:`repro.dataflow.space` — the declarative mapping space (spatial
  skeletons x divisor-lattice temporal factorizations, with legality
  predicates);
* :mod:`repro.dataflow.evaluate` — multi-objective pricing (energy,
  latency, EDP, and the wear profile of the mapping's utilization-space
  walk);
* :mod:`repro.dataflow.search` — greedy / exhaustive / beam engines
  over that space, returning best points and Pareto frontiers.

The :class:`Scheduler` here picks the search mode from
:class:`SchedulerOptions`, caches results (in-process and on disk), and
packages the winning mapping as the :class:`Schedule` artifact the
wear-leveling engine consumes. ``search="greedy"`` reproduces the
pre-refactor scheduler byte-identically (golden-tested).

Spatial factors are restricted to exact divisors of the loop extents by
default — the factorization discipline of NeuroSpector/Timeloop-class
mappers — which is precisely what produces the dimensional mismatch
between utilization spaces and the 14x12 array that motivates the paper
(Fig. 2: 55.8% average PE utilization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.dataflow.cycles import CycleModel
from repro.dataflow.energy import EnergyBreakdown, EnergyModel
from repro.dataflow.evaluate import (
    OBJECTIVES,
    WEAR_OBJECTIVES,
    MappingEvaluator,
    objective_score,
)
from repro.dataflow.layer import LOOP_DIMS, LayerShape
from repro.dataflow.mapping import Mapping, SpatialAssignment
from repro.dataflow.space import (
    DATAFLOW_PRESETS,
    divisors,
    grow_temporal_greedy,
    iter_spatial_skeletons,
    layer_signature,
)
from repro.errors import MappingError

#: Selectable search modes (see :mod:`repro.dataflow.search`).
SEARCH_MODES = ("greedy", "exhaustive", "beam")

__all__ = [
    "DATAFLOW_PRESETS",
    "OBJECTIVES",
    "SEARCH_MODES",
    "Schedule",
    "Scheduler",
    "SchedulerOptions",
    "clear_schedule_cache",
    "divisors",
    "save_schedule_cache",
]


@dataclass(frozen=True)
class SchedulerOptions:
    """Knobs of the mapping search.

    Parameters
    ----------
    dataflow:
        Name of a preset in :data:`DATAFLOW_PRESETS` selecting which
        dimension pairs may be unrolled spatially.
    objective:
        One of :data:`~repro.dataflow.evaluate.OBJECTIVES`:
        ``"energy"`` (the paper's setup), ``"latency"`` (least-cycle),
        ``"edp"`` (energy-delay product), ``"wear"`` (flattest per-PE
        usage profile), or ``"energy-wear"`` (energy x peak-to-mean
        composite).
    allow_partial_spaces:
        When true, also consider spatial factors that cap at the array
        dimension without dividing the loop extent (edge tiles then run
        with a partially filled utilization space, which the usage model
        conservatively counts as full). Default false, matching
        divisor-based mappers.
    composite_spatial:
        When true, the search also co-maps a *second* loop dimension onto
        each array axis (e.g. ``K x C`` along the columns), as
        Timeloop-class mappers allow. Enlarges the search; off by
        default to match the paper's single-dimension-per-axis spaces.
    temporal_priority:
        Order in which per-PE temporal factors are greedily grown.
    search:
        ``"greedy"`` (the legacy single-point walk, the default),
        ``"exhaustive"`` (every legal divisor-lattice point), or
        ``"beam"`` (full factorization of the ``beam_width`` best
        skeletons).
    beam_width:
        Surviving spatial skeletons in ``search="beam"``.
    """

    dataflow: str = "flexible"
    objective: str = "energy"
    allow_partial_spaces: bool = False
    composite_spatial: bool = False
    temporal_priority: Tuple[str, ...] = ("C", "Q", "P", "K")
    search: str = "greedy"
    beam_width: int = 8

    def __post_init__(self) -> None:
        if self.dataflow not in DATAFLOW_PRESETS:
            raise MappingError(
                f"unknown dataflow preset {self.dataflow!r}; choose from "
                f"{sorted(DATAFLOW_PRESETS)}"
            )
        if self.objective not in OBJECTIVES:
            raise MappingError(
                f"unknown objective {self.objective!r}; choose from {OBJECTIVES}"
            )
        for dim in self.temporal_priority:
            if dim not in LOOP_DIMS:
                raise MappingError(f"unknown dimension {dim!r} in temporal priority")
        if self.search not in SEARCH_MODES:
            raise MappingError(
                f"unknown search mode {self.search!r}; choose from {SEARCH_MODES}"
            )
        if self.beam_width < 1:
            raise MappingError(
                f"beam width must be >= 1, got {self.beam_width}"
            )

    def score(
        self,
        energy_pj: float,
        cycles: int,
        active_pes: int,
        peak_ppm: Optional[float] = None,
    ) -> Tuple:
        """Comparable search score (lower is better) under this objective."""
        return objective_score(
            self.objective, energy_pj, cycles, active_pes, peak_ppm=peak_ppm
        )

    @property
    def spatial_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The spatial dimension pairs this option set explores."""
        return DATAFLOW_PRESETS[self.dataflow]


@dataclass(frozen=True)
class Schedule:
    """The search-optimal execution plan of one layer.

    This is the artifact the wear-leveling engine consumes: the
    utilization-space shape ``(x, y)`` and the data-tile count ``Z``,
    plus the diagnostics (energy, cycles, utilization) the evaluation
    figures report.
    """

    layer: LayerShape
    mapping: Mapping
    energy: EnergyBreakdown
    cycles: int
    array_width: int
    array_height: int

    @property
    def space_shape(self) -> Tuple[int, int]:
        """Utilization-space shape ``(x, y)``."""
        return self.mapping.space_shape

    @property
    def num_tiles(self) -> int:
        """The paper's ``Z`` for this layer."""
        return self.mapping.num_tiles

    @property
    def utilization(self) -> float:
        """Fraction of the PE array one tile activates: ``x*y / (w*h)``."""
        x, y = self.space_shape
        return (x * y) / (self.array_width * self.array_height)

    def describe(self) -> str:
        """One-line summary of the schedule."""
        x, y = self.space_shape
        return (
            f"{self.layer.name}: space {x}x{y} Z={self.num_tiles} "
            f"util={self.utilization:.1%} energy={self.energy.total_uj:.1f}uJ"
        )


# Module-level schedule cache: mapping search is deterministic, so results
# can be shared across engines, benches, and figure drivers. Keys use the
# layer's dimensional signature (not its name) so that, e.g., the 32
# identical decoder blocks of Llama 2 search the mapping space once.
_CACHE: Dict[Tuple, Schedule] = {}

#: On-disk schedule cache. Searches are deterministic but take ~100 ms per
#: distinct layer shape, so test/bench processes share results through a
#: JSON file. Disable by setting the environment variable
#: ``REPRO_SCHEDULE_CACHE=off``; relocate it with ``REPRO_CACHE_DIR``.
_DISK_CACHE: Optional[Dict[str, dict]] = None
_DISK_CACHE_DIRTY = False


def _disk_cache_path():
    import os
    from pathlib import Path

    if os.environ.get("REPRO_SCHEDULE_CACHE", "").lower() == "off":
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root) / "schedules.json"
    return Path.home() / ".cache" / "repro" / "schedules.json"


def _load_disk_cache() -> Dict[str, dict]:
    global _DISK_CACHE
    if _DISK_CACHE is None:
        import atexit

        _DISK_CACHE = {}
        atexit.register(save_schedule_cache)
        path = _disk_cache_path()
        if path is not None and path.exists():
            import json

            try:
                _DISK_CACHE = json.loads(path.read_text())
            except (OSError, ValueError):
                _DISK_CACHE = {}
    return _DISK_CACHE


def save_schedule_cache() -> None:
    """Flush newly computed schedules to the on-disk cache (best effort).

    Merges with whatever is on disk first, so concurrent worker
    processes (a parallel Fig. 8 sweep scheduling different networks)
    accumulate entries instead of overwriting each other's.
    """
    global _DISK_CACHE_DIRTY
    if not _DISK_CACHE_DIRTY or _DISK_CACHE is None:
        return
    path = _disk_cache_path()
    if path is None:
        return
    import json

    try:
        merged: Dict[str, dict] = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (OSError, ValueError):
                merged = {}
        merged.update(_DISK_CACHE)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a worker killed mid-flush (chaos crash, OOM)
        # must never leave a torn JSON file that silently drops every
        # schedule cached so far.
        from repro.resilience import atomic_write_text

        atomic_write_text(path, json.dumps(merged))
        _DISK_CACHE_DIRTY = False
    except OSError:
        pass


def clear_schedule_cache() -> None:
    """Drop all in-memory cached schedules (mainly for tests)."""
    _CACHE.clear()


class Scheduler:
    """Searches the mapping space of layers on one accelerator."""

    def __init__(
        self, accelerator: Accelerator, options: SchedulerOptions = SchedulerOptions()
    ) -> None:
        self._accelerator = accelerator
        self._options = options
        self._energy_model = EnergyModel(accelerator)
        self._cycle_model = CycleModel(accelerator)

    @property
    def accelerator(self) -> Accelerator:
        """The accelerator layers are scheduled onto."""
        return self._accelerator

    @property
    def options(self) -> SchedulerOptions:
        """The active search options."""
        return self._options

    # ------------------------------------------------------------------
    # Candidate generation (delegated to repro.dataflow.space)
    # ------------------------------------------------------------------
    def _candidate_mappings(self, layer: LayerShape) -> Iterable[Mapping]:
        """Yield every buffer-legal greedily grown candidate of a layer.

        One candidate per spatial skeleton, grown with the legacy greedy
        temporal walk — the ``search="greedy"`` candidate set, in the
        exact enumeration order the pre-refactor goldens pin.
        """
        for base in iter_spatial_skeletons(self._accelerator, self._options, layer):
            try:
                yield grow_temporal_greedy(self._accelerator, self._options, base)
            except MappingError:
                continue

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _signature(self, layer: LayerShape) -> Tuple:
        """Everything but the layer name: identical shapes share schedules."""
        return layer_signature(layer)

    def _cache_key(self, layer: LayerShape) -> Tuple:
        array = self._accelerator.array
        return (
            array.width,
            array.height,
            array.pe,
            self._accelerator.glb,
            self._accelerator.dram,
            self._options,
            self._signature(layer),
        )

    def _retarget(self, schedule: Schedule, layer: LayerShape) -> Schedule:
        """Rebind a cached schedule to a same-shaped layer instance."""
        if schedule.layer == layer:
            return schedule
        from dataclasses import replace

        mapping = Mapping(
            layer=layer,
            spatial_x=schedule.mapping.spatial_x,
            spatial_y=schedule.mapping.spatial_y,
            pe_temporal=dict(schedule.mapping.pe_temporal),
            glb_temporal=dict(schedule.mapping.glb_temporal),
            spatial_x2=schedule.mapping.spatial_x2,
            spatial_y2=schedule.mapping.spatial_y2,
        )
        return replace(schedule, layer=layer, mapping=mapping)

    def _build_schedule(self, layer: LayerShape, mapping: Mapping) -> Schedule:
        return Schedule(
            layer=layer,
            mapping=mapping,
            energy=self._energy_model.evaluate(mapping),
            cycles=self._cycle_model.layer_cycles(mapping),
            array_width=self._accelerator.width,
            array_height=self._accelerator.height,
        )

    def _disk_key(self, layer: LayerShape) -> str:
        # Content-addressed (repro.runtime.fingerprint) rather than
        # repr-based: stable across processes and Python versions, and
        # immune to dataclass repr-format drift.
        from repro.runtime.fingerprint import content_hash

        return content_hash("schedule", self._cache_key(layer))

    def _from_disk(self, layer: LayerShape) -> Optional[Schedule]:
        entry = _load_disk_cache().get(self._disk_key(layer))
        if entry is None:
            return None
        def secondary(key_dim, key_factor):
            if entry.get(key_dim) is None:
                return None
            return SpatialAssignment(entry[key_dim], int(entry[key_factor]))

        try:
            mapping = Mapping(
                layer=layer,
                spatial_x=SpatialAssignment(entry["dim_x"], int(entry["fx"])),
                spatial_y=SpatialAssignment(entry["dim_y"], int(entry["fy"])),
                pe_temporal={d: int(f) for d, f in entry["pe_temporal"].items()},
                glb_temporal={d: int(f) for d, f in entry["glb_temporal"].items()},
                spatial_x2=secondary("dim_x2", "fx2"),
                spatial_y2=secondary("dim_y2", "fy2"),
            )
        except (KeyError, TypeError, MappingError):
            return None
        return self._build_schedule(layer, mapping)

    def _to_disk(self, layer: LayerShape, schedule: Schedule) -> None:
        global _DISK_CACHE_DIRTY
        mapping = schedule.mapping
        _load_disk_cache()[self._disk_key(layer)] = {
            "dim_x": mapping.spatial_x.dim,
            "fx": mapping.spatial_x.factor,
            "dim_y": mapping.spatial_y.dim,
            "fy": mapping.spatial_y.factor,
            "pe_temporal": dict(mapping.pe_temporal),
            "glb_temporal": dict(mapping.glb_temporal),
            "dim_x2": mapping.spatial_x2.dim if mapping.spatial_x2 else None,
            "fx2": mapping.spatial_x2.factor if mapping.spatial_x2 else None,
            "dim_y2": mapping.spatial_y2.dim if mapping.spatial_y2 else None,
            "fy2": mapping.spatial_y2.factor if mapping.spatial_y2 else None,
        }
        _DISK_CACHE_DIRTY = True

    def _search_best(self, layer: LayerShape) -> Schedule:
        """Delegate to the search engine (exhaustive / beam modes)."""
        from repro.dataflow.search import search_layer

        result = search_layer(self._accelerator, layer, self._options)
        return self._build_schedule(layer, result.best.mapping)

    def _greedy_best(self, layer: LayerShape) -> Schedule:
        """The legacy greedy walk: one grown candidate per skeleton.

        Byte-identical to the pre-refactor scheduler for the legacy
        objectives; wear objectives additionally price each candidate's
        wear profile (memoized per utilization-space geometry).
        """
        wear_evaluator: Optional[MappingEvaluator] = None
        if self._options.objective in WEAR_OBJECTIVES:
            wear_evaluator = MappingEvaluator(self._accelerator)
        best: Optional[Tuple[Tuple, Schedule]] = None
        for mapping in self._candidate_mappings(layer):
            energy = self._energy_model.evaluate(mapping)
            cycles = self._cycle_model.layer_cycles(mapping)
            x, y = mapping.space_shape
            peak_ppm = (
                wear_evaluator.wear_of(mapping).peak_ppm
                if wear_evaluator is not None
                else None
            )
            score = self._options.score(
                energy.total_pj, cycles, x * y, peak_ppm=peak_ppm
            )
            if best is None or score < best[0]:
                schedule = Schedule(
                    layer=layer,
                    mapping=mapping,
                    energy=energy,
                    cycles=cycles,
                    array_width=self._accelerator.width,
                    array_height=self._accelerator.height,
                )
                best = (score, schedule)
        if best is None:
            raise MappingError(
                f"no legal mapping found for layer {layer.name!r} on "
                f"{self._accelerator.name}"
            )
        return best[1]

    def schedule_layer(self, layer: LayerShape) -> Schedule:
        """Find the search-optimal schedule of one layer.

        Raises :class:`MappingError` if no candidate mapping fits the
        accelerator's buffers.
        """
        key = self._cache_key(layer)
        cached = _CACHE.get(key)
        if cached is not None:
            return self._retarget(cached, layer)

        from_disk = self._from_disk(layer)
        if from_disk is not None:
            _CACHE[key] = from_disk
            return from_disk

        if self._options.search == "greedy":
            schedule = self._greedy_best(layer)
        else:
            schedule = self._search_best(layer)
        _CACHE[key] = schedule
        self._to_disk(layer, schedule)
        return schedule

    def schedule_network(self, layers: Sequence[LayerShape]) -> List[Schedule]:
        """Schedule every layer of a network in order."""
        schedules = [self.schedule_layer(layer) for layer in layers]
        save_schedule_cache()
        return schedules

    def schedule_layer_pareto(
        self, layer: LayerShape, max_points: int = 16
    ) -> List[Schedule]:
        """The energy/latency Pareto frontier of one layer's mappings.

        Returns non-dominated schedules sorted by energy ascending (so
        latency descends along the list), truncated to ``max_points`` by
        thinning interior points. Useful for design-space exploration
        where the single-objective optimum is not the whole story.

        Candidates come from the greedy walk (one per skeleton); the
        energy/wear frontier of the *full* space is
        :func:`repro.dataflow.search.search_layer`'s ``pareto``.

        Not cached: the frontier is an exploration tool, not part of the
        reproduction pipeline.
        """
        if max_points < 1:
            raise MappingError(f"max_points must be >= 1, got {max_points}")
        candidates: List[Schedule] = []
        for mapping in self._candidate_mappings(layer):
            energy = self._energy_model.evaluate(mapping)
            cycles = self._cycle_model.layer_cycles(mapping)
            candidates.append(
                Schedule(
                    layer=layer,
                    mapping=mapping,
                    energy=energy,
                    cycles=cycles,
                    array_width=self._accelerator.width,
                    array_height=self._accelerator.height,
                )
            )
        if not candidates:
            raise MappingError(
                f"no legal mapping found for layer {layer.name!r} on "
                f"{self._accelerator.name}"
            )
        candidates.sort(key=lambda s: (s.energy.total_pj, s.cycles))
        frontier: List[Schedule] = []
        best_cycles = None
        for schedule in candidates:
            if best_cycles is None or schedule.cycles < best_cycles:
                frontier.append(schedule)
                best_cycles = schedule.cycles
        if len(frontier) > max_points:
            # Keep both endpoints, thin the interior evenly.
            step = (len(frontier) - 1) / (max_points - 1)
            indices = sorted({round(i * step) for i in range(max_points)})
            frontier = [frontier[i] for i in indices]
        return frontier
