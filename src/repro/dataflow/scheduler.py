"""Mapping-space search: the NeuroSpector-style scheduling optimizer.

The paper feeds its wear-leveling study with per-layer utilization spaces
"obtained from NeuroSpector [15] for energy-optimal execution". This
module reproduces that role: for each layer it enumerates legal mappings
(spatial dimension pair x spatial factors, with greedily grown per-PE
temporal factors), prices each with :class:`~repro.dataflow.energy.
EnergyModel`, and returns the cheapest as a :class:`Schedule`.

Spatial factors are restricted to exact divisors of the loop extents by
default — the factorization discipline of NeuroSpector/Timeloop-class
mappers — which is precisely what produces the dimensional mismatch
between utilization spaces and the 14x12 array that motivates the paper
(Fig. 2: 55.8% average PE utilization).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.dataflow.cycles import CycleModel
from repro.dataflow.energy import EnergyBreakdown, EnergyModel
from repro.dataflow.layer import LOOP_DIMS, LayerShape
from repro.dataflow.mapping import Mapping, SpatialAssignment
from repro.errors import MappingError

#: Named spatial-dimension-pair presets. ``(x_dim, y_dim)`` tuples: the
#: first unrolls along the array's horizontal axis, the second vertically.
DATAFLOW_PRESETS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    # Search every ordered pair of distinct dimensions (NeuroSpector-like).
    "flexible": tuple(
        (dx, dy) for dx, dy in itertools.permutations(LOOP_DIMS, 2)
    ),
    # Output pixels stationary in the array (SCALE-Sim "os").
    "output_stationary": (("Q", "P"), ("P", "Q")),
    # Filters x channels in the array (SCALE-Sim "ws").
    "weight_stationary": (("K", "C"), ("C", "K")),
    # Eyeriss row-stationary flavor: ofmap rows x filter rows.
    "row_stationary": (("P", "R"), ("Q", "R")),
}


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise MappingError(f"divisors() needs a positive integer, got {n}")
    small, large = [], []
    for candidate in range(1, int(math.isqrt(n)) + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return small + large[::-1]


#: Search objectives: what "optimal" means. The paper's setup is
#: energy-optimal (NeuroSpector's default); least-cycle and
#: energy-delay-product objectives are also cited by its Section II.
OBJECTIVES = ("energy", "latency", "edp")


@dataclass(frozen=True)
class SchedulerOptions:
    """Knobs of the mapping search.

    Parameters
    ----------
    dataflow:
        Name of a preset in :data:`DATAFLOW_PRESETS` selecting which
        dimension pairs may be unrolled spatially.
    objective:
        ``"energy"`` (the paper's setup), ``"latency"`` (least-cycle), or
        ``"edp"`` (energy-delay product).
    allow_partial_spaces:
        When true, also consider spatial factors that cap at the array
        dimension without dividing the loop extent (edge tiles then run
        with a partially filled utilization space, which the usage model
        conservatively counts as full). Default false, matching
        divisor-based mappers.
    composite_spatial:
        When true, the search also co-maps a *second* loop dimension onto
        each array axis (e.g. ``K x C`` along the columns), as
        Timeloop-class mappers allow. Enlarges the search; off by
        default to match the paper's single-dimension-per-axis spaces.
    temporal_priority:
        Order in which per-PE temporal factors are greedily grown.
    """

    dataflow: str = "flexible"
    objective: str = "energy"
    allow_partial_spaces: bool = False
    composite_spatial: bool = False
    temporal_priority: Tuple[str, ...] = ("C", "Q", "P", "K")

    def __post_init__(self) -> None:
        if self.dataflow not in DATAFLOW_PRESETS:
            raise MappingError(
                f"unknown dataflow preset {self.dataflow!r}; choose from "
                f"{sorted(DATAFLOW_PRESETS)}"
            )
        if self.objective not in OBJECTIVES:
            raise MappingError(
                f"unknown objective {self.objective!r}; choose from {OBJECTIVES}"
            )
        for dim in self.temporal_priority:
            if dim not in LOOP_DIMS:
                raise MappingError(f"unknown dimension {dim!r} in temporal priority")

    def score(self, energy_pj: float, cycles: int, active_pes: int) -> Tuple:
        """Comparable search score (lower is better) under this objective."""
        if self.objective == "latency":
            return (cycles, energy_pj, -active_pes)
        if self.objective == "edp":
            return (energy_pj * cycles, cycles, -active_pes)
        return (energy_pj, cycles, -active_pes)

    @property
    def spatial_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The spatial dimension pairs this option set explores."""
        return DATAFLOW_PRESETS[self.dataflow]


@dataclass(frozen=True)
class Schedule:
    """The energy-optimal execution plan of one layer.

    This is the artifact the wear-leveling engine consumes: the
    utilization-space shape ``(x, y)`` and the data-tile count ``Z``,
    plus the diagnostics (energy, cycles, utilization) the evaluation
    figures report.
    """

    layer: LayerShape
    mapping: Mapping
    energy: EnergyBreakdown
    cycles: int
    array_width: int
    array_height: int

    @property
    def space_shape(self) -> Tuple[int, int]:
        """Utilization-space shape ``(x, y)``."""
        return self.mapping.space_shape

    @property
    def num_tiles(self) -> int:
        """The paper's ``Z`` for this layer."""
        return self.mapping.num_tiles

    @property
    def utilization(self) -> float:
        """Fraction of the PE array one tile activates: ``x*y / (w*h)``."""
        x, y = self.space_shape
        return (x * y) / (self.array_width * self.array_height)

    def describe(self) -> str:
        """One-line summary of the schedule."""
        x, y = self.space_shape
        return (
            f"{self.layer.name}: space {x}x{y} Z={self.num_tiles} "
            f"util={self.utilization:.1%} energy={self.energy.total_uj:.1f}uJ"
        )


# Module-level schedule cache: mapping search is deterministic, so results
# can be shared across engines, benches, and figure drivers. Keys use the
# layer's dimensional signature (not its name) so that, e.g., the 32
# identical decoder blocks of Llama 2 search the mapping space once.
_CACHE: Dict[Tuple, Schedule] = {}

#: On-disk schedule cache. Searches are deterministic but take ~100 ms per
#: distinct layer shape, so test/bench processes share results through a
#: JSON file. Disable by setting the environment variable
#: ``REPRO_SCHEDULE_CACHE=off``; relocate it with ``REPRO_CACHE_DIR``.
_DISK_CACHE: Optional[Dict[str, dict]] = None
_DISK_CACHE_DIRTY = False


def _disk_cache_path():
    import os
    from pathlib import Path

    if os.environ.get("REPRO_SCHEDULE_CACHE", "").lower() == "off":
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root) / "schedules.json"
    return Path.home() / ".cache" / "repro" / "schedules.json"


def _load_disk_cache() -> Dict[str, dict]:
    global _DISK_CACHE
    if _DISK_CACHE is None:
        import atexit

        _DISK_CACHE = {}
        atexit.register(save_schedule_cache)
        path = _disk_cache_path()
        if path is not None and path.exists():
            import json

            try:
                _DISK_CACHE = json.loads(path.read_text())
            except (OSError, ValueError):
                _DISK_CACHE = {}
    return _DISK_CACHE


def save_schedule_cache() -> None:
    """Flush newly computed schedules to the on-disk cache (best effort).

    Merges with whatever is on disk first, so concurrent worker
    processes (a parallel Fig. 8 sweep scheduling different networks)
    accumulate entries instead of overwriting each other's.
    """
    global _DISK_CACHE_DIRTY
    if not _DISK_CACHE_DIRTY or _DISK_CACHE is None:
        return
    path = _disk_cache_path()
    if path is None:
        return
    import json

    try:
        merged: Dict[str, dict] = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (OSError, ValueError):
                merged = {}
        merged.update(_DISK_CACHE)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a worker killed mid-flush (chaos crash, OOM)
        # must never leave a torn JSON file that silently drops every
        # schedule cached so far.
        from repro.resilience import atomic_write_text

        atomic_write_text(path, json.dumps(merged))
        _DISK_CACHE_DIRTY = False
    except OSError:
        pass


def clear_schedule_cache() -> None:
    """Drop all in-memory cached schedules (mainly for tests)."""
    _CACHE.clear()


class Scheduler:
    """Searches the mapping space of layers on one accelerator."""

    def __init__(
        self, accelerator: Accelerator, options: SchedulerOptions = SchedulerOptions()
    ) -> None:
        self._accelerator = accelerator
        self._options = options
        self._energy_model = EnergyModel(accelerator)
        self._cycle_model = CycleModel(accelerator)

    @property
    def accelerator(self) -> Accelerator:
        """The accelerator layers are scheduled onto."""
        return self._accelerator

    @property
    def options(self) -> SchedulerOptions:
        """The active search options."""
        return self._options

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _spatial_factor_candidates(self, extent: int, limit: int) -> List[int]:
        """Legal spatial factors for a loop extent on an axis of ``limit`` PEs."""
        candidates = [d for d in divisors(extent) if d <= limit]
        if self._options.allow_partial_spaces:
            cap = min(extent, limit)
            if cap not in candidates:
                candidates.append(cap)
        return candidates

    def _grow_temporal(self, base: Mapping) -> Mapping:
        """Greedily grow the temporal levels of a spatial skeleton.

        First the per-PE factors (bounded by the local buffers), then the
        GLB factors (bounded by half the GLB, for double buffering). Both
        levels grow dimensions in the configured priority order, largest
        fitting divisor first — the standard greedy of factorization
        mappers.
        """
        layer = base.layer
        buffers = self._accelerator.array.pe.local_buffers
        glb_limit = self._accelerator.glb.capacity_bytes // 2  # double buffer
        sizes = layer.dim_sizes()
        pe_temporal = dict(base.pe_temporal)
        glb_temporal = dict(base.glb_temporal)

        def build() -> Mapping:
            return Mapping(
                layer=layer,
                spatial_x=base.spatial_x,
                spatial_y=base.spatial_y,
                pe_temporal=pe_temporal,
                glb_temporal=glb_temporal,
                spatial_x2=base.spatial_x2,
                spatial_y2=base.spatial_y2,
            )

        def fits(mapping: Mapping) -> bool:
            return (
                not mapping.violates_local_buffers(buffers)
                and mapping.tile_bytes() <= glb_limit
            )

        current = build()
        if not fits(current):
            raise MappingError("base mapping does not fit the buffers")

        # Level 1: per-PE factors under the local-buffer budget.
        for dim in self._options.temporal_priority:
            quotient = sizes[dim] // current.pass_extent(dim)
            if quotient <= 1:
                continue
            base_factor = pe_temporal.get(dim, 1)
            for factor in reversed(divisors(quotient)):
                if factor == 1:
                    break
                pe_temporal[dim] = base_factor * factor
                candidate = build()
                if fits(candidate):
                    current = candidate
                    break
                pe_temporal[dim] = base_factor

        # Level 2: GLB factors (array passes per data tile) under the GLB
        # budget — this is what pushes Z down to the tens-to-hundreds the
        # paper reports per layer.
        for dim in self._options.temporal_priority:
            quotient = sizes[dim] // current.tile_extent(dim)
            if quotient <= 1:
                continue
            for factor in reversed(divisors(quotient)):
                if factor == 1:
                    break
                glb_temporal[dim] = factor
                candidate = build()
                if fits(candidate):
                    current = candidate
                    break
                glb_temporal.pop(dim, None)
        return current

    def _candidate_mappings(self, layer: LayerShape) -> Iterable[Mapping]:
        """Yield every buffer-legal candidate mapping of a layer."""
        sizes = layer.dim_sizes()
        width = self._accelerator.width
        height = self._accelerator.height
        seen: set = set()
        for dim_x, dim_y in self._options.spatial_pairs:
            # R and S must stay fully covered by each tile, so a spatial
            # factor on them must divide exactly even in partial mode.
            fx_candidates = [
                f
                for f in self._spatial_factor_candidates(sizes[dim_x], width)
                if dim_x not in ("R", "S") or sizes[dim_x] % f == 0
            ]
            fy_candidates = [
                f
                for f in self._spatial_factor_candidates(sizes[dim_y], height)
                if dim_y not in ("R", "S") or sizes[dim_y] % f == 0
            ]
            for fx in fx_candidates:
                for fy in fy_candidates:
                    key = (dim_x, fx, dim_y, fy)
                    if key in seen:
                        continue
                    seen.add(key)
                    temporal = {}
                    if dim_x != "R" and dim_y != "R" and layer.R > 1:
                        temporal["R"] = layer.R
                    elif dim_x == "R":
                        temporal["R"] = layer.R // fx
                    elif dim_y == "R":
                        temporal["R"] = layer.R // fy
                    if dim_x != "S" and dim_y != "S" and layer.S > 1:
                        temporal["S"] = layer.S
                    elif dim_x == "S":
                        temporal["S"] = layer.S // fx
                    elif dim_y == "S":
                        temporal["S"] = layer.S // fy
                    temporal = {d: f for d, f in temporal.items() if f > 1}
                    for x2, y2 in self._secondary_assignments(
                        layer, dim_x, fx, dim_y, fy
                    ):
                        try:
                            base = Mapping(
                                layer=layer,
                                spatial_x=SpatialAssignment(dim_x, fx),
                                spatial_y=SpatialAssignment(dim_y, fy),
                                pe_temporal=temporal,
                                spatial_x2=x2,
                                spatial_y2=y2,
                            )
                            yield self._grow_temporal(base)
                        except MappingError:
                            continue

    def _secondary_assignments(
        self, layer: LayerShape, dim_x: str, fx: int, dim_y: str, fy: int
    ):
        """Secondary per-axis spatial options (composite mode).

        Always yields the plain ``(None, None)`` single-dimension case;
        with ``composite_spatial`` enabled, additionally yields co-mapped
        secondaries from the non-kernel dimensions, using the few largest
        divisors that still fit the axis.
        """
        yield (None, None)
        if not self._options.composite_spatial:
            return
        sizes = layer.dim_sizes()
        used = {dim_x, dim_y}
        candidate_dims = [d for d in ("K", "C", "P", "Q") if d not in used]

        def axis_options(limit: int, base_factor: int):
            options = []
            for dim in candidate_dims:
                room = limit // base_factor
                factors = [
                    f
                    for f in divisors(sizes[dim])
                    if 1 < f <= room
                ][-2:]  # largest couple of divisors that fit
                options.extend(SpatialAssignment(dim, f) for f in factors)
            return options

        x_options = axis_options(self._accelerator.width, fx)
        y_options = axis_options(self._accelerator.height, fy)
        for x2 in x_options:
            yield (x2, None)
        for y2 in y_options:
            yield (None, y2)
        for x2 in x_options:
            for y2 in y_options:
                if x2.dim != y2.dim:
                    yield (x2, y2)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _signature(self, layer: LayerShape) -> Tuple:
        """Everything but the layer name: identical shapes share schedules."""
        return (
            layer.kind.value,
            layer.K,
            layer.C,
            layer.P,
            layer.Q,
            layer.R,
            layer.S,
            layer.stride,
        )

    def _cache_key(self, layer: LayerShape) -> Tuple:
        array = self._accelerator.array
        return (
            array.width,
            array.height,
            array.pe,
            self._accelerator.glb,
            self._accelerator.dram,
            self._options,
            self._signature(layer),
        )

    def _retarget(self, schedule: Schedule, layer: LayerShape) -> Schedule:
        """Rebind a cached schedule to a same-shaped layer instance."""
        if schedule.layer == layer:
            return schedule
        from dataclasses import replace

        mapping = Mapping(
            layer=layer,
            spatial_x=schedule.mapping.spatial_x,
            spatial_y=schedule.mapping.spatial_y,
            pe_temporal=dict(schedule.mapping.pe_temporal),
            glb_temporal=dict(schedule.mapping.glb_temporal),
            spatial_x2=schedule.mapping.spatial_x2,
            spatial_y2=schedule.mapping.spatial_y2,
        )
        return replace(schedule, layer=layer, mapping=mapping)

    def _build_schedule(self, layer: LayerShape, mapping: Mapping) -> Schedule:
        return Schedule(
            layer=layer,
            mapping=mapping,
            energy=self._energy_model.evaluate(mapping),
            cycles=self._cycle_model.layer_cycles(mapping),
            array_width=self._accelerator.width,
            array_height=self._accelerator.height,
        )

    def _disk_key(self, layer: LayerShape) -> str:
        # Content-addressed (repro.runtime.fingerprint) rather than
        # repr-based: stable across processes and Python versions, and
        # immune to dataclass repr-format drift.
        from repro.runtime.fingerprint import content_hash

        return content_hash("schedule", self._cache_key(layer))

    def _from_disk(self, layer: LayerShape) -> Optional[Schedule]:
        entry = _load_disk_cache().get(self._disk_key(layer))
        if entry is None:
            return None
        def secondary(key_dim, key_factor):
            if entry.get(key_dim) is None:
                return None
            return SpatialAssignment(entry[key_dim], int(entry[key_factor]))

        try:
            mapping = Mapping(
                layer=layer,
                spatial_x=SpatialAssignment(entry["dim_x"], int(entry["fx"])),
                spatial_y=SpatialAssignment(entry["dim_y"], int(entry["fy"])),
                pe_temporal={d: int(f) for d, f in entry["pe_temporal"].items()},
                glb_temporal={d: int(f) for d, f in entry["glb_temporal"].items()},
                spatial_x2=secondary("dim_x2", "fx2"),
                spatial_y2=secondary("dim_y2", "fy2"),
            )
        except (KeyError, TypeError, MappingError):
            return None
        return self._build_schedule(layer, mapping)

    def _to_disk(self, layer: LayerShape, schedule: Schedule) -> None:
        global _DISK_CACHE_DIRTY
        mapping = schedule.mapping
        _load_disk_cache()[self._disk_key(layer)] = {
            "dim_x": mapping.spatial_x.dim,
            "fx": mapping.spatial_x.factor,
            "dim_y": mapping.spatial_y.dim,
            "fy": mapping.spatial_y.factor,
            "pe_temporal": dict(mapping.pe_temporal),
            "glb_temporal": dict(mapping.glb_temporal),
            "dim_x2": mapping.spatial_x2.dim if mapping.spatial_x2 else None,
            "fx2": mapping.spatial_x2.factor if mapping.spatial_x2 else None,
            "dim_y2": mapping.spatial_y2.dim if mapping.spatial_y2 else None,
            "fy2": mapping.spatial_y2.factor if mapping.spatial_y2 else None,
        }
        _DISK_CACHE_DIRTY = True

    def schedule_layer(self, layer: LayerShape) -> Schedule:
        """Find the energy-optimal schedule of one layer.

        Raises :class:`MappingError` if no candidate mapping fits the
        accelerator's buffers.
        """
        key = self._cache_key(layer)
        cached = _CACHE.get(key)
        if cached is not None:
            return self._retarget(cached, layer)

        from_disk = self._from_disk(layer)
        if from_disk is not None:
            _CACHE[key] = from_disk
            return from_disk

        best: Optional[Tuple[Tuple, Schedule]] = None
        for mapping in self._candidate_mappings(layer):
            energy = self._energy_model.evaluate(mapping)
            cycles = self._cycle_model.layer_cycles(mapping)
            x, y = mapping.space_shape
            score = self._options.score(energy.total_pj, cycles, x * y)
            if best is None or score < best[0]:
                schedule = Schedule(
                    layer=layer,
                    mapping=mapping,
                    energy=energy,
                    cycles=cycles,
                    array_width=self._accelerator.width,
                    array_height=self._accelerator.height,
                )
                best = (score, schedule)
        if best is None:
            raise MappingError(
                f"no legal mapping found for layer {layer.name!r} on "
                f"{self._accelerator.name}"
            )
        _CACHE[key] = best[1]
        self._to_disk(layer, best[1])
        return best[1]

    def schedule_network(self, layers: Sequence[LayerShape]) -> List[Schedule]:
        """Schedule every layer of a network in order."""
        schedules = [self.schedule_layer(layer) for layer in layers]
        save_schedule_cache()
        return schedules

    def schedule_layer_pareto(
        self, layer: LayerShape, max_points: int = 16
    ) -> List[Schedule]:
        """The energy/latency Pareto frontier of one layer's mappings.

        Returns non-dominated schedules sorted by energy ascending (so
        latency descends along the list), truncated to ``max_points`` by
        thinning interior points. Useful for design-space exploration
        where the single-objective optimum is not the whole story.

        Not cached: the frontier is an exploration tool, not part of the
        reproduction pipeline.
        """
        if max_points < 1:
            raise MappingError(f"max_points must be >= 1, got {max_points}")
        candidates: List[Schedule] = []
        for mapping in self._candidate_mappings(layer):
            energy = self._energy_model.evaluate(mapping)
            cycles = self._cycle_model.layer_cycles(mapping)
            candidates.append(
                Schedule(
                    layer=layer,
                    mapping=mapping,
                    energy=energy,
                    cycles=cycles,
                    array_width=self._accelerator.width,
                    array_height=self._accelerator.height,
                )
            )
        if not candidates:
            raise MappingError(
                f"no legal mapping found for layer {layer.name!r} on "
                f"{self._accelerator.name}"
            )
        candidates.sort(key=lambda s: (s.energy.total_pj, s.cycles))
        frontier: List[Schedule] = []
        best_cycles = None
        for schedule in candidates:
            if best_cycles is None or schedule.cycles < best_cycles:
                frontier.append(schedule)
                best_cycles = schedule.cycles
        if len(frontier) > max_points:
            # Keep both endpoints, thin the interior evenly.
            step = (len(frontier) - 1) / (max_points - 1)
            indices = sorted({round(i * step) for i in range(max_points)})
            frontier = [frontier[i] for i in indices]
        return frontier
