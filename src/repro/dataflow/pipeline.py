"""Discrete-event simulation of the tile pipeline.

The analytic cycle model (:mod:`repro.dataflow.cycles`) prices a layer
as ``serialized + (passes - 1) * steady_state`` under ideal double
buffering. This module *simulates* the same pipeline event by event —
a scatter engine, a compute array, and a gather engine, connected by
double buffers with real occupancy — so the closed form is validated
against an independent mechanism rather than itself, and so users can
explore non-ideal configurations (single buffering, slow NoCs) the
closed form does not cover.

The simulated pipeline:

* the **scatter engine** copies pass ``i``'s operands from the GLB into
  the array's shadow buffer; it can run ahead of compute by at most
  ``buffers - 1`` passes;
* the **compute array** processes pass ``i`` once its operands have
  landed and the previous compute finished, then spends ``drain``
  cycles pushing partial sums out of the PE columns;
* the **gather engine** writes pass ``i``'s outputs back to the GLB
  after compute+drain, overlapping later scatters/computes.

With ``buffers = 2`` the makespan converges to the analytic model's
pipelined bound; with ``buffers = 1`` every stage serializes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dataflow.cycles import CycleModel, TileCycles
from repro.dataflow.mapping import Mapping
from repro.errors import SimulationError


@dataclass(frozen=True)
class PassTimeline:
    """Start/finish times of one pass's three stages."""

    index: int
    scatter_start: int
    scatter_end: int
    compute_start: int
    compute_end: int
    gather_start: int
    gather_end: int

    def __post_init__(self) -> None:
        ordered = (
            self.scatter_start
            <= self.scatter_end
            <= self.compute_start
            <= self.compute_end
            <= self.gather_start
            <= self.gather_end
        )
        if not ordered:
            raise SimulationError(
                f"pass {self.index}: stage timeline out of order"
            )


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of a pipeline simulation."""

    makespan: int
    timelines: List[PassTimeline]

    @property
    def num_passes(self) -> int:
        """Simulated pass count."""
        return len(self.timelines)

    @property
    def compute_busy_cycles(self) -> int:
        """Total cycles the PE array spent computing (incl. drain)."""
        return sum(t.compute_end - t.compute_start for t in self.timelines)

    @property
    def compute_utilization(self) -> float:
        """Fraction of the makespan the array was busy."""
        if self.makespan == 0:
            return 0.0
        return self.compute_busy_cycles / self.makespan


class PipelineSimulator:
    """Event-driven tile pipeline for one layer mapping.

    Parameters
    ----------
    per_pass:
        The stage costs of one array pass (from
        :meth:`~repro.dataflow.cycles.CycleModel.pass_cycles`).
    buffers:
        Operand buffer depth. 2 = double buffering (the analytic model's
        assumption); 1 = fully serialized stages.
    shared_glb_port:
        True (default) models the accelerator's single scatter/gather
        bus: transfers in and out of the GLB serialize, which is what
        the analytic ``steady_state = max(compute+drain,
        scatter+gather)`` assumes. False gives independent scatter and
        gather engines (a dual-ported GLB) — strictly faster.
    """

    def __init__(
        self,
        per_pass: TileCycles,
        buffers: int = 2,
        shared_glb_port: bool = True,
    ) -> None:
        if buffers < 1:
            raise SimulationError(f"buffer depth must be >= 1, got {buffers}")
        self._per_pass = per_pass
        self._buffers = buffers
        self._shared_glb_port = shared_glb_port

    def simulate(self, num_passes: int) -> PipelineResult:
        """Run ``num_passes`` passes through the pipeline.

        With a shared GLB port, bus transfers (scatters and gathers) are
        arbitrated greedily: whenever the bus frees up, the transfer
        that can start earliest goes next, so a scatter for pass
        ``i + 1`` may legitimately overtake the not-yet-ready gather of
        pass ``i`` — exactly what a double-buffered controller does.
        """
        if num_passes < 1:
            raise SimulationError(f"need at least one pass, got {num_passes}")
        cost = self._per_pass
        compute_span = cost.compute + cost.drain

        scatter_start = [0] * num_passes
        scatter_end = [0] * num_passes
        compute_start = [0] * num_passes
        compute_end = [0] * num_passes
        gather_start = [0] * num_passes
        gather_end = [0] * num_passes

        if self._shared_glb_port:
            bus_free = 0
            next_scatter = 0
            next_gather = 0
            compute_free = 0
            while next_gather < num_passes:
                choices = []
                if next_scatter < num_passes:
                    slot_release = 0
                    if next_scatter >= self._buffers:
                        slot_release = compute_end[next_scatter - self._buffers]
                    choices.append(("scatter", max(bus_free, slot_release)))
                if next_gather < next_scatter:
                    # Its compute time is already known once scattered.
                    ready = compute_end[next_gather]
                    choices.append(("gather", max(bus_free, ready)))
                kind, start = min(choices, key=lambda item: item[1])
                if kind == "scatter":
                    index = next_scatter
                    scatter_start[index] = start
                    scatter_end[index] = start + cost.scatter
                    compute_start[index] = max(scatter_end[index], compute_free)
                    compute_end[index] = compute_start[index] + compute_span
                    compute_free = compute_end[index]
                    bus_free = scatter_end[index]
                    next_scatter += 1
                else:
                    index = next_gather
                    gather_start[index] = start
                    gather_end[index] = start + cost.gather
                    bus_free = gather_end[index]
                    next_gather += 1
        else:
            scatter_engine_free = 0
            compute_free = 0
            gather_engine_free = 0
            for index in range(num_passes):
                slot_release = 0
                if index >= self._buffers:
                    slot_release = compute_end[index - self._buffers]
                scatter_start[index] = max(scatter_engine_free, slot_release)
                scatter_end[index] = scatter_start[index] + cost.scatter
                scatter_engine_free = scatter_end[index]
                compute_start[index] = max(scatter_end[index], compute_free)
                compute_end[index] = compute_start[index] + compute_span
                compute_free = compute_end[index]
                gather_start[index] = max(compute_end[index], gather_engine_free)
                gather_end[index] = gather_start[index] + cost.gather
                gather_engine_free = gather_end[index]

        timelines = [
            PassTimeline(
                index=index,
                scatter_start=scatter_start[index],
                scatter_end=scatter_end[index],
                compute_start=compute_start[index],
                compute_end=compute_end[index],
                gather_start=gather_start[index],
                gather_end=gather_end[index],
            )
            for index in range(num_passes)
        ]
        makespan = max(gather_end)
        return PipelineResult(makespan=makespan, timelines=timelines)


def simulate_layer(
    cycle_model: CycleModel,
    mapping: Mapping,
    buffers: int = 2,
    max_passes: Optional[int] = 4096,
) -> PipelineResult:
    """Simulate a layer's pass pipeline.

    ``max_passes`` caps the simulated pass count for huge layers (the
    pipeline reaches steady state within a handful of passes; simulating
    millions adds nothing). Pass ``None`` to simulate every pass.
    """
    per_pass = cycle_model.pass_cycles(mapping)
    passes = mapping.num_passes
    if max_passes is not None:
        passes = min(passes, max_passes)
    return PipelineSimulator(per_pass, buffers=buffers).simulate(passes)


def validate_cycle_model(
    cycle_model: CycleModel, mapping: Mapping, tolerance: float = 0.02
) -> bool:
    """Check the analytic layer latency against the simulated pipeline.

    Returns True when the closed form upper-bounds the double-buffered
    simulation and is tight: within ``tolerance`` relatively, or within
    one pass's serialized cost absolutely (the pipeline-fill slack that
    dominates layers with very few passes).
    """
    per_pass = cycle_model.pass_cycles(mapping)
    passes = min(mapping.num_passes, 4096)
    simulated = PipelineSimulator(per_pass, buffers=2).simulate(passes).makespan
    analytic = per_pass.serialized + (passes - 1) * per_pass.steady_state
    if analytic < simulated:
        return False
    gap = analytic - simulated
    return gap / simulated <= tolerance or gap <= per_pass.serialized