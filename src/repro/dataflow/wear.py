"""Closed-form per-mapping wear profiles.

The wear objective needs, for every candidate mapping, the per-PE usage
counts its utilization space would accumulate over one inference — i.e.
the exact ledger the analytic engine produces for a single-layer stream
under the rotational policy, but computed directly from the mapping's
``(x, y, Z)`` geometry without instantiating streams or an engine:
:func:`repro.core.positions.grouped_positions` gives the distinct tile
starts with integer multiplicities in ``O(min(Z, w*h))``, and
:func:`repro.core.tracker.grouped_delta` scatters their wrapped
rectangles through a 2-D difference array. That closed form is what
makes wear cheap enough to price thousands of mappings per layer.

Two scalar metrics summarize a profile for scoring:

* ``peak_ppm`` — peak-to-mean usage ratio over the whole array
  (``>= 1.0``, lower is better; ``1.0`` is perfectly level wear);
* ``mttf_proxy`` — :func:`repro.reliability.lifetime.relative_lifetime`,
  the array MTTF under the Weibull series model relative to an ideally
  uniform spread of the same total work (``(0, 1]``, higher is better).

All imports of the core/reliability layers are deferred to call time:
``repro.core.engine`` imports ``repro.dataflow.tiling``, so a
module-level import here would complete an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WearProfile:
    """Scalar wear summary of one mapping on one array."""

    #: Utilization-space geometry the profile was computed for.
    x: int
    y: int
    num_tiles: int
    #: Peak-to-mean usage ratio (>= 1.0, lower is better).
    peak_ppm: float
    #: MTTF relative to an ideally uniform spread (in (0, 1], higher is
    #: better).
    mttf_proxy: float


def wear_counts(array, x: int, y: int, num_tiles: int):
    """Per-PE usage counts of one layer's rotational tile walk.

    Returns the ``(height, width)`` ``int64`` ledger of ``num_tiles``
    utilization spaces of shape ``x`` x ``y`` striding over ``array``
    from the origin — exactly what the wear-leveling engine's tracker
    accumulates for a single-layer stream under the rotational (RWL)
    policy, computed in closed form.
    """
    from repro.core.positions import grouped_positions
    from repro.core.tracker import grouped_delta

    if num_tiles < 1:
        raise ConfigurationError(
            f"wear profile needs at least one tile, got {num_tiles}"
        )
    us, vs, multiplicity, _ = grouped_positions(
        (0, 0), x, y, array.width, array.height, num_tiles
    )
    return grouped_delta(array, us, vs, multiplicity, x, y)


def peak_to_mean(counts) -> float:
    """Peak-to-mean usage ratio of a ledger (>= 1.0 whenever used)."""
    total = int(counts.sum())
    if total <= 0:
        raise ConfigurationError("wear ledger is empty; nothing to summarize")
    mean = total / counts.size
    return float(counts.max()) / mean


def mttf_proxy(counts) -> float:
    """Relative MTTF of a ledger vs an ideally uniform spread."""
    from repro.reliability.lifetime import relative_lifetime

    return relative_lifetime(counts)


def wear_profile(array, x: int, y: int, num_tiles: int) -> WearProfile:
    """The :class:`WearProfile` of one mapping geometry on ``array``."""
    counts = wear_counts(array, x, y, num_tiles)
    return WearProfile(
        x=x,
        y=y,
        num_tiles=num_tiles,
        peak_ppm=peak_to_mean(counts),
        mttf_proxy=mttf_proxy(counts),
    )


def profile_key(x: int, y: int, num_tiles: int) -> Tuple[int, int, int]:
    """Memoization key: profiles depend only on the space geometry."""
    return (x, y, num_tiles)
