"""Hierarchical access-count energy model (DRAM / GLB / LB / MAC).

This is the objective function of the NeuroSpector-style scheduler: given
a :class:`~repro.dataflow.mapping.Mapping` and an accelerator, count the
data movement at every level of the memory hierarchy and convert it to
picojoules. The model follows the standard reuse accounting used by
Timeloop/NeuroSpector-class tools, specialized to a three-level hierarchy
(DRAM -> GLB -> per-PE local buffers -> MAC):

* every MAC reads an input and a weight word from the local buffers and
  performs a read-modify-write of a partial sum;
* the GLB serves each data tile once: inputs + weights in, outputs out,
  plus partial-sum round trips when the reduction dimension ``C`` is split
  across tiles;
* DRAM streams each tensor once if the GLB can retain it across the loop
  nest, and once per relevant outer trip otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.dataflow.layer import WORD_BYTES, LayerKind
from repro.dataflow.mapping import Mapping


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-level energy of executing one layer under one mapping, in pJ."""

    mac_pj: float
    local_buffer_pj: float
    glb_pj: float
    noc_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        """Total layer energy."""
        return (
            self.mac_pj + self.local_buffer_pj + self.glb_pj + self.noc_pj + self.dram_pj
        )

    @property
    def total_uj(self) -> float:
        """Total layer energy in microjoules."""
        return self.total_pj / 1.0e6


class EnergyModel:
    """Prices a mapping's data movement on a given accelerator."""

    def __init__(self, accelerator: Accelerator) -> None:
        self._accelerator = accelerator

    @property
    def accelerator(self) -> Accelerator:
        """The accelerator whose hierarchy this model prices."""
        return self._accelerator

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------
    def glb_read_words(self, mapping: Mapping) -> int:
        """Words read from the GLB over the whole layer.

        The GLB serves every *array pass*: inputs and weights are
        scattered per pass, and partially accumulated outputs are read
        back whenever the reduction dimension ``C`` spans multiple passes.
        """
        passes = mapping.num_passes
        per_pass = mapping.pass_input_words() + mapping.pass_weight_words()
        c_passes = mapping.pass_trips("C")
        output_pass_groups = passes // max(1, c_passes)
        psum_reads = (c_passes - 1) * mapping.pass_output_words()
        return passes * per_pass + output_pass_groups * max(0, psum_reads)

    def glb_write_words(self, mapping: Mapping) -> int:
        """Words written to the GLB over the whole layer (per pass)."""
        return mapping.num_passes * mapping.pass_output_words()

    def dram_input_streams(self, mapping: Mapping) -> int:
        """How many times the input tensor streams in from DRAM."""
        layer = mapping.layer
        if self._accelerator.glb.fits(layer.input_bytes):
            return 1
        # Input is irrelevant to the K loop (except depthwise, where the
        # channel loop is shared and there is no re-streaming dimension).
        if layer.kind is LayerKind.DEPTHWISE:
            return 1
        return max(1, mapping.trips("K"))

    def dram_weight_streams(self, mapping: Mapping) -> int:
        """How many times the weight tensor streams in from DRAM."""
        layer = mapping.layer
        if self._accelerator.glb.fits(layer.weight_bytes):
            return 1
        return max(1, mapping.trips("P") * mapping.trips("Q"))

    def dram_traffic_bytes(self, mapping: Mapping) -> int:
        """Total DRAM traffic (reads, write-back, and any psum spill).

        When the reduction dimension is split across *data tiles*, the
        partially accumulated outputs cannot stay in the GLB between
        tiles and make a round trip to DRAM per extra ``C`` trip.
        """
        layer = mapping.layer
        reads = (
            self.dram_input_streams(mapping) * layer.input_bytes
            + self.dram_weight_streams(mapping) * layer.weight_bytes
        )
        spill_trips = max(0, mapping.trips("C") - 1)
        psum_spill = 2 * spill_trips * layer.output_bytes
        return reads + layer.output_bytes + psum_spill

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EnergyBreakdown:
        """Full energy breakdown of executing the layer once."""
        layer = mapping.layer
        pe = self._accelerator.array.pe
        buffers = pe.local_buffers

        macs = layer.macs
        mac_pj = macs * pe.mac.energy_pj

        lb_pj = macs * (
            buffers.input.read_energy_pj
            + buffers.weight.read_energy_pj
            + buffers.output.read_energy_pj
            + buffers.output.write_energy_pj
        )

        glb_buffer = self._accelerator.glb.buffer
        glb_pj = (
            self.glb_read_words(mapping) * glb_buffer.read_energy_pj
            + self.glb_write_words(mapping) * glb_buffer.write_energy_pj
        )

        noc_bytes = (
            self.glb_read_words(mapping) + self.glb_write_words(mapping)
        ) * WORD_BYTES
        noc_pj = self._accelerator.noc.global_net.transfer_energy_pj(noc_bytes)

        dram_pj = (
            self.dram_traffic_bytes(mapping) * self._accelerator.dram.energy_per_byte_pj
        )

        return EnergyBreakdown(
            mac_pj=mac_pj,
            local_buffer_pj=lb_pj,
            glb_pj=glb_pj,
            noc_pj=noc_pj,
            dram_pj=dram_pj,
        )
