"""Roofline classification of layer executions.

For each scheduled layer, compare its arithmetic intensity (MACs per
DRAM byte) against the accelerator's machine balance (peak MACs/cycle
over DRAM bytes/cycle) to tell whether the layer is compute-bound or
memory-bound, and how close the schedule runs to the applicable roof.
Useful both as a scheduler sanity check (the energy-optimal mapping
should not be absurdly far from either roof) and as a user-facing
analysis of custom accelerators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.dataflow.energy import EnergyModel
from repro.dataflow.scheduler import Schedule
from repro.errors import SimulationError


class Bound(enum.Enum):
    """Which roof limits a layer."""

    COMPUTE = "compute"
    MEMORY = "memory"


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline plot."""

    layer: str
    arithmetic_intensity: float
    machine_balance: float
    bound: Bound
    achieved_macs_per_cycle: float
    roof_macs_per_cycle: float

    @property
    def efficiency(self) -> float:
        """Fraction of the applicable roof actually achieved."""
        if self.roof_macs_per_cycle <= 0:
            return 0.0
        return self.achieved_macs_per_cycle / self.roof_macs_per_cycle


@dataclass(frozen=True)
class RooflineAnalysis:
    """Roofline points for a set of layer schedules."""

    accelerator: str
    points: Tuple[RooflinePoint, ...]

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of layers limited by the compute roof."""
        if not self.points:
            raise SimulationError("roofline analysis has no points")
        hits = sum(1 for point in self.points if point.bound is Bound.COMPUTE)
        return hits / len(self.points)

    def point_for(self, layer: str) -> RooflinePoint:
        """Look up one layer's point."""
        for point in self.points:
            if point.layer == layer:
                return point
        raise KeyError(layer)


def analyze_roofline(
    accelerator: Accelerator, schedules: Sequence[Schedule]
) -> RooflineAnalysis:
    """Place every schedule on the accelerator's roofline."""
    if not schedules:
        raise SimulationError("need at least one schedule")
    energy_model = EnergyModel(accelerator)
    peak_macs_per_cycle = float(accelerator.num_pes)
    dram_bytes_per_cycle = float(accelerator.dram.bandwidth_bytes_per_cycle)
    machine_balance = peak_macs_per_cycle / dram_bytes_per_cycle

    points = []
    for schedule in schedules:
        layer = schedule.layer
        traffic = energy_model.dram_traffic_bytes(schedule.mapping)
        intensity = layer.macs / max(1, traffic)
        bound = Bound.COMPUTE if intensity >= machine_balance else Bound.MEMORY
        roof = (
            peak_macs_per_cycle
            if bound is Bound.COMPUTE
            else intensity * dram_bytes_per_cycle
        )
        achieved = layer.macs / max(1, schedule.cycles)
        points.append(
            RooflinePoint(
                layer=layer.name,
                arithmetic_intensity=intensity,
                machine_balance=machine_balance,
                bound=bound,
                achieved_macs_per_cycle=achieved,
                roof_macs_per_cycle=roof,
            )
        )
    return RooflineAnalysis(accelerator=accelerator.name, points=tuple(points))
