"""SCALE-Sim interoperability: export configs and topology files.

The reproduction's dataflow substrate is SCALE-Sim-flavored; this module
makes that concrete by exporting any accelerator + workload pair in the
file formats the open-source SCALE-Sim v2 simulator consumes — a
``.cfg`` with the architecture presets and topology CSVs (the standard
convolution format, plus the M/N/K format for GEMM layers). Users can
cross-check our scheduler's utilization numbers against an independent
tool without writing glue code.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.arch.accelerator import Accelerator
from repro.dataflow.layer import LayerKind
from repro.errors import WorkloadError
from repro.workloads.base import Network

#: SCALE-Sim dataflow keywords for our scheduler presets.
_DATAFLOW_KEYWORDS = {"output_stationary": "os", "weight_stationary": "ws"}


@dataclass(frozen=True)
class ScaleSimExport:
    """Paths written by one export."""

    config: Path
    conv_topology: Optional[Path]
    gemm_topology: Optional[Path]

    @property
    def files(self) -> Tuple[Path, ...]:
        """All written files."""
        return tuple(
            path
            for path in (self.config, self.conv_topology, self.gemm_topology)
            if path is not None
        )


def _config_text(accelerator: Accelerator, run_name: str, dataflow: str) -> str:
    pe = accelerator.array.pe
    ifmap_kb = max(1, pe.local_buffers.input.capacity_bytes * accelerator.num_pes // 1024)
    filter_kb = max(1, pe.local_buffers.weight.capacity_bytes * accelerator.num_pes // 1024)
    ofmap_kb = max(1, pe.local_buffers.output.capacity_bytes * accelerator.num_pes // 1024)
    return (
        "[general]\n"
        f"run_name = {run_name}\n"
        "\n"
        "[architecture_presets]\n"
        f"ArrayHeight : {accelerator.height}\n"
        f"ArrayWidth : {accelerator.width}\n"
        f"IfmapSramSzkB : {ifmap_kb}\n"
        f"FilterSramSzkB : {filter_kb}\n"
        f"OfmapSramSzkB : {ofmap_kb}\n"
        "IfmapOffset : 0\n"
        "FilterOffset : 10000000\n"
        "OfmapOffset : 20000000\n"
        f"Bandwidth : {accelerator.dram.bandwidth_bytes_per_cycle}\n"
        f"Dataflow : {dataflow}\n"
        "MemoryBanks : 1\n"
        "\n"
        "[run_presets]\n"
        "InterfaceBandwidth : CALC\n"
    )


def _conv_rows(network: Network) -> List[str]:
    rows = []
    for layer in network.layers:
        if layer.kind is LayerKind.GEMM:
            continue
        ifmap_h, ifmap_w = layer.input_hw
        channels = layer.K if layer.kind is LayerKind.DEPTHWISE else layer.C
        num_filters = layer.K
        rows.append(
            f"{layer.name}, {ifmap_h}, {ifmap_w}, {layer.R}, {layer.S}, "
            f"{channels}, {num_filters}, {layer.stride},"
        )
    return rows


def _gemm_rows(network: Network) -> List[str]:
    rows = []
    for layer in network.layers:
        if layer.kind is not LayerKind.GEMM:
            continue
        # SCALE-Sim GEMM topology: M (rows), N (cols), K (reduction).
        rows.append(f"{layer.name}, {layer.P}, {layer.K}, {layer.C},")
    return rows


def export_scalesim(
    accelerator: Accelerator,
    network: Network,
    out_dir,
    dataflow: str = "weight_stationary",
) -> ScaleSimExport:
    """Write SCALE-Sim v2 input files for one accelerator + network.

    ``dataflow`` must be one of the fixed-dataflow presets SCALE-Sim
    understands (``weight_stationary`` -> ``ws``, ``output_stationary``
    -> ``os``); the flexible search has no SCALE-Sim equivalent.
    """
    keyword = _DATAFLOW_KEYWORDS.get(dataflow)
    if keyword is None:
        raise WorkloadError(
            f"SCALE-Sim export supports {sorted(_DATAFLOW_KEYWORDS)}, "
            f"got {dataflow!r}"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = network.name.lower().replace(" ", "_").replace("-", "_")

    config_path = out / f"{slug}.cfg"
    config_path.write_text(_config_text(accelerator, slug, keyword))

    conv_path = None
    conv_rows = _conv_rows(network)
    if conv_rows:
        conv_path = out / f"{slug}_conv.csv"
        header = (
            "Layer name, IFMAP Height, IFMAP Width, Filter Height, "
            "Filter Width, Channels, Num Filter, Strides,"
        )
        conv_path.write_text("\n".join([header] + conv_rows) + "\n")

    gemm_path = None
    gemm_rows = _gemm_rows(network)
    if gemm_rows:
        gemm_path = out / f"{slug}_gemm.csv"
        gemm_path.write_text("\n".join(["Layer, M, N, K,"] + gemm_rows) + "\n")

    return ScaleSimExport(
        config=config_path.resolve(),
        conv_topology=conv_path.resolve() if conv_path else None,
        gemm_topology=gemm_path.resolve() if gemm_path else None,
    )
