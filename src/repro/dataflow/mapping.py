"""Mappings: how one layer's loop nest is folded onto the accelerator.

A :class:`Mapping` has three levels, mirroring the memory hierarchy:

* **Spatial assignment** — one loop dimension is unrolled across the PE
  array's horizontal axis with factor ``fx`` and another across the
  vertical axis with factor ``fy``. The rectangle ``fx x fy`` is exactly
  the paper's *utilization space*: the set of PEs a data tile activates.
* **PE-temporal factors** — how much of each dimension one PE covers
  sequentially within one array pass, bounded by its local buffers.
* **GLB-temporal factors** — how many array passes one *data tile*
  (the unit fetched from DRAM into the GLB) bundles, bounded by GLB
  capacity.

The paper's ``Z`` — the number of data tiles, i.e. utilization-space
allocations — is the GLB-level trip count ``prod(ceil(size_d /
tile_extent_d))``. One data tile keeps the same utilization space for
all of its array passes (a tile is processed where it was scattered),
which is why ResNet's C5 layer has Z = 32 rather than thousands
(paper Fig. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping as TMapping, Optional, Tuple

from repro.dataflow.layer import LOOP_DIMS, WORD_BYTES, LayerKind, LayerShape
from repro.errors import MappingError


@dataclass(frozen=True)
class SpatialAssignment:
    """One loop dimension unrolled across one array axis."""

    dim: str
    factor: int

    def __post_init__(self) -> None:
        if self.dim not in LOOP_DIMS:
            raise MappingError(f"unknown loop dimension {self.dim!r}")
        if self.factor < 1:
            raise MappingError(
                f"spatial factor for {self.dim} must be >= 1, got {self.factor}"
            )


def _validate_factors(factors: TMapping[str, int], label: str) -> None:
    for dim, factor in factors.items():
        if dim not in LOOP_DIMS:
            raise MappingError(f"unknown {label} dimension {dim!r}")
        if factor < 1:
            raise MappingError(
                f"{label} factor for {dim} must be >= 1, got {factor}"
            )


@dataclass(frozen=True)
class Mapping:
    """A complete mapping of one layer onto one accelerator.

    Parameters
    ----------
    layer:
        The layer being mapped.
    spatial_x, spatial_y:
        Spatial unrolling along the array's horizontal / vertical axes.
        They must name *different* loop dimensions.
    pe_temporal:
        Per-PE sequential factors keyed by dimension letter; omitted
        dimensions default to 1.
    glb_temporal:
        Array passes bundled into one data tile, per dimension; omitted
        dimensions default to 1.
    """

    layer: LayerShape
    spatial_x: SpatialAssignment
    spatial_y: SpatialAssignment
    pe_temporal: TMapping[str, int] = field(default_factory=dict)
    glb_temporal: TMapping[str, int] = field(default_factory=dict)
    #: Optional secondary spatial assignments: real mappers co-map two
    #: loop dimensions onto one array axis (e.g. K x C along the
    #: columns). The axis extent is the product of its factors.
    spatial_x2: Optional[SpatialAssignment] = None
    spatial_y2: Optional[SpatialAssignment] = None

    def _spatial_assignments(self) -> Tuple[SpatialAssignment, ...]:
        extras = tuple(
            assignment
            for assignment in (self.spatial_x2, self.spatial_y2)
            if assignment is not None
        )
        return (self.spatial_x, self.spatial_y) + extras

    def __post_init__(self) -> None:
        assignments = self._spatial_assignments()
        dims = [assignment.dim for assignment in assignments]
        if len(set(dims)) != len(dims):
            raise MappingError(
                f"spatial assignments must use distinct dimensions, got {dims}"
            )
        sizes = self.layer.dim_sizes()
        for assignment in assignments:
            if assignment.factor > sizes[assignment.dim]:
                raise MappingError(
                    f"spatial factor {assignment.factor} exceeds extent "
                    f"{sizes[assignment.dim]} of dimension {assignment.dim}"
                )
        _validate_factors(self.pe_temporal, "PE-temporal")
        _validate_factors(self.glb_temporal, "GLB-temporal")
        for dim in LOOP_DIMS:
            if self.tile_extent(dim) > sizes[dim]:
                raise MappingError(
                    f"tile extent of {dim} "
                    f"({self.tile_extent(dim)}) exceeds layer extent {sizes[dim]}"
                )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def space_shape(self) -> Tuple[int, int]:
        """Utilization-space shape ``(x, y)`` in PEs.

        Each axis extent is the product of its (up to two) spatial
        factors.
        """
        x = self.spatial_x.factor
        if self.spatial_x2 is not None:
            x *= self.spatial_x2.factor
        y = self.spatial_y.factor
        if self.spatial_y2 is not None:
            y *= self.spatial_y2.factor
        return (x, y)

    def spatial_factor(self, dim: str) -> int:
        """Spatial unrolling factor of a dimension (1 if not spatial)."""
        for assignment in self._spatial_assignments():
            if dim == assignment.dim:
                return assignment.factor
        return 1

    def pe_temporal_factor(self, dim: str) -> int:
        """Per-PE sequential factor of a dimension (defaults to 1)."""
        return int(self.pe_temporal.get(dim, 1))

    def glb_temporal_factor(self, dim: str) -> int:
        """Array passes per data tile along a dimension (defaults to 1)."""
        return int(self.glb_temporal.get(dim, 1))

    def pass_extent(self, dim: str) -> int:
        """How much of ``dim`` one PE-array pass covers."""
        return self.spatial_factor(dim) * self.pe_temporal_factor(dim)

    def tile_extent(self, dim: str) -> int:
        """How much of ``dim`` one data tile (GLB tile) covers."""
        return self.pass_extent(dim) * self.glb_temporal_factor(dim)

    def pass_extents(self) -> Dict[str, int]:
        """Pass extents for every loop dimension."""
        return {dim: self.pass_extent(dim) for dim in LOOP_DIMS}

    def tile_extents(self) -> Dict[str, int]:
        """Tile extents for every loop dimension."""
        return {dim: self.tile_extent(dim) for dim in LOOP_DIMS}

    def trips(self, dim: str) -> int:
        """GLB-level trip count of a dimension: ``ceil(size / tile)``."""
        return math.ceil(self.layer.dim_sizes()[dim] / self.tile_extent(dim))

    def pass_trips(self, dim: str) -> int:
        """Array-pass trip count of a dimension: ``ceil(size / pass)``."""
        return math.ceil(self.layer.dim_sizes()[dim] / self.pass_extent(dim))

    @property
    def num_tiles(self) -> int:
        """The paper's ``Z``: total data tiles (utilization-space uses)."""
        z = 1
        for dim in LOOP_DIMS:
            z *= self.trips(dim)
        return z

    @property
    def num_passes(self) -> int:
        """Total PE-array passes over the whole layer."""
        passes = 1
        for dim in LOOP_DIMS:
            passes *= self.pass_trips(dim)
        return passes

    @property
    def passes_per_tile(self) -> int:
        """Array passes bundled into one data tile."""
        passes = 1
        for dim in LOOP_DIMS:
            passes *= self.glb_temporal_factor(dim)
        return passes

    @property
    def active_pes(self) -> int:
        """PEs activated by one tile: ``x * y``."""
        x, y = self.space_shape
        return x * y

    # ------------------------------------------------------------------
    # Working sets (shared arithmetic)
    # ------------------------------------------------------------------
    def _input_channels(self, extent_of: TMapping[str, int]) -> int:
        """Channel extent of the input tensor for a working set."""
        if self.layer.kind is LayerKind.DEPTHWISE:
            return extent_of["K"]
        return extent_of["C"]

    def _input_patch_words(self, extent_of: TMapping[str, int]) -> int:
        """Input words needed to produce a given output extent."""
        stride = self.layer.stride
        rows = (extent_of["P"] - 1) * stride + self.layer.R
        cols = (extent_of["Q"] - 1) * stride + self.layer.S
        return self._input_channels(extent_of) * rows * cols

    def _weight_words(self, extent_of: TMapping[str, int]) -> int:
        if self.layer.kind is LayerKind.DEPTHWISE:
            return extent_of["K"] * extent_of["R"] * extent_of["S"]
        return extent_of["K"] * extent_of["C"] * extent_of["R"] * extent_of["S"]

    def _output_words(self, extent_of: TMapping[str, int]) -> int:
        return extent_of["K"] * extent_of["P"] * extent_of["Q"]

    def _macs(self, extent_of: TMapping[str, int]) -> int:
        product = 1
        for dim in LOOP_DIMS:
            product *= extent_of[dim]
        return product

    # ------------------------------------------------------------------
    # Per data tile (GLB granularity — the wear-leveling unit)
    # ------------------------------------------------------------------
    def tile_input_words(self) -> int:
        """Input words fetched from DRAM for one data tile."""
        return self._input_patch_words(self.tile_extents())

    def tile_weight_words(self) -> int:
        """Weight words fetched from DRAM for one data tile."""
        return self._weight_words(self.tile_extents())

    def tile_output_words(self) -> int:
        """Output words produced by one data tile."""
        return self._output_words(self.tile_extents())

    def tile_bytes(self) -> int:
        """GLB-resident bytes of one tile (inputs + weights + outputs)."""
        words = (
            self.tile_input_words()
            + self.tile_weight_words()
            + self.tile_output_words()
        )
        return words * WORD_BYTES

    def tile_macs(self) -> int:
        """MAC operations performed for one data tile."""
        return self._macs(self.tile_extents())

    # ------------------------------------------------------------------
    # Per array pass (what the global network moves per pass)
    # ------------------------------------------------------------------
    def pass_input_words(self) -> int:
        """Input words scattered to the PEs for one array pass."""
        return self._input_patch_words(self.pass_extents())

    def pass_weight_words(self) -> int:
        """Weight words scattered to the PEs for one array pass."""
        return self._weight_words(self.pass_extents())

    def pass_output_words(self) -> int:
        """Output words gathered from the PEs after one array pass."""
        return self._output_words(self.pass_extents())

    def pass_macs(self) -> int:
        """MAC operations performed during one array pass."""
        return self._macs(self.pass_extents())

    # ------------------------------------------------------------------
    # Per-PE working sets (local-buffer pressure)
    # ------------------------------------------------------------------
    def pe_extents(self) -> Dict[str, int]:
        """Extent of each dimension handled sequentially by one PE."""
        return {dim: self.pe_temporal_factor(dim) for dim in LOOP_DIMS}

    def pe_weight_words(self) -> int:
        """Stationary weight words one PE must hold for a pass."""
        extents = self.pe_extents()
        # A pass always covers the full R and S extents; the per-PE share
        # of the kernel shrinks only if R or S is unrolled spatially.
        eff_r = max(1, self.layer.R // self.spatial_factor("R"))
        eff_s = max(1, self.layer.S // self.spatial_factor("S"))
        if self.layer.kind is LayerKind.DEPTHWISE:
            return extents["K"] * eff_r * eff_s
        return extents["K"] * extents["C"] * eff_r * eff_s

    def pe_input_words(self) -> int:
        """Streaming input window one PE must hold.

        Operands stream through the input buffer one filter-row slice at a
        time (SCALE-Sim/Eyeriss style), so the window is one row of the
        receptive field per resident channel.
        """
        extents = self.pe_extents()
        channels = self._input_channels(extents)
        eff_s = max(1, self.layer.S // self.spatial_factor("S"))
        window_cols = (extents["Q"] - 1) * self.layer.stride + eff_s
        return channels * window_cols

    def pe_output_words(self) -> int:
        """Partial-sum words one PE accumulates during a pass."""
        extents = self.pe_extents()
        return extents["K"] * extents["P"] * extents["Q"]

    def fits_local_buffers(self) -> bool:
        """Whether the per-PE working set fits Eyeriss-style local buffers."""
        from repro.arch.buffers import LocalBufferSet

        return not self.violates_local_buffers(LocalBufferSet())

    def violates_local_buffers(self, buffers) -> bool:
        """Return True if the per-PE working set overflows ``buffers``."""
        return not buffers.fits_tile(
            self.pe_input_words() * WORD_BYTES,
            self.pe_weight_words() * WORD_BYTES,
            self.pe_output_words() * WORD_BYTES,
        )

    def describe(self) -> str:
        """One-line summary of the mapping."""
        x, y = self.space_shape
        pe = {d: f for d, f in sorted(self.pe_temporal.items()) if f > 1}
        glb = {d: f for d, f in sorted(self.glb_temporal.items()) if f > 1}
        return (
            f"{self.layer.name}: space {x}x{y} "
            f"({self.spatial_x.dim}|{self.spatial_y.dim}), Z={self.num_tiles}, "
            f"pe={pe or '{}'}, glb={glb or '{}'}"
        )

    def to_loopnest(self) -> str:
        """Render the mapping as an indented loop nest (Timeloop style).

        Levels from outside in: DRAM-level trips (one per data tile),
        GLB-level passes within a tile, the spatial unrolling across the
        array, and the per-PE sequential loops. Dimensions with a trip
        count of 1 are omitted at each level.
        """
        lines = [f"// {self.layer.name}: Z = {self.num_tiles} data tiles"]
        indent = 0

        def emit(text: str) -> None:
            lines.append("  " * indent + text)

        for dim in LOOP_DIMS:
            trips = self.trips(dim)
            if trips > 1:
                emit(f"for {dim.lower()}_dram in [0:{trips})  // DRAM tiles")
                indent += 1
        for dim in LOOP_DIMS:
            factor = self.glb_temporal_factor(dim)
            if factor > 1:
                emit(f"for {dim.lower()}_glb in [0:{factor})  // array passes")
                indent += 1
        spatial_terms = [
            f"{assignment.dim.lower()}:{assignment.factor}"
            for assignment in self._spatial_assignments()
            if assignment.factor > 1
        ]
        if spatial_terms:
            x, y = self.space_shape
            emit(
                f"parallel-for [{', '.join(spatial_terms)}]  "
                f"// {x}x{y} utilization space"
            )
            indent += 1
        for dim in LOOP_DIMS:
            factor = self.pe_temporal_factor(dim)
            if factor > 1:
                emit(f"for {dim.lower()}_pe in [0:{factor})  // inside one PE")
                indent += 1
        emit("mac()")
        return "\n".join(lines)
