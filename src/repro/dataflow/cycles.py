"""Cycle model: per-tile and per-layer latency.

Supports the paper's Section V-D claim that RWL+RO causes *no performance
degradation*: tile latency depends only on the tile's data volume and the
number of active PEs, never on where the utilization space sits in the
array. The model is deliberately simple — double-buffered tiles whose
latency is the max of compute and data movement — because the
wear-leveling study needs position independence and relative magnitudes,
not RTL-accurate timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.dataflow.layer import WORD_BYTES
from repro.dataflow.mapping import Mapping


@dataclass(frozen=True)
class TileCycles:
    """Latency components of one data tile."""

    compute: int
    scatter: int
    gather: int
    drain: int

    @property
    def steady_state(self) -> int:
        """Per-tile latency with double buffering (max of compute, I/O)."""
        return max(self.compute + self.drain, self.scatter + self.gather)

    @property
    def serialized(self) -> int:
        """Per-tile latency without overlap (first/last tile)."""
        return self.compute + self.drain + self.scatter + self.gather


class CycleModel:
    """Computes tile and layer latencies for a mapping on an accelerator."""

    def __init__(self, accelerator: Accelerator) -> None:
        self._accelerator = accelerator

    def pass_cycles(self, mapping: Mapping) -> TileCycles:
        """Latency components of one PE-array pass under ``mapping``.

        The result is independent of the utilization space's position by
        construction; :mod:`repro.experiments.overhead` turns this into an
        executable check.
        """
        noc = self._accelerator.noc
        active = max(1, mapping.active_pes)
        compute = math.ceil(mapping.pass_macs() / active)
        scatter = noc.scatter_cycles(
            mapping.pass_input_words() * WORD_BYTES,
            mapping.pass_weight_words() * WORD_BYTES,
        )
        gather = noc.gather_cycles(mapping.pass_output_words() * WORD_BYTES)
        # Partial sums drain along the utilization space's vertical axis.
        _, y = mapping.space_shape
        drain = noc.psum_forward_cycles(max(1, y))
        return TileCycles(compute=compute, scatter=scatter, gather=gather, drain=drain)

    def tile_cycles(self, mapping: Mapping) -> TileCycles:
        """Latency components of one data tile (a bundle of array passes).

        The tile's compute/scatter/gather are its passes' costs summed;
        the drain is paid once per pass but folded into the compute term
        of the aggregate view.
        """
        per_pass = self.pass_cycles(mapping)
        n = max(1, mapping.passes_per_tile)
        return TileCycles(
            compute=per_pass.compute * n + per_pass.drain * (n - 1),
            scatter=per_pass.scatter * n,
            gather=per_pass.gather * n,
            drain=per_pass.drain,
        )

    def pass_cycles_at(self, mapping: Mapping, start) -> TileCycles:
        """Pass latency with the utilization space anchored at ``start``.

        The space's footprint is materialized at the given coordinate
        (wrapping on a torus) and the cost computed from the PEs it
        actually covers. Because a wrapped rectangle covers exactly
        ``x * y`` PEs wherever it sits, this equals :meth:`pass_cycles`
        for every legal start — the executable form of the paper's
        no-performance-degradation claim, checked by
        :func:`repro.experiments.overhead.run_overhead`.
        """
        array = self._accelerator.array
        x, y = mapping.space_shape
        rows, _ = array.footprint_indices(start, x, y)
        active = max(1, int(rows.size))
        noc = self._accelerator.noc
        compute = math.ceil(mapping.pass_macs() / active)
        scatter = noc.scatter_cycles(
            mapping.pass_input_words() * WORD_BYTES,
            mapping.pass_weight_words() * WORD_BYTES,
        )
        gather = noc.gather_cycles(mapping.pass_output_words() * WORD_BYTES)
        drain = noc.psum_forward_cycles(max(1, y))
        return TileCycles(compute=compute, scatter=scatter, gather=gather, drain=drain)

    def layer_cycles(self, mapping: Mapping) -> int:
        """Total latency of one layer: pipelined pass stream."""
        per_pass = self.pass_cycles(mapping)
        passes = mapping.num_passes
        if passes <= 0:
            return 0
        # First pass pays the full serialized latency; the rest hide data
        # movement behind compute (double buffering).
        return per_pass.serialized + (passes - 1) * per_pass.steady_state
