"""Process-pool fan-out with a serial fallback.

The experiment layer's hot loops — per-policy runs, the Fig. 8
per-workload sweep, the Fig. 10 per-size sweep, Monte Carlo chunks, and
the ``rota all`` figure drivers — are embarrassingly parallel: tasks
share no state beyond read-only inputs. :class:`ParallelRunner` maps a
module-level function over a list of such tasks, either serially
(``jobs=1``, the default) or on a :class:`concurrent.futures.
ProcessPoolExecutor`, with three guarantees the callers rely on:

* **deterministic ordering** — results come back in input order
  regardless of completion order, so parallel tables are bit-identical
  to serial ones;
* **per-task wall-time instrumentation** — every task's duration is
  recorded as a :class:`TaskTiming` for the benchmark trajectory;
* **no nested pools** — worker processes see ``REPRO_JOBS=1``, so a
  parallel Fig. 8 sweep runs its inner per-policy loop serially instead
  of oversubscribing (or deadlocking on daemonic-process limits);
* **crash resilience** — if a worker process dies without raising (OOM
  kill, segfault), the stranded tasks are retried once serially in the
  parent with a warning naming the task that crashed, instead of losing
  the whole sweep to one bad worker.

The default job count comes from the ``REPRO_JOBS`` environment
variable (``auto``/``0`` means the machine's CPU count); CLI ``--jobs``
flags override it per invocation.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.runtime import observe

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default worker count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Resolve the default job count from ``REPRO_JOBS`` (serial if unset)."""
    raw = os.environ.get(JOBS_ENV, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        )
    return value


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize an explicit ``jobs`` argument (``None`` = environment)."""
    if jobs is None:
        return default_jobs()
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class TaskTiming:
    """Wall-time record of one task executed by a runner."""

    label: str
    seconds: float
    mode: str  # "serial", "pool", or "serial-retry"


def _worker_init() -> None:
    """Pool-worker initializer: force nested runners to run serially."""
    os.environ[JOBS_ENV] = "1"


def _timed_call(payload: Tuple[Callable, object]) -> Tuple[object, float]:
    """Run one task in a worker and measure its wall time there."""
    fn, item = payload
    start = time.perf_counter()
    result = fn(item)
    # Pool workers exit via os._exit, which skips the atexit hook that
    # normally flushes the schedule disk cache — flush after each task
    # instead (merge-on-save makes concurrent flushes safe).
    from repro.dataflow.scheduler import save_schedule_cache

    save_schedule_cache()
    return result, time.perf_counter() - start


class ParallelRunner:
    """Maps a function over tasks, serially or on a process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``None`` reads ``REPRO_JOBS`` (default 1 =
        serial, no pool at all); ``0`` means the CPU count. With one job
        or one task the pool is skipped entirely, so ``jobs=1`` has zero
        multiprocessing overhead and needs no picklability.

    Notes
    -----
    For ``jobs > 1`` the mapped function and every task must be
    picklable — in practice: a module-level function applied to plain
    data (the frozen dataclasses this codebase is built from all
    qualify).
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self._jobs = resolve_jobs(jobs)
        self._timings: List[TaskTiming] = []
        # Guards the timing list: a runner shared by service worker
        # threads must not tear its records (observe scopes are
        # per-thread and need no lock).
        self._timings_lock = threading.Lock()

    @property
    def jobs(self) -> int:
        """The resolved worker count."""
        return self._jobs

    def _record(self, timing: TaskTiming) -> None:
        """Store one task timing and notify any observation scopes."""
        with self._timings_lock:
            self._timings.append(timing)
        observe.record_task_timing(timing)

    @property
    def timings(self) -> Tuple[TaskTiming, ...]:
        """Per-task wall times of every ``map`` call so far, in order."""
        with self._timings_lock:
            return tuple(self._timings)

    @property
    def total_task_seconds(self) -> float:
        """Sum of all recorded task durations (CPU-side work)."""
        return sum(timing.seconds for timing in self.timings)

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        labels: Optional[Sequence[str]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every task, returning results in input order.

        ``labels`` (same length as ``tasks``) name the per-task timing
        records; indices are used when omitted.
        """
        items = list(tasks)
        if labels is None:
            names = [f"task-{index}" for index in range(len(items))]
        else:
            names = [str(label) for label in labels]
            if len(names) != len(items):
                raise ConfigurationError(
                    f"got {len(names)} labels for {len(items)} tasks"
                )
        if self._jobs <= 1 or len(items) <= 1:
            results: List[R] = []
            for name, item in zip(names, items):
                start = time.perf_counter()
                results.append(fn(item))
                self._record(
                    TaskTiming(
                        label=name,
                        seconds=time.perf_counter() - start,
                        mode="serial",
                    )
                )
            return results

        workers = min(self._jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            futures = [pool.submit(_timed_call, (fn, item)) for item in items]
            results = []
            for index, (name, future) in enumerate(zip(names, futures)):
                try:
                    result, seconds = future.result()
                except BrokenProcessPool:
                    # A worker died without raising (OOM kill, segfault
                    # in a C extension, os._exit). Every in-flight
                    # future on this pool fails the same way, so fall
                    # back to running everything not yet collected
                    # serially in this process — once; a second crash
                    # here is a real error and propagates.
                    pool.shutdown(wait=False, cancel_futures=True)
                    crashed = names[index:]
                    return results + self._retry_serially(
                        fn, items[index:], crashed, first=name
                    )
                results.append(result)
                self._record(
                    TaskTiming(label=name, seconds=seconds, mode="pool")
                )
        return results

    def _retry_serially(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        names: Sequence[str],
        first: str,
    ) -> List[R]:
        """Serial second chance for tasks stranded by a broken pool."""
        import warnings

        warnings.warn(
            f"worker process crashed while running task {first!r}; "
            f"retrying {len(items)} uncollected task(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        results: List[R] = []
        for name, item in zip(names, items):
            start = time.perf_counter()
            results.append(fn(item))
            self._record(
                TaskTiming(
                    label=name,
                    seconds=time.perf_counter() - start,
                    mode="serial-retry",
                )
            )
        return results


def run_parallel(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[R]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs).map(fn, tasks, labels=labels)
