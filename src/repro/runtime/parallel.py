"""Process-pool fan-out with checkpointing, retries, and a serial fallback.

The experiment layer's hot loops — per-policy runs, the Fig. 8
per-workload sweep, the Fig. 10 per-size sweep, Monte Carlo chunks, and
the ``rota all`` figure drivers — are embarrassingly parallel: tasks
share no state beyond read-only inputs. :class:`ParallelRunner` maps a
module-level function over a list of such tasks, either serially
(``jobs=1``, the default) or on a :class:`concurrent.futures.
ProcessPoolExecutor`, with guarantees the callers rely on:

* **deterministic ordering** — results come back in input order
  regardless of completion order, so parallel tables are bit-identical
  to serial ones;
* **per-task wall-time instrumentation** — every task's duration is
  recorded as a :class:`TaskTiming` for the benchmark trajectory;
* **no nested pools** — worker processes see ``REPRO_JOBS=1``, so a
  parallel Fig. 8 sweep runs its inner per-policy loop serially instead
  of oversubscribing (or deadlocking on daemonic-process limits);
* **crash resilience** — if a worker process dies without raising (OOM
  kill, segfault), the stranded tasks are retried once serially in the
  parent with a warning naming the task that crashed, instead of losing
  the whole sweep to one bad worker.

Three optional resilience features layer on top of ``map``:

* ``checkpoint`` — a :class:`~repro.resilience.journal.
  CheckpointJournal` (or a directory path) that records each completed
  task; a rerun against the same journal skips finished tasks and,
  because Monte Carlo seeding is chunk-invariant, produces output
  bit-identical to an uninterrupted run;
* ``retry`` — a :class:`~repro.resilience.retry.RetryPolicy` replacing
  the all-or-nothing serial fallback: crashed, timed-out, or failing
  tasks are rescheduled onto a fresh pool with seeded exponential
  backoff, and a task that exhausts its attempts is quarantined with
  :class:`~repro.resilience.retry.PoisonedTaskError` instead of
  sinking the sweep;
* ``timeout`` — a per-task wall-clock budget (pool mode only; a serial
  run has no second process to enforce one). An overrunning task gets
  its pool killed and is retried or, without a policy, raises
  :class:`~repro.resilience.retry.TaskTimeoutError`.

Every task execution — worker or parent — passes through
:func:`repro.chaos.maybe_inject`, so a seeded ``REPRO_CHAOS`` spec can
deterministically crash, hang, or fail tasks to prove the machinery
above actually works.

The default job count comes from the ``REPRO_JOBS`` environment
variable (``auto``/``0`` means the machine's CPU count); CLI ``--jobs``
flags override it per invocation.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro import chaos
from repro.errors import ConfigurationError
from repro.resilience.journal import CheckpointJournal
from repro.resilience.retry import (
    PoisonedTaskError,
    RetryPolicy,
    TaskTimeoutError,
)
from repro.runtime import observe

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default worker count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Resolve the default job count from ``REPRO_JOBS`` (serial if unset)."""
    raw = os.environ.get(JOBS_ENV, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        )
    return value


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize an explicit ``jobs`` argument (``None`` = environment)."""
    if jobs is None:
        return default_jobs()
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class TaskTiming:
    """Wall-time record of one task executed by a runner."""

    label: str
    seconds: float
    mode: str  # "serial", "pool", or "serial-retry"
    retried: bool = False  # True when this was not the task's first attempt


def _worker_init() -> None:
    """Pool-worker initializer: force nested runners to run serially."""
    os.environ[JOBS_ENV] = "1"


def _timed_call(
    payload: Tuple[Callable, object, str, int]
) -> Tuple[object, float]:
    """Run one task in a worker and measure its wall time there."""
    fn, item, label, attempt = payload
    chaos.maybe_inject(label, attempt)
    start = time.perf_counter()
    result = fn(item)
    # Pool workers exit via os._exit, which skips the atexit hook that
    # normally flushes the schedule disk cache — flush after each task
    # instead (merge-on-save makes concurrent flushes safe).
    from repro.dataflow.scheduler import save_schedule_cache

    save_schedule_cache()
    return result, time.perf_counter() - start


class ParallelRunner:
    """Maps a function over tasks, serially or on a process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``None`` reads ``REPRO_JOBS`` (default 1 =
        serial, no pool at all); ``0`` means the CPU count. With one job
        or one pending task the pool is skipped entirely, so ``jobs=1``
        has zero multiprocessing overhead and needs no picklability.

    Notes
    -----
    For ``jobs > 1`` the mapped function and every task must be
    picklable — in practice: a module-level function applied to plain
    data (the frozen dataclasses this codebase is built from all
    qualify).
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self._jobs = resolve_jobs(jobs)
        self._timings: List[TaskTiming] = []
        # Guards the timing list: a runner shared by service worker
        # threads must not tear its records (observe scopes are
        # per-thread and need no lock).
        self._timings_lock = threading.Lock()

    @property
    def jobs(self) -> int:
        """The resolved worker count."""
        return self._jobs

    def _record(self, timing: TaskTiming) -> None:
        """Store one task timing and notify any observation scopes."""
        with self._timings_lock:
            self._timings.append(timing)
        observe.record_task_timing(timing)

    @property
    def timings(self) -> Tuple[TaskTiming, ...]:
        """Per-task wall times of every ``map`` call so far, in order."""
        with self._timings_lock:
            return tuple(self._timings)

    @property
    def total_task_seconds(self) -> float:
        """Sum of all recorded task durations (CPU-side work)."""
        return sum(timing.seconds for timing in self.timings)

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        labels: Optional[Sequence[str]] = None,
        checkpoint: Optional[Union[CheckpointJournal, str, Path]] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> List[R]:
        """Apply ``fn`` to every task, returning results in input order.

        ``labels`` (same length as ``tasks``) name the per-task timing
        records; indices are used when omitted. ``checkpoint`` journals
        each completed task and skips tasks already journaled by a
        previous (possibly killed) run. ``retry`` turns worker crashes,
        timeouts, and task exceptions into rescheduled attempts with
        seeded backoff; without it crashes fall back to one serial
        retry pass and exceptions propagate immediately. ``timeout``
        bounds each task's wall-clock time (pool mode only).
        """
        items = list(tasks)
        if labels is None:
            names = [f"task-{index}" for index in range(len(items))]
        else:
            names = [str(label) for label in labels]
            if len(names) != len(items):
                raise ConfigurationError(
                    f"got {len(names)} labels for {len(items)} tasks"
                )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")

        results: List[Optional[R]] = [None] * len(items)
        done = [False] * len(items)
        journal = self._open_journal(checkpoint, names)
        if journal is not None:
            skipped = 0
            for index, value in journal.completed().items():
                if 0 <= index < len(items) and not done[index]:
                    results[index] = value
                    done[index] = True
                    skipped += 1
            if skipped:
                observe.record_checkpoint_skip(skipped)
        pending = [index for index in range(len(items)) if not done[index]]

        if self._jobs <= 1 or len(pending) <= 1:
            self._run_serial(
                fn, items, names, results, done, pending, retry, journal,
                mode="serial",
            )
        else:
            self._run_pool(
                fn, items, names, results, done, pending, retry, timeout,
                journal,
            )
        return results  # type: ignore[return-value]

    # -- journal ------------------------------------------------------------

    @staticmethod
    def _open_journal(
        checkpoint: Optional[Union[CheckpointJournal, str, Path]],
        names: Sequence[str],
    ) -> Optional[CheckpointJournal]:
        if checkpoint is None:
            return None
        journal = (
            checkpoint
            if isinstance(checkpoint, CheckpointJournal)
            else CheckpointJournal(checkpoint)
        )
        journal.bind(names)
        return journal

    def _complete(
        self,
        index: int,
        value: object,
        seconds: float,
        mode: str,
        retried: bool,
        names: Sequence[str],
        results: List[Optional[R]],
        done: List[bool],
        journal: Optional[CheckpointJournal],
    ) -> None:
        """Store one finished task: result slot, timing, journal entry."""
        results[index] = value  # type: ignore[assignment]
        done[index] = True
        self._record(
            TaskTiming(
                label=names[index], seconds=seconds, mode=mode,
                retried=retried,
            )
        )
        if journal is not None:
            journal.record(index, value)

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        names: Sequence[str],
        results: List[Optional[R]],
        done: List[bool],
        pending: Sequence[int],
        retry: Optional[RetryPolicy],
        journal: Optional[CheckpointJournal],
        mode: str,
    ) -> None:
        for index in pending:
            attempt = 1
            while True:
                start = time.perf_counter()
                try:
                    chaos.maybe_inject(names[index], attempt)
                    value = fn(items[index])
                except Exception:
                    if retry is not None and attempt < retry.max_attempts:
                        observe.record_task_retry()
                        delay = retry.delay(names[index], attempt)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    raise
                self._complete(
                    index, value, time.perf_counter() - start, mode,
                    attempt > 1, names, results, done, journal,
                )
                break

    # -- pool path ----------------------------------------------------------

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill a pool whose workers may be hung or already dead."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except OSError:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _fail_attempt(
        index: int,
        names: Sequence[str],
        attempts: Dict[int, int],
        retry: RetryPolicy,
        retry_next: List[int],
        kind: str,
    ) -> None:
        """Burn one attempt: schedule a retry or quarantine the task."""
        if attempts[index] >= retry.max_attempts:
            observe.record_task_quarantine()
            raise PoisonedTaskError(names[index], attempts[index], kind)
        observe.record_task_retry()
        retry_next.append(index)

    def _salvage(
        self,
        rest: Sequence[int],
        futures: Dict[int, object],
        names: Sequence[str],
        attempts: Dict[int, int],
        retry: RetryPolicy,
        retry_next: List[int],
        results: List[Optional[R]],
        done: List[bool],
        journal: Optional[CheckpointJournal],
        kind: str,
    ) -> None:
        """Triage the uncollected futures of a pool that just died.

        Futures that finished before the crash keep their results (with
        full timing attribution); everything else burns an attempt. The
        pool cannot say *which* task killed it — the first raiser in
        collection order may be an innocent in-flight neighbour — so
        refunding "victims" would let a misattributed crasher rerun at
        the same attempt number forever while the blamed innocent soaks
        up attempts until quarantine. Charging every stranded task keeps
        attempt counters monotonic, so a crashing task always advances
        past its chaos gate or exhausts its attempts.
        """
        for index in rest:
            future = futures[index]
            if future.cancelled() or not future.done():  # type: ignore[attr-defined]
                self._fail_attempt(
                    index, names, attempts, retry, retry_next, kind=kind
                )
                continue
            error = future.exception()  # type: ignore[attr-defined]
            if error is None:
                value, seconds = future.result()  # type: ignore[attr-defined]
                self._complete(
                    index, value, seconds, "pool", attempts[index] > 1,
                    names, results, done, journal,
                )
            elif isinstance(error, BrokenProcessPool):
                self._fail_attempt(
                    index, names, attempts, retry, retry_next, kind=kind
                )
            else:
                self._fail_attempt(
                    index, names, attempts, retry, retry_next, kind="error"
                )

    def _legacy_fallback(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        names: Sequence[str],
        results: List[Optional[R]],
        done: List[bool],
        rest: Sequence[int],
        journal: Optional[CheckpointJournal],
    ) -> None:
        """Serial second chance for tasks stranded by a broken pool.

        The no-policy behavior: everything not yet collected reruns
        serially in the parent — once; a second crash here is a real
        error and propagates.
        """
        import warnings

        warnings.warn(
            f"worker process crashed while running task {names[rest[0]]!r}; "
            f"retrying {len(rest)} uncollected task(s) serially",
            RuntimeWarning,
            stacklevel=4,
        )
        for index in rest:
            start = time.perf_counter()
            chaos.maybe_inject(names[index], 2)
            value = fn(items[index])
            self._complete(
                index, value, time.perf_counter() - start, "serial-retry",
                True, names, results, done, journal,
            )

    def _run_pool(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        names: Sequence[str],
        results: List[Optional[R]],
        done: List[bool],
        pending: List[int],
        retry: Optional[RetryPolicy],
        timeout: Optional[float],
        journal: Optional[CheckpointJournal],
    ) -> None:
        attempts: Dict[int, int] = {index: 0 for index in pending}
        while pending:
            for index in pending:
                attempts[index] += 1
            workers = min(self._jobs, len(pending))
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init
            )
            futures = {
                index: pool.submit(
                    _timed_call,
                    (fn, items[index], names[index], attempts[index]),
                )
                for index in pending
            }
            order = list(pending)
            retry_next: List[int] = []
            pool_dead = False
            try:
                for position, index in enumerate(order):
                    try:
                        value, seconds = futures[index].result(
                            timeout=timeout
                        )
                    except BrokenProcessPool:
                        # A worker died without raising (OOM kill,
                        # segfault in a C extension, os._exit). Every
                        # in-flight future on this pool fails the same
                        # way and the pool cannot name the killer, so
                        # every stranded task is charged an attempt
                        # (see _salvage).
                        pool_dead = True
                        self._terminate_pool(pool)
                        if retry is None:
                            rest = [
                                j for j in order[position:] if not done[j]
                            ]
                            self._legacy_fallback(
                                fn, items, names, results, done, rest,
                                journal,
                            )
                            return
                        self._fail_attempt(
                            index, names, attempts, retry, retry_next,
                            kind="crash",
                        )
                        self._salvage(
                            order[position + 1:], futures, names, attempts,
                            retry, retry_next, results, done, journal,
                            kind="crash",
                        )
                        break
                    except FuturesTimeoutError:
                        # The task overran its wall-clock budget. The
                        # worker may be hung forever, so the whole pool
                        # is killed and survivors are salvaged.
                        observe.record_task_timeout()
                        pool_dead = True
                        self._terminate_pool(pool)
                        if retry is None:
                            raise TaskTimeoutError(
                                f"task {names[index]!r} exceeded the "
                                f"{timeout:.1f}s per-task timeout"
                            ) from None
                        self._fail_attempt(
                            index, names, attempts, retry, retry_next,
                            kind="timeout",
                        )
                        self._salvage(
                            order[position + 1:], futures, names, attempts,
                            retry, retry_next, results, done, journal,
                            kind="timeout",
                        )
                        break
                    except Exception:
                        # The task itself raised in the worker; the
                        # pool is still healthy.
                        if (
                            retry is not None
                            and attempts[index] < retry.max_attempts
                        ):
                            observe.record_task_retry()
                            retry_next.append(index)
                            continue
                        raise
                    self._complete(
                        index, value, seconds, "pool", attempts[index] > 1,
                        names, results, done, journal,
                    )
            finally:
                if not pool_dead:
                    pool.shutdown(wait=True, cancel_futures=True)
            pending = sorted(retry_next)
            if retry_next and retry is not None:
                delay = max(
                    retry.delay(names[index], attempts[index])
                    for index in retry_next
                )
                if delay > 0:
                    time.sleep(delay)


def run_parallel(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    checkpoint: Optional[Union[CheckpointJournal, str, Path]] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
) -> List[R]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs).map(
        fn, tasks, labels=labels, checkpoint=checkpoint, retry=retry,
        timeout=timeout,
    )
