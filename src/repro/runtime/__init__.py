"""Parallel execution runtime and persistent result caching.

The substrate the experiment layer scales on: a process-pool runner
with a serial fallback and deterministic result ordering
(:mod:`repro.runtime.parallel`), stable content hashing for cache keys
(:mod:`repro.runtime.fingerprint`), and a persistent content-addressed
result store (:mod:`repro.runtime.cache`). See
``docs/architecture.md`` ("Runtime & caching") for the full contract.
"""

from repro.runtime.cache import (
    CacheStats,
    CacheVerifyReport,
    ResultCache,
    cache_root,
    result_cache,
)
from repro.runtime.observe import RunMetrics, collect_metrics
from repro.runtime.fingerprint import (
    CACHE_SCHEMA_VERSION,
    accelerator_fingerprint,
    content_hash,
)
from repro.runtime.parallel import (
    JOBS_ENV,
    ParallelRunner,
    TaskTiming,
    default_jobs,
    resolve_jobs,
    run_parallel,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "CacheVerifyReport",
    "JOBS_ENV",
    "ParallelRunner",
    "ResultCache",
    "RunMetrics",
    "TaskTiming",
    "collect_metrics",
    "accelerator_fingerprint",
    "cache_root",
    "content_hash",
    "default_jobs",
    "resolve_jobs",
    "result_cache",
    "run_parallel",
]
