"""Run observability: cache hit/miss counters and task-timing capture.

Any code can open a :func:`collect_metrics` scope; while it is active,
the :class:`~repro.runtime.cache.ResultCache` reports every hit, miss,
and write into it, and every :class:`~repro.runtime.parallel.
ParallelRunner` reports its per-task wall times. The experiment layer
uses this to assemble a ``RunManifest`` (see
:mod:`repro.experiments.registry`) without threading a metrics object
through every driver signature.

Scopes nest: an outer scope collecting a whole ``rota report`` run and
an inner scope collecting one section both see the section's events.
Collection is process-local — pool workers do not report back to the
parent (worker task wall times are already measured in the parent by
``ParallelRunner``), so cache counts reflect the coordinating process.

Scopes are also **thread-local**: each thread keeps its own scope
stack, so concurrent workers (the ``rota serve`` job executor runs one
experiment per thread) never interleave each other's counters. A scope
opened in one thread observes only events recorded by that thread;
single-threaded callers see exactly the old behavior.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass
class RunMetrics:
    """Mutable event sink for one observed scope."""

    cache_hits: int = 0
    cache_misses: int = 0
    cache_puts: int = 0
    cache_evictions: int = 0
    cache_corruptions: int = 0
    task_retries: int = 0
    task_timeouts: int = 0
    task_quarantines: int = 0
    checkpoint_skips: int = 0
    task_timings: List[Any] = field(default_factory=list)

    def cache_summary(self) -> Dict[str, int]:
        """The cache counters as a plain dict (manifest-ready)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "puts": self.cache_puts,
            "evictions": self.cache_evictions,
            "corruptions": self.cache_corruptions,
        }

    def resilience_summary(self) -> Dict[str, int]:
        """The resilience counters as a plain dict (manifest-ready)."""
        return {
            "retries": self.task_retries,
            "timeouts": self.task_timeouts,
            "quarantined": self.task_quarantines,
            "checkpoint_skips": self.checkpoint_skips,
            "cache_corruptions": self.cache_corruptions,
        }


#: Per-thread scope stacks, innermost last. Thread-local so concurrent
#: service workers each observe only their own events; pool workers are
#: separate processes and start with an empty stack either way.
_LOCAL = threading.local()


def _scopes() -> List[RunMetrics]:
    """This thread's active scope stack (created on first use)."""
    stack = getattr(_LOCAL, "scopes", None)
    if stack is None:
        stack = []
        _LOCAL.scopes = stack
    return stack


@contextmanager
def collect_metrics() -> Iterator[RunMetrics]:
    """Collect this thread's cache and task events until the scope exits."""
    metrics = RunMetrics()
    stack = _scopes()
    stack.append(metrics)
    try:
        yield metrics
    finally:
        stack.remove(metrics)


def record_cache_hit() -> None:
    """Count one result-cache hit in every scope active on this thread."""
    for scope in _scopes():
        scope.cache_hits += 1


def record_cache_miss() -> None:
    """Count one result-cache miss in every scope active on this thread."""
    for scope in _scopes():
        scope.cache_misses += 1


def record_cache_put() -> None:
    """Count one result-cache write in every scope active on this thread."""
    for scope in _scopes():
        scope.cache_puts += 1


def record_cache_eviction(count: int = 1) -> None:
    """Count ``count`` pruned cache entries in every active scope."""
    for scope in _scopes():
        scope.cache_evictions += count


def record_cache_corruption(count: int = 1) -> None:
    """Count ``count`` corrupt cache entries in every active scope."""
    for scope in _scopes():
        scope.cache_corruptions += count


def record_task_retry() -> None:
    """Count one retried runner task in every active scope."""
    for scope in _scopes():
        scope.task_retries += 1


def record_task_timeout() -> None:
    """Count one timed-out runner task in every active scope."""
    for scope in _scopes():
        scope.task_timeouts += 1


def record_task_quarantine() -> None:
    """Count one quarantined (retries-exhausted) task in every scope."""
    for scope in _scopes():
        scope.task_quarantines += 1


def record_checkpoint_skip(count: int = 1) -> None:
    """Count ``count`` tasks skipped via a checkpoint journal."""
    for scope in _scopes():
        scope.checkpoint_skips += count


def record_task_timing(timing: Any) -> None:
    """Record one runner task timing in every scope active on this thread."""
    for scope in _scopes():
        scope.task_timings.append(timing)
