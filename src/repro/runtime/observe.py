"""Run observability: cache hit/miss counters and task-timing capture.

Any code can open a :func:`collect_metrics` scope; while it is active,
the :class:`~repro.runtime.cache.ResultCache` reports every hit, miss,
and write into it, and every :class:`~repro.runtime.parallel.
ParallelRunner` reports its per-task wall times. The experiment layer
uses this to assemble a ``RunManifest`` (see
:mod:`repro.experiments.registry`) without threading a metrics object
through every driver signature.

Scopes nest: an outer scope collecting a whole ``rota report`` run and
an inner scope collecting one section both see the section's events.
Collection is process-local — pool workers do not report back to the
parent (worker task wall times are already measured in the parent by
``ParallelRunner``), so cache counts reflect the coordinating process.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass
class RunMetrics:
    """Mutable event sink for one observed scope."""

    cache_hits: int = 0
    cache_misses: int = 0
    cache_puts: int = 0
    task_timings: List[Any] = field(default_factory=list)

    def cache_summary(self) -> Dict[str, int]:
        """The cache counters as a plain dict (manifest-ready)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "puts": self.cache_puts,
        }


#: Active collection scopes, innermost last. Module-level (not
#: thread-local): the CLI and drivers are single-threaded, and pool
#: workers are separate processes with their own empty stack.
_SCOPES: List[RunMetrics] = []


@contextmanager
def collect_metrics() -> Iterator[RunMetrics]:
    """Collect cache and task events until the scope exits."""
    metrics = RunMetrics()
    _SCOPES.append(metrics)
    try:
        yield metrics
    finally:
        _SCOPES.remove(metrics)


def record_cache_hit() -> None:
    """Count one result-cache hit in every active scope."""
    for scope in _SCOPES:
        scope.cache_hits += 1


def record_cache_miss() -> None:
    """Count one result-cache miss in every active scope."""
    for scope in _SCOPES:
        scope.cache_misses += 1


def record_cache_put() -> None:
    """Count one result-cache write in every active scope."""
    for scope in _SCOPES:
        scope.cache_puts += 1


def record_task_timing(timing: Any) -> None:
    """Record one runner task timing in every active scope."""
    for scope in _SCOPES:
        scope.task_timings.append(timing)
