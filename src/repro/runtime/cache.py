"""Persistent content-addressed result cache.

Stores arbitrary picklable experiment results under
``<cache root>/results/<content-key>.pkl``, where the key comes from
:func:`repro.runtime.fingerprint.content_hash`. Because keys are pure
functions of the inputs, the cache needs no invalidation protocol:
changed inputs simply miss. Writes are atomic (tempfile + rename), so
concurrent worker processes can share one directory safely.

Every entry is paired with a ``.sha256`` checksum sidecar (written
*before* the payload, so a payload can never exist without its
checksum). On read, the payload is verified against the sidecar: a
corrupt, truncated, or unloadable entry is **quarantined** — moved into
a ``corrupt/`` subdirectory, counted, and treated as a miss — instead
of poisoning the run. ``rota cache --verify`` (:meth:`ResultCache.
verify`) walks the whole cache and quarantines damage proactively.

Environment knobs (matching the scheduler's on-disk cache):

* ``REPRO_CACHE_DIR`` — relocate the cache root (default
  ``~/.cache/repro``);
* ``REPRO_RESULT_CACHE=off`` — disable result caching entirely (the
  schedule cache has its own ``REPRO_SCHEDULE_CACHE`` switch);
* ``REPRO_CACHE_MAX_BYTES`` — bound the cache's disk footprint: every
  ``put`` that pushes the directory over the limit evicts the
  oldest-mtime entries until it fits again.

Clear it with ``rota cache --clear``, bound it with ``rota cache
--prune --max-bytes N``, check it with ``rota cache --verify``, or
delete the directory.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro import chaos
from repro.errors import ConfigurationError
from repro.resilience.integrity import (
    checksum_path,
    verify_bytes,
    write_with_checksum,
)
from repro.runtime import observe

#: Serializes sidecar+payload rename pairs within this process. Each
#: rename is atomic on its own, but two threads putting the same key
#: could interleave their renames and leave a mismatched (checksum,
#: payload) pair that a later get would quarantine as corrupt. Across
#: processes the same race degrades to a quarantined miss — the cache's
#: documented contract (a get returns None or an intact value) holds
#: either way.
_WRITE_LOCK = threading.Lock()

#: Unpickling failure modes treated as entry damage, not bugs.
_LOAD_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    TypeError,
)


def cache_root() -> Path:
    """The root cache directory (shared with the schedule cache)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro"


def results_enabled() -> bool:
    """Whether the persistent result cache is switched on."""
    return os.environ.get("REPRO_RESULT_CACHE", "").lower() != "off"


def max_bytes_env() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` disk bound (``None`` = unbounded).

    Unparseable or non-positive values mean unbounded — a typo in an
    environment variable must not start evicting cached work.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the result cache's disk footprint."""

    path: str
    enabled: bool
    entries: int
    total_bytes: int
    #: Entries evicted by size-bound pruning over the cache's lifetime
    #: (persisted beside the entries; reset by ``clear()``).
    evictions: int = 0
    #: Entries quarantined after failing checksum or load verification
    #: (persisted beside the entries; reset by ``clear()``).
    corruptions: int = 0

    def format(self) -> str:
        """Human-readable one-paragraph summary."""
        state = "enabled" if self.enabled else "disabled (REPRO_RESULT_CACHE=off)"
        size_kib = self.total_bytes / 1024
        return (
            f"result cache at {self.path} [{state}]\n"
            f"  {self.entries} entries, {size_kib:.1f} KiB, "
            f"{self.evictions} evictions, {self.corruptions} corruptions"
        )


@dataclass(frozen=True)
class CacheVerifyReport:
    """Outcome of one full-cache integrity walk (``rota cache --verify``)."""

    path: str
    checked: int
    ok: int
    corrupt: int
    unverified: int
    quarantined: Tuple[str, ...] = field(default_factory=tuple)

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"verified {self.checked} cache entr"
            f"{'y' if self.checked == 1 else 'ies'} at {self.path}",
            f"  ok: {self.ok}  corrupt: {self.corrupt}  "
            f"unverified (no checksum): {self.unverified}",
        ]
        for name in self.quarantined:
            lines.append(f"  quarantined {name} -> corrupt/")
        return "\n".join(lines)


class ResultCache:
    """A content-addressed pickle store for experiment results.

    Parameters
    ----------
    directory:
        Where entries live; defaults to ``<cache root>/results``.
    enabled:
        Override the ``REPRO_RESULT_CACHE`` environment switch (mainly
        for tests). A disabled cache is a no-op: ``get`` always misses
        and ``put`` never writes.
    max_bytes:
        Disk-footprint bound; defaults to ``REPRO_CACHE_MAX_BYTES``
        (unbounded when unset). When bounded, every ``put`` that pushes
        the directory over the limit prunes oldest-mtime entries first.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        enabled: Optional[bool] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._directory = Path(directory) if directory else cache_root() / "results"
        self._enabled = results_enabled() if enabled is None else enabled
        self._max_bytes = max_bytes_env() if max_bytes is None else max_bytes

    @property
    def directory(self) -> Path:
        """The directory entries are stored in."""
        return self._directory

    @property
    def enabled(self) -> bool:
        """Whether this cache reads and writes anything."""
        return self._enabled

    def _entry_path(self, key: str) -> Path:
        return self._directory / f"{key}.pkl"

    @property
    def _quarantine_dir(self) -> Path:
        """Where damaged entries are moved for post-mortem inspection."""
        return self._directory / "corrupt"

    @property
    def _eviction_counter(self) -> Path:
        """Sidecar file persisting the lifetime eviction count."""
        return self._directory / "evictions.count"

    @property
    def _corruption_counter(self) -> Path:
        """Sidecar file persisting the lifetime corruption count."""
        return self._directory / "corruptions.count"

    @staticmethod
    def _read_counter(path: Path) -> int:
        try:
            return int(path.read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def eviction_count(self) -> int:
        """Entries evicted by pruning since the cache was last cleared."""
        return self._read_counter(self._eviction_counter)

    def corruption_count(self) -> int:
        """Entries quarantined as corrupt since the cache was last cleared."""
        return self._read_counter(self._corruption_counter)

    def _record_evictions(self, removed: int) -> None:
        """Bump the persistent counter and every active metrics scope.

        Best-effort like the rest of the cache: two concurrent pruners
        may race the read-modify-write and undercount, which is
        acceptable for a housekeeping statistic — what matters is that
        evictions stop being silent.
        """
        observe.record_cache_eviction(removed)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            total = self.eviction_count() + removed
            self._eviction_counter.write_text(f"{total}\n")
        except OSError:
            pass

    def _quarantine(self, path: Path) -> bool:
        """Move a damaged entry (and its sidecar) into ``corrupt/``.

        Returns ``True`` when the entry was moved. Counts the
        corruption both persistently and in active metrics scopes.
        """
        moved = False
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self._quarantine_dir / path.name)
            moved = True
        except OSError:
            try:
                path.unlink()
                moved = True
            except OSError:
                pass
        sidecar = checksum_path(path)
        try:
            os.replace(sidecar, self._quarantine_dir / sidecar.name)
        except OSError:
            try:
                sidecar.unlink()
            except OSError:
                pass
        if moved:
            observe.record_cache_corruption()
            try:
                total = self.corruption_count() + 1
                self._corruption_counter.write_text(f"{total}\n")
            except OSError:
                pass
        return moved

    def get(self, key: str) -> Optional[Any]:
        """Load the entry for ``key``, or ``None`` on a miss.

        Entries failing checksum verification — or that verify but no
        longer unpickle (schema drift) — are quarantined into
        ``corrupt/`` and count as misses; a damaged entry must never
        poison a run, and never silently serves a second request.
        """
        if not self._enabled:
            observe.record_cache_miss()
            return None
        path = self._entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            observe.record_cache_miss()
            return None
        if verify_bytes(path, data) == "corrupt":
            self._quarantine(path)
            observe.record_cache_miss()
            return None
        try:
            value = pickle.loads(data)
        except _LOAD_ERRORS:
            self._quarantine(path)
            observe.record_cache_miss()
            return None
        observe.record_cache_hit()
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically, with a checksum.

        The sidecar is written first and always covers the true
        payload bytes, so any divergence between the two — a torn
        write, bit rot, or chaos-injected corruption — is caught by
        the next ``get``. Best effort: a full disk or unpicklable
        payload must not fail the run.
        """
        if not self._enabled:
            return
        observe.record_cache_put()
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            payload = chaos.maybe_corrupt(f"cache:{key}", data)
            self._directory.mkdir(parents=True, exist_ok=True)
            with _WRITE_LOCK:
                write_with_checksum(
                    self._entry_path(key), data, payload=payload
                )
        except (OSError, pickle.PicklingError):
            pass
        if self._max_bytes is not None:
            self.prune(self._max_bytes)

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-mtime entries until the cache fits ``max_bytes``.

        Returns how many entries were removed (checksum sidecars go
        with them; only ``.pkl`` bytes count toward the bound).
        Entries that vanish or error mid-scan (a concurrent ``clear``
        or prune) are skipped — pruning is best-effort housekeeping,
        never a correctness step.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        total = 0
        if not self._directory.is_dir():
            return 0
        for path in self._directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda entry: (entry[0], entry[2].name))
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            try:
                checksum_path(path).unlink()
            except OSError:
                pass
            total -= size
            removed += 1
        if removed:
            self._record_evictions(removed)
        return removed

    def verify(self) -> CacheVerifyReport:
        """Walk every entry, quarantining any that fail verification.

        An entry is damaged when its bytes mismatch the checksum
        sidecar or no longer unpickle; damaged entries move to
        ``corrupt/``. Entries with no sidecar (written before checksums
        existed) are reported as ``unverified`` but left in place.
        """
        checked = ok = corrupt = unverified = 0
        quarantined: List[str] = []
        if self._directory.is_dir():
            for path in sorted(self._directory.glob("*.pkl")):
                checked += 1
                try:
                    data = path.read_bytes()
                except OSError:
                    continue
                status = verify_bytes(path, data)
                if status == "ok":
                    try:
                        pickle.loads(data)
                    except _LOAD_ERRORS:
                        status = "corrupt"
                if status == "corrupt":
                    corrupt += 1
                    if self._quarantine(path):
                        quarantined.append(path.name)
                elif status == "unverified":
                    unverified += 1
                else:
                    ok += 1
        return CacheVerifyReport(
            path=str(self._directory),
            checked=checked,
            ok=ok,
            corrupt=corrupt,
            unverified=unverified,
            quarantined=tuple(quarantined),
        )

    def __contains__(self, key: str) -> bool:
        return self._enabled and self._entry_path(key).exists()

    def clear(self) -> int:
        """Delete every entry, sidecar, counter, and quarantined file.

        Returns how many entries were removed.
        """
        removed = 0
        if not self._directory.is_dir():
            return removed
        for path in self._directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            try:
                checksum_path(path).unlink()
            except OSError:
                pass
        for counter in (self._eviction_counter, self._corruption_counter):
            try:
                counter.unlink()
            except OSError:
                pass
        if self._quarantine_dir.is_dir():
            for path in self._quarantine_dir.iterdir():
                try:
                    path.unlink()
                except OSError:
                    pass
            try:
                self._quarantine_dir.rmdir()
            except OSError:
                pass
        return removed

    def stats(self) -> CacheStats:
        """Entry count and byte footprint of the cache directory."""
        entries = 0
        total = 0
        if self._directory.is_dir():
            for path in self._directory.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return CacheStats(
            path=str(self._directory),
            enabled=self._enabled,
            entries=entries,
            total_bytes=total,
            evictions=self.eviction_count(),
            corruptions=self.corruption_count(),
        )


def result_cache() -> ResultCache:
    """The default result cache, resolved from the environment."""
    return ResultCache()
