"""Persistent content-addressed result cache.

Stores arbitrary picklable experiment results under
``<cache root>/results/<content-key>.pkl``, where the key comes from
:func:`repro.runtime.fingerprint.content_hash`. Because keys are pure
functions of the inputs, the cache needs no invalidation protocol:
changed inputs simply miss. Writes are atomic (tempfile + rename), so
concurrent worker processes can share one directory safely.

Environment knobs (matching the scheduler's on-disk cache):

* ``REPRO_CACHE_DIR`` — relocate the cache root (default
  ``~/.cache/repro``);
* ``REPRO_RESULT_CACHE=off`` — disable result caching entirely (the
  schedule cache has its own ``REPRO_SCHEDULE_CACHE`` switch);
* ``REPRO_CACHE_MAX_BYTES`` — bound the cache's disk footprint: every
  ``put`` that pushes the directory over the limit evicts the
  oldest-mtime entries until it fits again.

Clear it with ``rota cache --clear``, bound it with ``rota cache
--prune --max-bytes N``, or delete the directory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.runtime import observe


def cache_root() -> Path:
    """The root cache directory (shared with the schedule cache)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro"


def results_enabled() -> bool:
    """Whether the persistent result cache is switched on."""
    return os.environ.get("REPRO_RESULT_CACHE", "").lower() != "off"


def max_bytes_env() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` disk bound (``None`` = unbounded).

    Unparseable or non-positive values mean unbounded — a typo in an
    environment variable must not start evicting cached work.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the result cache's disk footprint."""

    path: str
    enabled: bool
    entries: int
    total_bytes: int
    #: Entries evicted by size-bound pruning over the cache's lifetime
    #: (persisted beside the entries; reset by ``clear()``).
    evictions: int = 0

    def format(self) -> str:
        """Human-readable one-paragraph summary."""
        state = "enabled" if self.enabled else "disabled (REPRO_RESULT_CACHE=off)"
        size_kib = self.total_bytes / 1024
        return (
            f"result cache at {self.path} [{state}]\n"
            f"  {self.entries} entries, {size_kib:.1f} KiB, "
            f"{self.evictions} evictions"
        )


class ResultCache:
    """A content-addressed pickle store for experiment results.

    Parameters
    ----------
    directory:
        Where entries live; defaults to ``<cache root>/results``.
    enabled:
        Override the ``REPRO_RESULT_CACHE`` environment switch (mainly
        for tests). A disabled cache is a no-op: ``get`` always misses
        and ``put`` never writes.
    max_bytes:
        Disk-footprint bound; defaults to ``REPRO_CACHE_MAX_BYTES``
        (unbounded when unset). When bounded, every ``put`` that pushes
        the directory over the limit prunes oldest-mtime entries first.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        enabled: Optional[bool] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._directory = Path(directory) if directory else cache_root() / "results"
        self._enabled = results_enabled() if enabled is None else enabled
        self._max_bytes = max_bytes_env() if max_bytes is None else max_bytes

    @property
    def directory(self) -> Path:
        """The directory entries are stored in."""
        return self._directory

    @property
    def enabled(self) -> bool:
        """Whether this cache reads and writes anything."""
        return self._enabled

    def _entry_path(self, key: str) -> Path:
        return self._directory / f"{key}.pkl"

    @property
    def _eviction_counter(self) -> Path:
        """Sidecar file persisting the lifetime eviction count."""
        return self._directory / "evictions.count"

    def eviction_count(self) -> int:
        """Entries evicted by pruning since the cache was last cleared."""
        try:
            return int(self._eviction_counter.read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def _record_evictions(self, removed: int) -> None:
        """Bump the persistent counter and every active metrics scope.

        Best-effort like the rest of the cache: two concurrent pruners
        may race the read-modify-write and undercount, which is
        acceptable for a housekeeping statistic — what matters is that
        evictions stop being silent.
        """
        observe.record_cache_eviction(removed)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            total = self.eviction_count() + removed
            self._eviction_counter.write_text(f"{total}\n")
        except OSError:
            pass

    def get(self, key: str) -> Optional[Any]:
        """Load the entry for ``key``, or ``None`` on a miss.

        Corrupt or unreadable entries count as misses (a concurrent
        writer may be mid-rename on a non-POSIX filesystem; a partial
        entry must never poison a run).
        """
        if not self._enabled:
            observe.record_cache_miss()
            return None
        path = self._entry_path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            observe.record_cache_miss()
            return None
        observe.record_cache_hit()
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (best effort)."""
        if not self._enabled:
            return
        observe.record_cache_put()
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self._directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass  # a full disk or unpicklable payload must not fail the run
        if self._max_bytes is not None:
            self.prune(self._max_bytes)

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-mtime entries until the cache fits ``max_bytes``.

        Returns how many entries were removed. Entries that vanish or
        error mid-scan (a concurrent ``clear`` or prune) are skipped —
        pruning is best-effort housekeeping, never a correctness step.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        total = 0
        if not self._directory.is_dir():
            return 0
        for path in self._directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda entry: (entry[0], entry[2].name))
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            self._record_evictions(removed)
        return removed

    def __contains__(self, key: str) -> bool:
        return self._enabled and self._entry_path(key).exists()

    def clear(self) -> int:
        """Delete every entry (and the eviction counter); returns the count."""
        removed = 0
        if not self._directory.is_dir():
            return removed
        for path in self._directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self._eviction_counter.unlink()
        except OSError:
            pass
        return removed

    def stats(self) -> CacheStats:
        """Entry count and byte footprint of the cache directory."""
        entries = 0
        total = 0
        if self._directory.is_dir():
            for path in self._directory.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return CacheStats(
            path=str(self._directory),
            enabled=self._enabled,
            entries=entries,
            total_bytes=total,
            evictions=self.eviction_count(),
        )


def result_cache() -> ResultCache:
    """The default result cache, resolved from the environment."""
    return ResultCache()
