"""Stable content hashing for cache keys.

The persistent result cache (:mod:`repro.runtime.cache`) and the
scheduler's on-disk cache address entries by *content*: a key is the
SHA-256 of a canonical tokenization of everything that determines the
result — accelerator configuration, scheduler options, tile streams,
policy, iteration count, and a cache schema version. Two processes (or
two machines) computing the same experiment therefore agree on the key
without any coordination, and any change to an input changes the key.

Tokenization is deliberately conservative: only plain data
(dataclasses, enums, numpy arrays, containers, primitives) is accepted,
and unknown objects raise instead of falling back to ``repr`` — a cache
key silently derived from an object's address would alias distinct
configurations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

#: Bump whenever the semantics of cached results change (e.g. the engine
#: produces different counts for the same inputs). Part of every key, so
#: stale entries from older code miss instead of aliasing.
#: 3: RunManifest grew resilience counters and per-task retry flags.
CACHE_SCHEMA_VERSION = 3


def _tokenize(value: Any) -> Any:
    """Convert a value into a JSON-serializable canonical token."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; json would too, but keeping
        # the token a string sidesteps locale/precision ambiguity.
        return ["float", repr(value)]
    if isinstance(value, Enum):
        return ["enum", type(value).__name__, _tokenize(value.value)]
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return ["ndarray", str(value.dtype), list(value.shape), digest]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return ["float", repr(float(value))]
    if isinstance(value, bytes):
        return ["bytes", hashlib.sha256(value).hexdigest()]
    if isinstance(value, np.random.SeedSequence):
        # Checkpoint journals key Monte Carlo runs by their seed
        # sequence; entropy + spawn_key fully determine the stream.
        return [
            "seedseq",
            _tokenize(value.entropy),
            [_tokenize(part) for part in value.spawn_key],
            int(value.pool_size),
        ]
    if is_dataclass(value) and not isinstance(value, type):
        return [
            "dataclass",
            type(value).__name__,
            [[f.name, _tokenize(getattr(value, f.name))] for f in fields(value)],
        ]
    if isinstance(value, dict):
        items = [[_tokenize(k), _tokenize(v)] for k, v in value.items()]
        items.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return ["dict", items]
    if isinstance(value, (list, tuple)):
        return ["seq", [_tokenize(item) for item in value]]
    if isinstance(value, (set, frozenset)):
        tokens = [_tokenize(item) for item in value]
        tokens.sort(key=lambda token: json.dumps(token, sort_keys=True))
        return ["set", tokens]
    raise ConfigurationError(
        f"cannot fingerprint object of type {type(value).__name__}; "
        f"pass plain data (dataclasses, enums, arrays, containers)"
    )


def content_hash(*parts: Any) -> str:
    """Stable SHA-256 content key of the given parts (hex, 40 chars).

    Identical inputs produce identical keys across processes, Python
    versions, and machines; any differing field produces a different
    key. Accepts dataclasses, enums, numpy arrays, dicts, sequences,
    sets, and primitives — anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    payload = json.dumps(
        _tokenize(list(parts)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def accelerator_fingerprint(accelerator) -> str:
    """Content key of a full accelerator configuration.

    Uses the serialization round-trip dict, so every hardware parameter
    (buffers, NoC, DRAM, clock, topology) participates — two
    accelerators with equal array dimensions but different buffer or NoC
    configurations hash differently.
    """
    from repro.arch.serialize import accelerator_to_dict

    return content_hash("accelerator", accelerator_to_dict(accelerator))
