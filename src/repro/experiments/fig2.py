"""Fig. 2: PE utilization of energy-optimal schedules on Eyeriss.

Fig. 2a reports the average PE utilization of each Table II workload
(paper average: 55.8%); Fig. 2b shows the drastic per-layer variation
within SqueezeNet. Both come straight out of the scheduler: utilization
is ``(x * y) / (w * h)`` of each layer's energy-optimal mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.experiments.common import execution_for
from repro.experiments.result import JsonResultMixin
from repro.workloads.registry import network_names


@dataclass(frozen=True)
class UtilizationResult(JsonResultMixin):
    """Fig. 2a data: mean PE utilization per workload."""

    rows: Tuple[Tuple[str, float], ...]

    @property
    def overall_mean(self) -> float:
        """Mean across workloads (the paper's 55.8% headline)."""
        return math.fsum(value for _, value in self.rows) / len(self.rows)

    def format(self) -> str:
        """Paper-style table of per-workload utilization."""
        table_rows = [(name, f"{value:.1%}") for name, value in self.rows]
        table_rows.append(("AVERAGE", f"{self.overall_mean:.1%}"))
        return format_table(
            ("network", "mean PE utilization"),
            table_rows,
            title="Fig. 2a — PE utilization of DNN workloads (paper avg: 55.8%)",
        )


@dataclass(frozen=True)
class LayerUtilizationResult(JsonResultMixin):
    """Fig. 2b data: per-layer utilization of one network."""

    network: str
    rows: Tuple[Tuple[str, float], ...]

    @property
    def spread(self) -> float:
        """Max minus min per-layer utilization."""
        values = [value for _, value in self.rows]
        return max(values) - min(values)

    def format(self) -> str:
        """Paper-style table of per-layer utilization."""
        table_rows = [(name, f"{value:.1%}") for name, value in self.rows]
        return format_table(
            ("layer", "PE utilization"),
            table_rows,
            title=f"Fig. 2b — PE utilization of {self.network} layers",
        )


def run_fig2a(accelerator: Optional[Accelerator] = None) -> UtilizationResult:
    """Mean PE utilization of every Table II workload (Fig. 2a)."""
    rows: List[Tuple[str, float]] = []
    for name in network_names():
        execution = execution_for(name, accelerator)
        rows.append((name, execution.mean_utilization))
    return UtilizationResult(rows=tuple(rows))


def run_fig2b(
    network: str = "SqueezeNet", accelerator: Optional[Accelerator] = None
) -> LayerUtilizationResult:
    """Per-layer PE utilization of one network (Fig. 2b uses SqueezeNet)."""
    execution = execution_for(network, accelerator)
    rows = tuple(
        (layer_execution.layer.name, layer_execution.utilization)
        for layer_execution in execution.layers
    )
    return LayerUtilizationResult(network=execution.network_name, rows=rows)


@dataclass(frozen=True)
class UtilizationReport(JsonResultMixin):
    """Fig. 2 as one artifact: the 2a table plus an optional 2b zoom."""

    overall: UtilizationResult
    per_layer: Optional[LayerUtilizationResult]

    def format(self) -> str:
        """Fig. 2a, then Fig. 2b when a network was zoomed into."""
        parts = [self.overall.format()]
        if self.per_layer is not None:
            parts.append(self.per_layer.format())
        return "\n\n".join(parts)


def run_utilization(
    network: Optional[str] = None, accelerator: Optional[Accelerator] = None
) -> UtilizationReport:
    """The registry's Fig. 2 driver: 2a always, 2b when ``network`` given."""
    return UtilizationReport(
        overall=run_fig2a(accelerator),
        per_layer=run_fig2b(network, accelerator) if network else None,
    )
