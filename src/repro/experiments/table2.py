"""Table II: the workload roster.

Reproduces the paper's workload table with the derived size statistics
(layers, MACs, parameters) our shape tables imply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.result import JsonResultMixin
from repro.workloads.base import Network
from repro.workloads.registry import all_networks


@dataclass(frozen=True)
class Table2Result(JsonResultMixin):
    """The roster with per-network statistics."""

    networks: Tuple[Network, ...]

    def format(self) -> str:
        """Paper-style Table II plus derived statistics."""
        rows = [
            (
                network.domain,
                network.name,
                network.abbreviation,
                network.feature,
                network.num_layers,
                f"{network.total_macs / 1e9:.2f}",
                f"{network.total_weight_bytes / 1e6:.1f}",
            )
            for network in self.networks
        ]
        return format_table(
            ("DNN domain", "network", "abbr", "feature", "layers", "GMAC", "MB"),
            rows,
            title="Table II — DNN workloads used in experiments",
        )


def run_table2() -> Table2Result:
    """Materialize every Table II network."""
    return Table2Result(networks=tuple(all_networks()))
