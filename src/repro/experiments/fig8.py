"""Fig. 8: relative lifetime improvement of RWL and RWL+RO per workload.

For every Table II network, run the baseline / RWL / RWL+RO schemes over
the same tile streams and evaluate Eq. 4 on the resulting usage ledgers.
The paper reports 1.69x average for RWL+RO, 1.65x for RWL-only, a gap on
the small networks (MobileNet v3, EfficientNet, MobileViT), and the
largest gain on the lowest-utilization workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.experiments.common import execution_for, run_policies
from repro.experiments.result import JsonResultMixin
from repro.reliability.lifetime import improvement_from_counts
from repro.runtime import ParallelRunner
from repro.workloads.registry import get_network, network_names

#: The trio of small networks the paper singles out (Section V-B).
SMALL_NETWORKS = ("MobileNet v3", "EfficientNet", "MobileViT")


@dataclass(frozen=True)
class WorkloadImprovement:
    """Eq. 4 lifetime improvements of one workload."""

    network: str
    abbreviation: str
    utilization: float
    rwl: float
    rwl_ro: float

    @property
    def ro_gain(self) -> float:
        """How much residual optimization adds over RWL alone."""
        return self.rwl_ro / self.rwl


@dataclass(frozen=True)
class Fig8Result(JsonResultMixin):
    """Per-workload improvements plus the paper's aggregate statements."""

    iterations: int
    rows: Tuple[WorkloadImprovement, ...]

    def row_for(self, network: str) -> WorkloadImprovement:
        """Look up one workload's row by name or abbreviation."""
        for row in self.rows:
            if network in (row.network, row.abbreviation):
                return row
        raise KeyError(network)

    @property
    def mean_rwl(self) -> float:
        """Geometric-mean-free average, matching the paper's arithmetic mean."""
        return math.fsum(row.rwl for row in self.rows) / len(self.rows)

    @property
    def mean_rwl_ro(self) -> float:
        """Average RWL+RO improvement (paper: 1.69x)."""
        return math.fsum(row.rwl_ro for row in self.rows) / len(self.rows)

    @property
    def best_network(self) -> WorkloadImprovement:
        """Workload with the largest RWL+RO improvement."""
        return max(self.rows, key=lambda row: row.rwl_ro)

    @property
    def small_network_gap(self) -> float:
        """Mean RO gain over RWL on the paper's three small networks."""
        rows = [row for row in self.rows if row.network in SMALL_NETWORKS]
        return math.fsum(row.ro_gain for row in rows) / len(rows)

    def utilization_correlation(self) -> float:
        """Correlation of improvement with PE utilization (paper: strong).

        The paper observes improvements track *low* utilization, so the
        expected sign is negative.
        """
        import numpy as np

        utils = [row.utilization for row in self.rows]
        gains = [row.rwl_ro for row in self.rows]
        return float(np.corrcoef(utils, gains)[0, 1])

    def format(self) -> str:
        """Paper-style Fig. 8 table."""
        table_rows = [
            (
                row.abbreviation,
                f"{row.utilization:.1%}",
                f"{row.rwl:.2f}x",
                f"{row.rwl_ro:.2f}x",
                f"{row.ro_gain:.3f}",
            )
            for row in self.rows
        ]
        table_rows.append(
            ("AVG", "", f"{self.mean_rwl:.2f}x", f"{self.mean_rwl_ro:.2f}x", "")
        )
        return format_table(
            ("network", "PE util", "RWL", "RWL+RO", "RO gain"),
            table_rows,
            title=(
                f"Fig. 8 — relative lifetime vs baseline after "
                f"{self.iterations} iterations (paper: RWL 1.65x, RWL+RO 1.69x)"
            ),
        )


def _workload_row(spec: Tuple) -> WorkloadImprovement:
    """Evaluate one workload (module-level so the pool can pickle it)."""
    name, accelerator, iterations = spec
    network = get_network(name)
    execution = execution_for(name, accelerator)
    results = run_policies(
        execution.streams(),
        accelerator,
        iterations=iterations,
        record_trace=False,
    )
    baseline = results["baseline"].counts
    return WorkloadImprovement(
        network=network.name,
        abbreviation=network.abbreviation,
        utilization=execution.mean_utilization,
        rwl=improvement_from_counts(baseline, results["rwl"].counts),
        rwl_ro=improvement_from_counts(baseline, results["rwl+ro"].counts),
    )


def run_fig8(
    accelerator: Optional[Accelerator] = None,
    iterations: int = 200,
    jobs: Optional[int] = None,
) -> Fig8Result:
    """Compute Fig. 8 for every Table II workload.

    The per-workload evaluations are independent, so they fan out over
    a :class:`~repro.runtime.parallel.ParallelRunner` (``jobs=None``
    reads ``REPRO_JOBS``; serial by default). Row order and contents
    are identical for any job count.
    """
    names = network_names()
    runner = ParallelRunner(jobs)
    rows = runner.map(
        _workload_row,
        [(name, accelerator, iterations) for name in names],
        labels=names,
    )
    return Fig8Result(iterations=iterations, rows=tuple(rows))
