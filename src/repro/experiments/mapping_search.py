"""Registry driver for ``rota mapping-search``.

Searches every distinct layer shape of one network with the configured
mode (:mod:`repro.dataflow.search`), prices a greedy baseline alongside,
and reports — per layer — the greedy point, the best point under the
objective, the energy/wear Pareto frontier, and the *wear pick*: the
lowest peak-to-mean candidate whose energy stays within ``tolerance``
of the greedy baseline. A layer counts as *improved* when its wear pick
beats the greedy MTTF proxy without leaving the energy envelope — the
headline number the CI smoke gate asserts is nonzero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dataflow.layer import LayerShape
from repro.dataflow.scheduler import SchedulerOptions
from repro.dataflow.search import LayerSearchResult, search_network
from repro.dataflow.space import layer_signature
from repro.experiments.common import paper_accelerator
from repro.experiments.result import JsonResultMixin
from repro.workloads.registry import get_network

__all__ = [
    "LayerSearchRow",
    "MappingSearchResult",
    "ParetoPoint",
    "run_mapping_search",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One point of a layer's energy/wear Pareto frontier."""

    energy_pj: float
    peak_ppm: float
    mttf_proxy: float
    space: Tuple[int, int]
    num_tiles: int


@dataclass(frozen=True)
class LayerSearchRow:
    """Search outcome for one distinct layer shape."""

    layer: str
    #: How many layers of the network share this shape.
    count: int
    shape: str
    greedy_energy_pj: float
    greedy_peak_ppm: float
    greedy_mttf: float
    best_energy_pj: float
    best_peak_ppm: float
    best_mttf: float
    #: The wear pick: lowest peak-to-mean within the energy envelope.
    pick_energy_pj: float
    pick_peak_ppm: float
    pick_mttf: float
    #: Energy overhead of the pick vs greedy (fraction; 0.02 = +2%).
    energy_overhead: float
    #: Whether the pick strictly improves the MTTF proxy over greedy.
    improved: bool
    evaluated: int
    pruned: int
    pareto: Tuple[ParetoPoint, ...]


@dataclass(frozen=True)
class MappingSearchResult(JsonResultMixin):
    """Per-layer Pareto table of one wear-aware mapping search."""

    network: str
    accelerator: str
    objective: str
    search: str
    beam_width: int
    tolerance: float
    rows: Tuple[LayerSearchRow, ...]
    #: Distinct layer shapes whose wear pick improves the MTTF proxy
    #: within the energy envelope.
    improved_layers: int
    total_layers: int
    limit: Optional[int]

    def format(self) -> str:
        """The per-layer Pareto table, paper-report style."""
        lines = [
            f"mapping search — {self.network} on {self.accelerator} "
            f"({self.search}, objective={self.objective}, "
            f"beam={self.beam_width}, tolerance={self.tolerance:.0%})",
            f"{self.improved_layers}/{self.total_layers} distinct layer "
            f"shape(s) improve the MTTF proxy within the energy envelope",
            "",
            f"{'layer':<14} {'xN':>3} {'greedy uJ':>10} {'g-ppm':>6} "
            f"{'pick uJ':>9} {'p-ppm':>6} {'dE':>6} {'mttf':>11} {'cand':>6}",
        ]
        for row in self.rows:
            mark = "*" if row.improved else " "
            lines.append(
                f"{row.layer:<14} x{row.count:<2d} "
                f"{row.greedy_energy_pj / 1e6:>10.3f} "
                f"{row.greedy_peak_ppm:>6.2f} "
                f"{row.pick_energy_pj / 1e6:>9.3f} "
                f"{row.pick_peak_ppm:>6.2f} "
                f"{row.energy_overhead:>+6.1%} "
                f"{row.greedy_mttf:.2f}->{row.pick_mttf:.2f}{mark} "
                f"{row.evaluated:>6d}"
            )
        lines.append("")
        lines.append("Pareto frontiers (energy uJ @ peak-to-mean):")
        for row in self.rows:
            points = ", ".join(
                f"{p.energy_pj / 1e6:.3f}@{p.peak_ppm:.2f}" for p in row.pareto
            )
            lines.append(f"  {row.layer:<14} {points}")
        return "\n".join(lines)


def _pareto_points(
    result: LayerSearchResult, max_points: Optional[int]
) -> Tuple[ParetoPoint, ...]:
    from repro.dataflow.search import pareto_front

    frontier = pareto_front(result.pareto, max_points=max_points)
    return tuple(
        ParetoPoint(
            energy_pj=evaluation.energy_pj,
            peak_ppm=evaluation.peak_ppm,
            mttf_proxy=evaluation.mttf_proxy,
            space=evaluation.space_shape,
            num_tiles=evaluation.num_tiles,
        )
        for evaluation in frontier
    )


def run_mapping_search(
    network: str = "SqueezeNet",
    objective: str = "energy-wear",
    search: str = "beam",
    beam_width: int = 8,
    tolerance: float = 0.05,
    max_points: int = 6,
    limit: Optional[int] = None,
    jobs: Optional[int] = None,
) -> MappingSearchResult:
    """Search a network's mapping spaces and report the Pareto table."""
    accelerator = paper_accelerator()
    net = get_network(network)
    options = SchedulerOptions(
        objective=objective, search=search, beam_width=beam_width
    )
    greedy_options = SchedulerOptions(objective="energy", search="greedy")

    searched = search_network(accelerator, net.layers, options, jobs=jobs)
    baseline = search_network(
        accelerator, net.layers, greedy_options, jobs=jobs
    )

    counts: Dict[Tuple, int] = {}
    for layer in net.layers:
        signature = layer_signature(layer)
        counts[signature] = counts.get(signature, 0) + 1

    rows: List[LayerSearchRow] = []
    improved_layers = 0
    signatures = list(searched)
    if limit is not None:
        signatures = signatures[: max(0, int(limit))]
    for signature in signatures:
        result = searched[signature]
        greedy = baseline[signature].best
        envelope = greedy.energy_pj * (1.0 + max(0.0, tolerance))
        # The wear pick: lowest peak-to-mean candidate (frontier point)
        # whose energy stays inside the envelope; greedy itself is
        # always a legal fallback.
        eligible = [
            evaluation
            for evaluation in result.pareto
            if evaluation.energy_pj <= envelope
        ]
        pick = (
            min(eligible, key=lambda e: (e.peak_ppm, e.energy_pj))
            if eligible
            else greedy
        )
        improved = pick.mttf_proxy > greedy.mttf_proxy
        if improved:
            improved_layers += 1
        layer = result.layer
        rows.append(
            LayerSearchRow(
                layer=layer.name,
                count=counts[signature],
                shape=layer.describe(),
                greedy_energy_pj=greedy.energy_pj,
                greedy_peak_ppm=greedy.peak_ppm,
                greedy_mttf=greedy.mttf_proxy,
                best_energy_pj=result.best.energy_pj,
                best_peak_ppm=result.best.peak_ppm,
                best_mttf=result.best.mttf_proxy,
                pick_energy_pj=pick.energy_pj,
                pick_peak_ppm=pick.peak_ppm,
                pick_mttf=pick.mttf_proxy,
                energy_overhead=(
                    pick.energy_pj / greedy.energy_pj - 1.0
                    if greedy.energy_pj
                    else 0.0
                ),
                improved=improved,
                evaluated=result.stats.evaluated,
                pruned=result.stats.pruned,
                pareto=_pareto_points(result, max_points),
            )
        )
    return MappingSearchResult(
        network=net.name,
        accelerator=accelerator.name,
        objective=objective,
        search=search,
        beam_width=beam_width,
        tolerance=tolerance,
        rows=tuple(rows),
        improved_layers=improved_layers,
        total_layers=len(signatures),
        limit=limit,
    )
