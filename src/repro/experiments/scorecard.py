"""The reproduction scorecard: every paper claim, one pass/fail table.

``rota scorecard`` re-evaluates the qualitative acceptance criteria of
EXPERIMENTS.md in one run — the quick answer to "does this reproduction
still hold on my machine?" without reading benchmark output. Iteration
counts are reduced relative to the full benches (the shapes are visible
well before the paper's 1,000 iterations); the heavyweight versions live
in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_table
from repro.experiments.result import JsonResultMixin


@dataclass(frozen=True)
class ScorecardEntry:
    """One claim's verdict."""

    artifact: str
    claim: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class Scorecard(JsonResultMixin):
    """All claims, with the overall verdict."""

    entries: Tuple[ScorecardEntry, ...]

    @property
    def all_passed(self) -> bool:
        """Every claim holds."""
        return all(entry.passed for entry in self.entries)

    @property
    def num_passed(self) -> int:
        """Count of holding claims."""
        return sum(1 for entry in self.entries if entry.passed)

    def format(self) -> str:
        """The scoreboard."""
        rows = [
            (
                "PASS" if entry.passed else "FAIL",
                entry.artifact,
                entry.claim,
                entry.measured,
            )
            for entry in self.entries
        ]
        verdict = (
            f"{self.num_passed}/{len(self.entries)} claims hold"
            + ("" if self.all_passed else " — REPRODUCTION BROKEN")
        )
        return format_table(
            ("", "artifact", "claim", "measured"),
            rows,
            title=f"Reproduction scorecard — {verdict}",
        )


def run_scorecard(iterations: int = 100) -> Scorecard:
    """Evaluate every paper-shape claim at reduced scale.

    Drivers come out of the experiment registry (the same specs the CLI
    and the report writer use), so a renamed or retired driver fails
    here loudly instead of leaving a stale import.
    """
    from repro.experiments.registry import get_spec

    def resolve(spec_id: str):
        return get_spec(spec_id).resolve()

    entries: List[ScorecardEntry] = []

    def check(artifact: str, claim: str, measured: str, passed: bool) -> None:
        entries.append(
            ScorecardEntry(
                artifact=artifact, claim=claim, measured=measured, passed=passed
            )
        )

    utilization = resolve("utilization")(network="SqueezeNet")
    fig2a = utilization.overall
    check(
        "Fig. 2a",
        "chronic PE underutilization (paper: 55.8% avg)",
        f"{fig2a.overall_mean:.1%} avg",
        0.3 <= fig2a.overall_mean < 0.9,
    )
    fig2b = utilization.per_layer
    check(
        "Fig. 2b",
        "drastic per-layer utilization spread",
        f"{fig2b.spread:.0%} spread",
        fig2b.spread > 0.2,
    )

    fig3 = resolve("heatmaps")(iterations=5)
    pair = fig3.pair_for("SqueezeNet")
    check(
        "Fig. 3",
        "corner hotspot on mesh; near-uniform on torus",
        f"R_diff {pair.baseline_r_diff:.3g} -> {pair.wear_leveled_r_diff:.3g}",
        pair.baseline_r_diff > pair.wear_leveled_r_diff
        and pair.wear_leveled_r_diff < 0.2,
    )

    fig4 = resolve("unfold")()
    check(
        "Fig. 4",
        "unfolded walk tiles exactly; fold-back uniform",
        f"X={fig4.X} W={fig4.W}",
        fig4.tiling_is_exact and fig4.folded_coverage_uniform,
    )

    fig5 = resolve("walkthrough")()
    check(
        "Fig. 5",
        "X=7 W=4 Y=4 H_RWL=2; Eq. 9 holds in simulation",
        f"X={fig5.example.X} W={fig5.example.W} bounds "
        f"{'hold' if fig5.all_bounds_hold else 'VIOLATED'}",
        (fig5.example.X, fig5.example.W, fig5.example.Y, fig5.example.H_rwl)
        == (7, 4, 4, 2)
        and fig5.all_bounds_hold,
    )

    fig6 = resolve("usage-diff")(iterations=max(iterations, 200))
    check(
        "Fig. 6",
        "baseline >> RWL slopes; RWL+RO bounded",
        f"slopes {fig6.slope('baseline'):.0f}/{fig6.slope('rwl'):.1f}/"
        f"{fig6.slope('rwl+ro'):.3f}",
        fig6.slope("baseline") > 10 * fig6.slope("rwl")
        and fig6.slope("rwl") > 0
        and fig6.rwl_ro_bounded,
    )

    fig7 = resolve("projection")(iterations=iterations)
    check(
        "Fig. 7",
        "R_diff falls, lifetime rises, inversely correlated",
        f"final R_diff {fig7.projection.final_r_diff:.2g}",
        fig7.r_diff_converges and fig7.lifetime_rises and fig7.inversely_correlated,
    )

    fig8 = resolve("lifetime")(iterations=iterations)
    check(
        "Fig. 8",
        "all workloads improve; gain anti-correlates with utilization",
        f"avg {fig8.mean_rwl_ro:.2f}x, r={fig8.utilization_correlation():.2f}",
        all(row.rwl_ro > 1.0 for row in fig8.rows)
        and fig8.utilization_correlation() < -0.5,
    )
    check(
        "Fig. 8 (RO)",
        "RO gap lands on the small networks (Mb/Eff/MVT)",
        f"small-net RO gain {fig8.small_network_gap:.4f}",
        fig8.small_network_gap > 1.0,
    )

    fig9 = resolve("upper-bound")()
    check(
        "Fig. 9",
        "layer gains approach, never exceed, util^(1/beta-1)",
        f"{len(fig9.points)} layers, mean achieved {fig9.mean_gap:.2f}",
        fig9.all_within_bound and fig9.mean_gap > 0.8,
    )

    fig10 = resolve("sweep")(iterations=iterations)
    check(
        "Fig. 10",
        "gain grows with array size",
        f"{fig10.points[0].rwl_ro:.2f}x -> {fig10.points[-1].rwl_ro:.2f}x",
        fig10.gain_grows_with_size,
    )

    overhead = resolve("overhead")()
    check(
        "Sec. V-D",
        "sub-1% torus area; zero cycle penalty",
        f"{overhead.overhead_percent:.2f}%, {overhead.cycle_penalty} cycles",
        overhead.matches_paper_order and overhead.cycle_penalty == 0,
    )

    return Scorecard(entries=tuple(entries))
