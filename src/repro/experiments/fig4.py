"""Fig. 4: the horizontally/vertically unfolded torus walk.

Fig. 4 illustrates *why* the torus enables wear-leveling: unfolding the
wrap-around connections makes the striding utilization spaces look like
a contiguous tiling of an infinite plane, with boundary-crossing spaces
(the figure's "U-1") occupying logically distant but physically adjacent
PEs. This driver reproduces the illustration as data: it lays the first
``X`` utilization spaces of an RWL walk onto the unfolded plane and
verifies the two properties the figure conveys — the unfolded tiling is
gapless/overlap-free, and folding it back covers every physical column
exactly ``W`` times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.positions import stride_positions
from repro.core.rwl_math import horizontal_strides, horizontal_unfoldings
from repro.errors import SimulationError
from repro.experiments.common import paper_accelerator
from repro.experiments.result import JsonResultMixin


@dataclass(frozen=True)
class Fig4Result(JsonResultMixin):
    """One horizontal band of the unfolded walk."""

    w: int
    h: int
    x: int
    y: int
    X: int
    W: int
    unfolded_coverage: np.ndarray
    folded_column_coverage: np.ndarray
    wrapping_spaces: Tuple[int, ...]

    @property
    def tiling_is_exact(self) -> bool:
        """The unfolded band is covered exactly once (no gaps/overlaps)."""
        return bool((self.unfolded_coverage == 1).all())

    @property
    def folded_coverage_uniform(self) -> bool:
        """Folding back covers every physical column exactly W times."""
        return bool((self.folded_column_coverage == self.W).all())

    def format(self) -> str:
        """Render the unfolded band with space indices (Fig. 4 style)."""
        lines = [
            f"Fig. 4 — unfolded torus walk: {self.x}x{self.y} spaces on the "
            f"{self.w}-wide torus (X={self.X} strides unfold W={self.W} arrays)"
        ]
        # One character row per space index, marking physical array seams.
        band = np.full(self.w * self.W, -1, dtype=int)
        for index in range(self.X):
            start = index * self.x
            band[start : start + self.x] = index
        row = []
        for column, space in enumerate(band):
            if column and column % self.w == 0:
                row.append("|")
            row.append(format(space % 10, "d"))
        lines.append("".join(row) + "   ('|' = physical array seam)")
        wrap_list = ", ".join(f"U{i}" for i in self.wrapping_spaces) or "none"
        lines.append(f"boundary-crossing spaces (the figure's U-1 case): {wrap_list}")
        rows = [
            ("unfolded tiling exact", str(self.tiling_is_exact)),
            (f"every column covered {self.W}x", str(self.folded_coverage_uniform)),
        ]
        lines.append(format_table(("check", "result"), rows))
        return "\n".join(lines)


def run_fig4(
    x: int = 8,
    y: int = 8,
    accelerator: Optional[Accelerator] = None,
) -> Fig4Result:
    """Unfold one horizontal band of the RWL walk (paper Fig. 4)."""
    accelerator = accelerator or paper_accelerator()
    w, h = accelerator.width, accelerator.height
    if not (1 <= x <= w and 1 <= y <= h):
        raise SimulationError(f"space {x}x{y} does not fit the {w}x{h} array")
    big_x = horizontal_strides(w, x)
    big_w = horizontal_unfoldings(w, x)

    us, vs, _ = stride_positions((0, 0), x, y, w, h, big_x)

    # Lay the spaces onto the unfolded plane: space k starts at k*x.
    unfolded = np.zeros(w * big_w, dtype=int)
    folded = np.zeros(w, dtype=int)
    wrapping = []
    for index in range(big_x):
        start = index * x
        unfolded[start : start + x] += 1
        for offset in range(x):
            folded[(int(us[index]) + offset) % w] += 1
        if int(us[index]) + x > w:
            wrapping.append(index)

    return Fig4Result(
        w=w,
        h=h,
        x=x,
        y=y,
        X=big_x,
        W=big_w,
        unfolded_coverage=unfolded,
        folded_column_coverage=folded,
        wrapping_spaces=tuple(wrapping),
    )
