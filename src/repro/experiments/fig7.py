"""Fig. 7: projected lifetime vs R_diff over the first 200 iterations.

Running SqueezeNet under RWL+RO, the imbalance ratio R_diff converges
toward 0 while the projected lifetime (relative to a perfectly leveled
array doing the same work) rises toward 1 — the two series mirror each
other, which is the figure's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.experiments.common import PAPER_ZOOM_ITERATIONS, run_policies, streams_for
from repro.experiments.result import JsonResultMixin
from repro.reliability.projection import LifetimeProjection, project_lifetime


@dataclass(frozen=True)
class Fig7Result(JsonResultMixin):
    """The two Fig. 7 series plus convergence checks."""

    network: str
    projection: LifetimeProjection

    @property
    def r_diff_converges(self) -> bool:
        """R_diff ends well below where it starts (paper: toward 0)."""
        finite = self.projection.r_diff[np.isfinite(self.projection.r_diff)]
        if finite.size < 2:
            return False
        return self.projection.final_r_diff <= 0.25 * float(finite[0])

    @property
    def lifetime_rises(self) -> bool:
        """Projected lifetime ends above where it starts (toward 1)."""
        series = self.projection.relative_lifetime
        return float(series[-1]) > float(series[0])

    @property
    def inversely_correlated(self) -> bool:
        """Lifetime and R_diff move in opposite directions overall."""
        finite = np.isfinite(self.projection.r_diff)
        if finite.sum() < 3:
            return False
        lifetime = self.projection.relative_lifetime[finite]
        r_diff = self.projection.r_diff[finite]
        correlation = np.corrcoef(lifetime, r_diff)[0, 1]
        return bool(correlation < 0.0)

    def format(self) -> str:
        """Sampled rows of the two series."""
        n = self.projection.iterations.size
        sample = sorted({0, 4, 9, 24, 49, 99, n - 1} & set(range(n)))
        rows = [
            (
                int(self.projection.iterations[index]),
                f"{self.projection.relative_lifetime[index]:.6f}",
                f"{self.projection.r_diff[index]:.4g}",
            )
            for index in sample
        ]
        return format_table(
            ("iteration", "projected lifetime (rel.)", "R_diff"),
            rows,
            title=f"Fig. 7 — lifetime vs R_diff, {self.network} under RWL+RO",
        )


def run_fig7(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = PAPER_ZOOM_ITERATIONS,
    jobs: Optional[int] = None,
) -> Fig7Result:
    """Produce the Fig. 7 transient series."""
    streams = streams_for(network, accelerator)
    results = run_policies(
        streams,
        accelerator,
        policies=("rwl+ro",),
        iterations=iterations,
        record_trace=True,
        record_snapshots=True,
        jobs=jobs,
    )
    projection = project_lifetime(results["rwl+ro"])
    return Fig7Result(network=network, projection=projection)
