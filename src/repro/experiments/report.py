"""Full evaluation report: every artifact written to a directory.

``rota report --out DIR`` regenerates the paper's entire evaluation and
writes it as files a human (or a paper build) can consume directly:
text tables for every figure, CSV data series for the transient plots,
and PPM heatmap images for Figs. 3 and 6c-e.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.analysis.export import trace_to_csv, write_csv
from repro.analysis.image import heatmap_to_ppm
from repro.experiments.common import PAPER_ITERATIONS, PAPER_ZOOM_ITERATIONS
from repro.experiments.fig2 import run_fig2a, run_fig2b
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.overhead import run_overhead
from repro.experiments.table2 import run_table2


@dataclass(frozen=True)
class ReportManifest:
    """Every file the report run produced."""

    out_dir: Path
    files: Tuple[Path, ...]

    @property
    def file_names(self) -> Tuple[str, ...]:
        """File names relative to the output directory."""
        return tuple(str(path.relative_to(self.out_dir)) for path in self.files)

    def format(self) -> str:
        """Human-readable manifest."""
        lines = [f"report written to {self.out_dir} ({len(self.files)} files):"]
        lines.extend(f"  {name}" for name in self.file_names)
        return "\n".join(lines)


def write_report(
    out_dir,
    fig6_iterations: int = PAPER_ITERATIONS,
    fig7_iterations: int = PAPER_ZOOM_ITERATIONS,
    fig8_iterations: int = 200,
) -> ReportManifest:
    """Regenerate every evaluation artifact into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    files: List[Path] = []

    def write_text(name: str, content: str) -> None:
        target = out / name
        target.write_text(content + "\n")
        files.append(target.resolve())

    write_text("table2.txt", run_table2().format())
    write_text("fig2a.txt", run_fig2a().format())
    write_text("fig2b.txt", run_fig2b().format())

    fig3 = run_fig3()
    write_text("fig3.txt", fig3.format())
    for pair in fig3.pairs:
        slug = pair.network.lower().replace(" ", "_").replace("-", "_")
        files.append(
            heatmap_to_ppm(pair.baseline_counts, out / f"fig3a_{slug}.ppm")
        )
        files.append(
            heatmap_to_ppm(pair.wear_leveled_counts, out / f"fig3b_{slug}.ppm")
        )

    write_text("fig4.txt", run_fig4().format())
    write_text("fig5.txt", run_fig5().format())

    fig6 = run_fig6(iterations=fig6_iterations)
    write_text("fig6.txt", fig6.format())
    for label, policy in zip("cde", ("baseline", "rwl", "rwl+ro")):
        files.append(
            heatmap_to_ppm(
                fig6.final_counts(policy),
                out / f"fig6{label}_{policy.replace('+', '_')}.ppm",
            )
        )
        files.append(
            trace_to_csv(
                fig6.results[policy],
                out / f"fig6_trace_{policy.replace('+', '_')}.csv",
            )
        )

    fig7 = run_fig7(iterations=fig7_iterations)
    write_text("fig7.txt", fig7.format())
    files.append(
        write_csv(
            out / "fig7_series.csv",
            ("iteration", "relative_lifetime", "r_diff"),
            zip(
                fig7.projection.iterations.tolist(),
                fig7.projection.relative_lifetime.tolist(),
                fig7.projection.r_diff.tolist(),
            ),
        )
    )

    fig8 = run_fig8(iterations=fig8_iterations)
    write_text("fig8.txt", fig8.format())
    files.append(
        write_csv(
            out / "fig8_improvements.csv",
            ("network", "utilization", "rwl", "rwl_ro"),
            [
                (row.abbreviation, row.utilization, row.rwl, row.rwl_ro)
                for row in fig8.rows
            ],
        )
    )

    fig9 = run_fig9()
    write_text("fig9.txt", fig9.format(limit=30))
    files.append(
        write_csv(
            out / "fig9_points.csv",
            ("network", "layer", "utilization", "improvement", "upper_bound"),
            [
                (p.network, p.layer, p.utilization, p.improvement, p.upper_bound)
                for p in fig9.points
            ],
        )
    )

    write_text("fig10.txt", run_fig10().format())
    write_text("sec5d_overhead.txt", run_overhead().format())

    return ReportManifest(out_dir=out.resolve(), files=tuple(files))
