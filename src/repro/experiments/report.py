"""Full evaluation report: every artifact written to a directory.

``rota report --out DIR`` regenerates the paper's entire evaluation and
writes it as files a human (or a paper build) can consume directly:
text tables for every figure, CSV data series for the transient plots,
and PPM heatmap images for Figs. 3 and 6c-e.

The report iterates the experiment registry's ``figure``-tagged specs in
paper order. Each spec has an artifact writer — bespoke ones for the
figures that emit CSVs/PPMs beside their table, and a default
``<id>.txt`` writer for everything else — so a newly registered
experiment is reportable without touching this module.

Alongside the artifacts the run drops ``manifest.json``: the
:class:`~repro.experiments.registry.RunManifest` with per-section wall
times, result-cache hit/miss/put counters, parallel-runner task timings,
the accelerator fingerprint, and the package version. The manifest is
observability metadata, not an artifact, so it is excluded from the
returned file listing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

from repro.experiments.common import PAPER_ITERATIONS, PAPER_ZOOM_ITERATIONS
from repro.experiments.registry import (
    PhaseTiming,
    RunManifest,
    all_specs,
    package_version,
)
from repro.experiments.result import to_jsonable

#: File name of the observability manifest dropped next to the artifacts.
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ReportManifest:
    """Every file the report run produced."""

    out_dir: Path
    files: Tuple[Path, ...]

    @property
    def file_names(self) -> Tuple[str, ...]:
        """File names relative to the output directory."""
        return tuple(str(path.relative_to(self.out_dir)) for path in self.files)

    def format(self) -> str:
        """Human-readable manifest."""
        lines = [f"report written to {self.out_dir} ({len(self.files)} files):"]
        lines.extend(f"  {name}" for name in self.file_names)
        return "\n".join(lines)


class _Section:
    """One spec's slice of the report: its result and output sink."""

    def __init__(self, result: Any, out: Path, files: List[Path]) -> None:
        self.result = result
        self.out = out
        self._files = files

    def write_text(self, name: str, content: str) -> None:
        """Write one text artifact and record it."""
        target = self.out / name
        target.write_text(content + "\n")
        self._files.append(target.resolve())

    def add(self, path: Path) -> None:
        """Record a file another exporter already wrote."""
        self._files.append(path)


def _write_table2(section: _Section) -> None:
    section.write_text("table2.txt", section.result.format())


def _write_utilization(section: _Section) -> None:
    section.write_text("fig2a.txt", section.result.overall.format())
    section.write_text("fig2b.txt", section.result.per_layer.format())


def _write_heatmaps(section: _Section) -> None:
    from repro.analysis.image import heatmap_to_ppm

    fig3 = section.result
    section.write_text("fig3.txt", fig3.format())
    for pair in fig3.pairs:
        slug = pair.network.lower().replace(" ", "_").replace("-", "_")
        section.add(
            heatmap_to_ppm(pair.baseline_counts, section.out / f"fig3a_{slug}.ppm")
        )
        section.add(
            heatmap_to_ppm(
                pair.wear_leveled_counts, section.out / f"fig3b_{slug}.ppm"
            )
        )


def _write_unfold(section: _Section) -> None:
    section.write_text("fig4.txt", section.result.format())


def _write_walkthrough(section: _Section) -> None:
    section.write_text("fig5.txt", section.result.format())


def _write_usage_diff(section: _Section) -> None:
    from repro.analysis.export import trace_to_csv
    from repro.analysis.image import heatmap_to_ppm

    fig6 = section.result
    section.write_text("fig6.txt", fig6.format())
    for label, policy in zip("cde", ("baseline", "rwl", "rwl+ro")):
        section.add(
            heatmap_to_ppm(
                fig6.final_counts(policy),
                section.out / f"fig6{label}_{policy.replace('+', '_')}.ppm",
            )
        )
        section.add(
            trace_to_csv(
                fig6.results[policy],
                section.out / f"fig6_trace_{policy.replace('+', '_')}.csv",
            )
        )


def _write_projection(section: _Section) -> None:
    from repro.analysis.export import write_csv

    fig7 = section.result
    section.write_text("fig7.txt", fig7.format())
    section.add(
        write_csv(
            section.out / "fig7_series.csv",
            ("iteration", "relative_lifetime", "r_diff"),
            zip(
                fig7.projection.iterations.tolist(),
                fig7.projection.relative_lifetime.tolist(),
                fig7.projection.r_diff.tolist(),
            ),
        )
    )


def _write_lifetime(section: _Section) -> None:
    from repro.analysis.export import write_csv

    fig8 = section.result
    section.write_text("fig8.txt", fig8.format())
    section.add(
        write_csv(
            section.out / "fig8_improvements.csv",
            ("network", "utilization", "rwl", "rwl_ro"),
            [
                (row.abbreviation, row.utilization, row.rwl, row.rwl_ro)
                for row in fig8.rows
            ],
        )
    )


def _write_upper_bound(section: _Section) -> None:
    from repro.analysis.export import write_csv

    fig9 = section.result
    section.write_text("fig9.txt", fig9.format(limit=30))
    section.add(
        write_csv(
            section.out / "fig9_points.csv",
            ("network", "layer", "utilization", "improvement", "upper_bound"),
            [
                (p.network, p.layer, p.utilization, p.improvement, p.upper_bound)
                for p in fig9.points
            ],
        )
    )


def _write_sweep(section: _Section) -> None:
    section.write_text("fig10.txt", section.result.format())


def _write_overhead(section: _Section) -> None:
    section.write_text("sec5d_overhead.txt", section.result.format())


def _write_fleet_lifetime(section: _Section) -> None:
    """Fleet table plus per-device heatmaps on one shared color scale."""
    from repro.analysis.image import heatmap_to_ppm

    result = section.result
    section.write_text("fleet_lifetime.txt", result.format())
    shared_peak = max(
        (float(row.counts.max()) for row in result.devices), default=0.0
    )
    for row in result.devices:
        section.add(
            heatmap_to_ppm(
                row.counts,
                section.out / f"fleet_device_{row.device_id}.ppm",
                peak=shared_peak,
            )
        )


def _write_mapping_search(section: _Section) -> None:
    """Pareto table plus a flat CSV of every frontier point."""
    from repro.analysis.export import write_csv

    result = section.result
    section.write_text("mapping_search.txt", result.format())
    section.add(
        write_csv(
            section.out / "mapping_search_pareto.csv",
            (
                "layer",
                "energy_pj",
                "peak_ppm",
                "mttf_proxy",
                "space_x",
                "space_y",
                "num_tiles",
            ),
            [
                (
                    row.layer,
                    point.energy_pj,
                    point.peak_ppm,
                    point.mttf_proxy,
                    point.space[0],
                    point.space[1],
                    point.num_tiles,
                )
                for row in result.rows
                for point in row.pareto
            ],
        )
    )


#: Bespoke artifact writers, keyed by spec id.
_WRITERS: Dict[str, Callable[[_Section], None]] = {
    "table2": _write_table2,
    "utilization": _write_utilization,
    "heatmaps": _write_heatmaps,
    "unfold": _write_unfold,
    "walkthrough": _write_walkthrough,
    "usage-diff": _write_usage_diff,
    "projection": _write_projection,
    "lifetime": _write_lifetime,
    "upper-bound": _write_upper_bound,
    "sweep": _write_sweep,
    "overhead": _write_overhead,
    "fleet-lifetime": _write_fleet_lifetime,
    "mapping-search": _write_mapping_search,
}


def _default_writer(spec_id: str) -> Callable[[_Section], None]:
    """Writer for specs without bespoke artifacts: ``<id>.txt``."""

    def write(section: _Section) -> None:
        section.write_text(f"{spec_id}.txt", section.result.format())

    return write


def writer_for(spec_id: str) -> Callable[[_Section], None]:
    """The artifact writer of one registered experiment."""
    return _WRITERS.get(spec_id, _default_writer(spec_id))


def write_report(
    out_dir,
    fig6_iterations: int = PAPER_ITERATIONS,
    fig7_iterations: int = PAPER_ZOOM_ITERATIONS,
    fig8_iterations: int = 200,
    fleet_requests: int = 300,
    mapping_limit: int = 4,
) -> ReportManifest:
    """Regenerate every evaluation artifact into ``out_dir``.

    Covers the ``figure``-tagged specs in paper order, then the
    ``fleet``-tagged extension studies and the ``mapping``-tagged
    wear-aware search (limited to its first ``mapping_limit`` distinct
    layer shapes to bound report wall time). Also writes ``manifest.json``
    (run observability: per-section timings, cache counters, runner
    task timings) into the directory; the manifest is not counted among
    the report's artifact files.
    """
    from repro.experiments.registry import _accelerator_fingerprint
    from repro.runtime import collect_metrics

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    files: List[Path] = []

    overrides: Dict[str, Dict[str, Any]] = {
        "usage-diff": {"iterations": fig6_iterations},
        "projection": {"iterations": fig7_iterations},
        "lifetime": {"iterations": fig8_iterations},
        "fleet-lifetime": {"num_requests": fleet_requests},
        "fleet-policies": {"num_requests": fleet_requests},
        "fleet-degradation": {"num_requests": fleet_requests},
        "fleet-accuracy": {"num_requests": fleet_requests},
        "mapping-search": {"limit": mapping_limit, "beam_width": 4},
    }

    started_at = time.time()
    start = time.perf_counter()
    phases: List[PhaseTiming] = []
    with collect_metrics() as metrics:
        for spec in (
            all_specs(tag="figure")
            + all_specs(tag="fleet")
            + all_specs(tag="mapping")
        ):
            params = spec.defaults
            params.update(dict(spec.all_params))
            params.update(overrides.get(spec.id, {}))
            section_start = time.perf_counter()
            result = spec.resolve()(**params)
            writer_for(spec.id)(_Section(result, out, files))
            phases.append(
                PhaseTiming(
                    name=spec.id,
                    seconds=time.perf_counter() - section_start,
                )
            )

    manifest = RunManifest(
        spec_id="report",
        params=(
            ("fig6_iterations", fig6_iterations),
            ("fig7_iterations", fig7_iterations),
            ("fig8_iterations", fig8_iterations),
            ("fleet_requests", fleet_requests),
            ("mapping_limit", mapping_limit),
        ),
        version=package_version(),
        accelerator=_accelerator_fingerprint(),
        started_at=started_at,
        wall_seconds=time.perf_counter() - start,
        phases=tuple(phases),
        cache=tuple(sorted(metrics.cache_summary().items())),
        tasks=tuple(
            (timing.label, timing.seconds, timing.mode)
            for timing in metrics.task_timings
        ),
    )
    from repro.analysis.export import write_json

    write_json(out / MANIFEST_NAME, to_jsonable(manifest.to_dict()))

    return ReportManifest(out_dir=out.resolve(), files=tuple(files))
