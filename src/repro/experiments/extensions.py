"""Extension studies beyond the paper's figures.

Three follow-ups a reviewer (or adopter) would ask for:

* **Policy comparison** — RWL+RO against naive alternatives (diagonal
  rotation, random starts) that also need the torus but lack the LCM
  structure or need hardware RNG.
* **Monte Carlo validation** — the closed-form Weibull lifetime math
  (Eqs. 2-4) checked against sampled failure times, plus distributional
  quantities the closed form cannot provide (B10 life, failure-location
  histograms).
* **Objective sensitivity** — do the wear-leveling conclusions survive a
  least-cycle or EDP-optimal scheduler instead of the paper's
  energy-optimal one?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.dataflow.scheduler import SchedulerOptions
from repro.experiments.common import execution_for, paper_accelerator, run_policies
from repro.experiments.result import JsonResultMixin
from repro.reliability.lifetime import improvement_from_counts
from repro.reliability.montecarlo import sample_array_lifetimes
from repro.reliability.weibull import WeibullModel

#: Policies compared by the extension study, in presentation order.
COMPARISON_POLICIES = ("baseline", "diagonal", "random", "rwl", "rwl+ro")


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One policy's outcome in the comparison study."""

    policy: str
    improvement: float
    final_d_max: int
    tail_slope: float


@dataclass(frozen=True)
class PolicyComparisonResult(JsonResultMixin):
    """RWL+RO vs naive alternatives on one workload."""

    network: str
    iterations: int
    rows: Tuple[PolicyComparisonRow, ...]

    def row_for(self, policy: str) -> PolicyComparisonRow:
        """Look up one policy's row."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    @property
    def rwl_ro_is_best_or_tied(self) -> bool:
        """RWL+RO's improvement within 2% of the best policy's."""
        best = max(row.improvement for row in self.rows)
        return self.row_for("rwl+ro").improvement >= 0.98 * best

    @property
    def only_structured_policies_bounded(self) -> bool:
        """RWL+RO stays bounded; random's D_max keeps drifting."""
        return (
            self.row_for("rwl+ro").final_d_max < self.row_for("random").final_d_max
        )

    def format(self) -> str:
        """Comparison table."""
        table_rows = [
            (
                row.policy,
                f"{row.improvement:.3f}x",
                row.final_d_max,
                f"{row.tail_slope:.3f}",
            )
            for row in self.rows
        ]
        return format_table(
            ("policy", "lifetime vs baseline", "final Dmax", "Dmax slope/iter"),
            table_rows,
            title=(
                f"Extension — policy comparison, {self.network} x "
                f"{self.iterations} iterations"
            ),
        )


def _tail_slope(trace: np.ndarray) -> float:
    tail = np.asarray(trace[len(trace) // 2 :], dtype=float)
    if tail.size < 2:
        return 0.0
    steps = np.arange(tail.size, dtype=float)
    return float(np.polyfit(steps, tail, 1)[0])


def run_policy_comparison(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 500,
    jobs: Optional[int] = None,
) -> PolicyComparisonResult:
    """Compare RWL+RO against diagonal and random-start policies."""
    execution = execution_for(network, accelerator)
    results = run_policies(
        execution.streams(),
        accelerator,
        policies=COMPARISON_POLICIES,
        iterations=iterations,
        record_trace=True,
        jobs=jobs,
    )
    baseline = results["baseline"].counts
    rows = []
    for policy in COMPARISON_POLICIES:
        result = results[policy]
        rows.append(
            PolicyComparisonRow(
                policy=policy,
                improvement=improvement_from_counts(baseline, result.counts),
                final_d_max=result.max_difference,
                tail_slope=_tail_slope(result.max_difference_trace()),
            )
        )
    return PolicyComparisonResult(
        network=network, iterations=iterations, rows=tuple(rows)
    )


@dataclass(frozen=True)
class MonteCarloValidationResult(JsonResultMixin):
    """Closed-form vs sampled lifetime for baseline and RWL+RO ledgers."""

    network: str
    num_samples: int
    analytic_improvement: float
    empirical_improvement: float
    baseline_agrees: bool
    leveled_agrees: bool
    baseline_b10_life: float
    leveled_b10_life: float
    baseline_failure_concentration: float
    leveled_failure_concentration: float

    @property
    def closed_form_validated(self) -> bool:
        """Both schemes' sampled MTTFs match Eq. 3 within noise."""
        return self.baseline_agrees and self.leveled_agrees

    @property
    def improvement_relative_error(self) -> float:
        """Gap between sampled and Eq. 4 improvements."""
        return (
            abs(self.empirical_improvement - self.analytic_improvement)
            / self.analytic_improvement
        )

    def format(self) -> str:
        """Validation summary table."""
        rows = [
            ("Eq. 4 (closed form)", f"{self.analytic_improvement:.3f}x"),
            ("Monte Carlo", f"{self.empirical_improvement:.3f}x"),
            ("relative error", f"{100 * self.improvement_relative_error:.2f}%"),
            ("baseline B10 life (rel.)", f"{self.baseline_b10_life:.4f}"),
            ("RWL+RO B10 life (rel.)", f"{self.leveled_b10_life:.4f}"),
            (
                "baseline first-failure concentration",
                f"{self.baseline_failure_concentration:.1%}",
            ),
            (
                "RWL+RO first-failure concentration",
                f"{self.leveled_failure_concentration:.1%}",
            ),
        ]
        return format_table(
            ("quantity", "value"),
            rows,
            title=(
                f"Extension — Monte Carlo lifetime validation, {self.network} "
                f"({self.num_samples} sampled arrays)"
            ),
        )


def run_montecarlo_validation(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
    num_samples: int = 20_000,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> MonteCarloValidationResult:
    """Validate Eqs. 2-4 by sampling failure times from real ledgers."""
    execution = execution_for(network, accelerator)
    results = run_policies(
        execution.streams(),
        accelerator,
        policies=("baseline", "rwl+ro"),
        iterations=iterations,
        record_trace=False,
        jobs=jobs,
    )
    model = WeibullModel()
    ledgers = {name: result.counts.astype(float) for name, result in results.items()}
    # Normalize to relative activity so lifetimes are O(1) numbers.
    peak = max(ledger.max() for ledger in ledgers.values())
    samples = {}
    for name, ledger in ledgers.items():
        samples[name] = sample_array_lifetimes(
            ledger / peak,
            model=model,
            num_samples=num_samples,
            rng=np.random.default_rng(seed),
        )

    def concentration(sample, counts) -> float:
        """Fraction of first failures landing on the 10% busiest PEs."""
        histogram = sample.failure_histogram(counts.size)
        busiest = np.argsort(counts.ravel())[-max(1, counts.size // 10) :]
        return float(histogram[busiest].sum() / histogram.sum())

    base = samples["baseline"]
    leveled = samples["rwl+ro"]
    return MonteCarloValidationResult(
        network=network,
        num_samples=num_samples,
        analytic_improvement=improvement_from_counts(
            ledgers["baseline"], ledgers["rwl+ro"]
        ),
        empirical_improvement=leveled.empirical_mttf / base.empirical_mttf,
        baseline_agrees=base.agrees_with_analytic(),
        leveled_agrees=leveled.agrees_with_analytic(),
        baseline_b10_life=base.percentile(10),
        leveled_b10_life=leveled.percentile(10),
        baseline_failure_concentration=concentration(base, ledgers["baseline"]),
        leveled_failure_concentration=concentration(leveled, ledgers["rwl+ro"]),
    )


@dataclass(frozen=True)
class BetaSensitivityRow:
    """Eq. 4 improvement of one workload at one Weibull shape."""

    beta: float
    improvement: float
    upper_bound: float


@dataclass(frozen=True)
class BetaSensitivityResult(JsonResultMixin):
    """Sensitivity of the headline claim to the JEDEC shape parameter.

    Eq. 4's improvement is ``(sum a_B^beta / sum a_WL^beta)^(1/beta)``;
    larger shapes weight the busiest PEs more heavily, so wear-leveling
    should matter *more* as beta grows. The paper fixes beta = 3.4
    (JEDEC); this study shows the conclusion is not an artifact of that
    choice.
    """

    network: str
    iterations: int
    rows: Tuple[BetaSensitivityRow, ...]

    @property
    def always_improves(self) -> bool:
        """Wear-leveling wins at every tested shape."""
        return all(row.improvement > 1.0 for row in self.rows)

    @property
    def monotone_in_beta(self) -> bool:
        """Improvement grows with the shape parameter."""
        improvements = [row.improvement for row in self.rows]
        return improvements == sorted(improvements)

    def format(self) -> str:
        """Sensitivity table."""
        table_rows = [
            (
                f"{row.beta:.1f}",
                f"{row.improvement:.3f}x",
                f"{row.upper_bound:.3f}x",
            )
            for row in self.rows
        ]
        return format_table(
            ("Weibull beta", "RWL+RO improvement", "perfect-leveling bound"),
            table_rows,
            title=(
                f"Extension — Weibull shape sensitivity, {self.network} "
                f"(paper uses beta = 3.4)"
            ),
        )


def run_beta_sensitivity(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
    betas: Tuple[float, ...] = (1.5, 2.0, 3.4, 5.0, 8.0),
    jobs: Optional[int] = None,
) -> BetaSensitivityResult:
    """Evaluate Eq. 4 for a sweep of Weibull shape parameters."""
    from repro.reliability.lifetime import lifetime_upper_bound

    execution = execution_for(network, accelerator)
    results = run_policies(
        execution.streams(),
        accelerator,
        policies=("baseline", "rwl+ro"),
        iterations=iterations,
        record_trace=False,
        jobs=jobs,
    )
    baseline = results["baseline"].counts
    leveled = results["rwl+ro"].counts
    utilization = execution.mean_utilization
    rows = tuple(
        BetaSensitivityRow(
            beta=beta,
            improvement=improvement_from_counts(baseline, leveled, beta=beta),
            upper_bound=lifetime_upper_bound(utilization, beta=beta),
        )
        for beta in betas
    )
    return BetaSensitivityResult(network=network, iterations=iterations, rows=rows)


@dataclass(frozen=True)
class BufferSweepPoint:
    """One local-buffer scale's scheduling and wear outcome."""

    scale: float
    utilization: float
    median_z: int
    rwl_ro: float


@dataclass(frozen=True)
class BufferSweepResult(JsonResultMixin):
    """How local-buffer capacity shapes the wear-leveling problem.

    Per-PE buffer capacity changes which mappings are legal, so the
    energy-optimal utilization spaces (and with them Z and the
    utilization ratio) move around — but the wear-leveling win persists
    at every sizing, demonstrating the paper's conclusions are not an
    artifact of the 24/448/48 B Eyeriss configuration.
    """

    network: str
    iterations: int
    points: Tuple[BufferSweepPoint, ...]

    @property
    def all_improve(self) -> bool:
        """Wear-leveling wins at every buffer scale."""
        return all(point.rwl_ro > 1.0 for point in self.points)

    @property
    def gain_spread(self) -> float:
        """Max/min RWL+RO gain across the sweep."""
        gains = [point.rwl_ro for point in self.points]
        return max(gains) / min(gains)

    def format(self) -> str:
        """Sweep table."""
        rows = [
            (
                f"{point.scale:g}x",
                f"{point.utilization:.1%}",
                point.median_z,
                f"{point.rwl_ro:.3f}x",
            )
            for point in self.points
        ]
        return format_table(
            ("LB scale", "PE util", "median Z", "RWL+RO"),
            rows,
            title=(
                f"Extension — local-buffer sizing sweep, {self.network} "
                f"(Eyeriss 24/448/48 B = 1x)"
            ),
        )


def run_buffer_sweep(
    network: str = "SqueezeNet",
    scales: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    iterations: int = 100,
) -> BufferSweepResult:
    """Sweep per-PE local-buffer capacity around the Eyeriss sizing."""
    import statistics

    from repro.arch.accelerator import Accelerator
    from repro.arch.array import PEArray
    from repro.arch.buffers import Buffer, LocalBufferSet
    from repro.arch.pe import ProcessingElement
    from repro.arch.topology import Topology
    from repro.dataflow.simulator import DataflowSimulator
    from repro.workloads.registry import get_network

    workload = get_network(network)
    points = []
    for scale in scales:
        buffers = LocalBufferSet(
            input=Buffer("input_lb", max(2, int(24 * scale)), read_energy_pj=0.08),
            weight=Buffer("weight_lb", max(2, int(448 * scale)), read_energy_pj=0.20),
            output=Buffer("output_lb", max(2, int(48 * scale)), read_energy_pj=0.10),
        )
        pe = ProcessingElement(local_buffers=buffers)
        accelerator = Accelerator(
            name=f"eyeriss-lb{scale:g}x",
            array=PEArray(width=14, height=12, topology=Topology.TORUS, pe=pe),
        )
        execution = DataflowSimulator(accelerator).execute_network(
            workload.layers, name=workload.name
        )
        results = run_policies(
            execution.streams(),
            accelerator,
            policies=("baseline", "rwl+ro"),
            iterations=iterations,
            record_trace=False,
        )
        points.append(
            BufferSweepPoint(
                scale=scale,
                utilization=execution.mean_utilization,
                median_z=int(
                    statistics.median(
                        layer.stream.num_tiles for layer in execution.layers
                    )
                ),
                rwl_ro=improvement_from_counts(
                    results["baseline"].counts, results["rwl+ro"].counts
                ),
            )
        )
    return BufferSweepResult(
        network=network, iterations=iterations, points=tuple(points)
    )


@dataclass(frozen=True)
class AspectRatioPoint:
    """One aspect ratio's wear-leveling outcome (PE count held fixed)."""

    width: int
    height: int
    utilization: float
    rwl_ro: float

    @property
    def label(self) -> str:
        """Sweep label, e.g. ``"32x8"``."""
        return f"{self.width}x{self.height}"


@dataclass(frozen=True)
class AspectRatioResult(JsonResultMixin):
    """Does the wear-leveling gain depend on array aspect ratio?

    Fig. 10 sweeps *size*; a designer also chooses *shape*. This study
    holds the PE count constant and sweeps aspect ratios; the RWL
    rotation is axis-symmetric, so the gain should track utilization
    (which the scheduler determines per shape) rather than aspect
    per se.
    """

    network: str
    iterations: int
    points: Tuple[AspectRatioPoint, ...]

    @property
    def all_improve(self) -> bool:
        """Wear-leveling wins at every aspect ratio."""
        return all(point.rwl_ro > 1.0 for point in self.points)

    def format(self) -> str:
        """Sweep table."""
        rows = [
            (point.label, f"{point.utilization:.1%}", f"{point.rwl_ro:.3f}x")
            for point in self.points
        ]
        return format_table(
            ("PE array", "PE util", "RWL+RO"),
            rows,
            title=(
                f"Extension — aspect-ratio sweep at constant PE count, "
                f"{self.network} x {self.iterations} iterations"
            ),
        )


def run_aspect_ratio_study(
    network: str = "SqueezeNet",
    shapes: Tuple[Tuple[int, int], ...] = ((16, 16), (32, 8), (64, 4), (8, 32)),
    iterations: int = 100,
) -> AspectRatioResult:
    """Sweep array aspect ratios at a fixed PE count (default 256 PEs)."""
    from repro.arch.presets import scaled_array
    from repro.dataflow.simulator import DataflowSimulator
    from repro.workloads.registry import get_network

    pe_counts = {width * height for width, height in shapes}
    if len(pe_counts) != 1:
        raise ValueError(f"shapes must share one PE count, got {sorted(pe_counts)}")
    workload = get_network(network)
    points = []
    for width, height in shapes:
        accelerator = scaled_array(width, height, torus=True)
        execution = DataflowSimulator(accelerator).execute_network(
            workload.layers, name=workload.name
        )
        results = run_policies(
            execution.streams(),
            accelerator,
            policies=("baseline", "rwl+ro"),
            iterations=iterations,
            record_trace=False,
        )
        points.append(
            AspectRatioPoint(
                width=width,
                height=height,
                utilization=execution.mean_utilization,
                rwl_ro=improvement_from_counts(
                    results["baseline"].counts, results["rwl+ro"].counts
                ),
            )
        )
    return AspectRatioResult(
        network=network, iterations=iterations, points=tuple(points)
    )


@dataclass(frozen=True)
class MixedWorkloadResult(JsonResultMixin):
    """RWL+RO across a *mix* of networks (paper Section IV-D).

    Residual optimization explicitly relays the coordinate "across
    neural layers and networks"; this study runs an interleaved
    multi-tenant workload (all constituent networks back to back, every
    iteration) and checks the claim survives: the mixed stream still
    levels, and each scheme's ordering matches the single-network case.
    """

    networks: Tuple[str, ...]
    iterations: int
    improvement_rwl: float
    improvement_rwl_ro: float
    d_max_baseline: int
    d_max_rwl: int
    d_max_rwl_ro: int
    r_diff_rwl_ro: float

    @property
    def ordering_holds(self) -> bool:
        """D_max ordering baseline > RWL > RWL+RO under the mix."""
        return self.d_max_baseline > self.d_max_rwl > self.d_max_rwl_ro

    @property
    def mix_levels_out(self) -> bool:
        """The mixed stream still reaches near-perfect leveling."""
        return self.r_diff_rwl_ro < 0.05

    def format(self) -> str:
        """Mixed-workload summary table."""
        rows = [
            ("baseline", "1.000x", self.d_max_baseline),
            ("rwl", f"{self.improvement_rwl:.3f}x", self.d_max_rwl),
            ("rwl+ro", f"{self.improvement_rwl_ro:.3f}x", self.d_max_rwl_ro),
        ]
        return format_table(
            ("scheme", "lifetime vs baseline", "final Dmax"),
            rows,
            title=(
                f"Extension — mixed workload {' + '.join(self.networks)} x "
                f"{self.iterations} iterations (RO relays across networks; "
                f"final RWL+RO R_diff = {self.r_diff_rwl_ro:.4f})"
            ),
        )


def run_mixed_workload(
    networks: Tuple[str, ...] = ("SqueezeNet", "MobileNet v3", "EfficientNet"),
    accelerator: Optional[Accelerator] = None,
    iterations: int = 200,
    jobs: Optional[int] = None,
) -> MixedWorkloadResult:
    """Serve several networks back to back under each scheme.

    The concatenated tile streams of all networks form one "iteration",
    modeling a multi-tenant accelerator; RO carries the coordinate
    through every network boundary.
    """
    streams = []
    for name in networks:
        streams.extend(execution_for(name, accelerator).streams())
    results = run_policies(
        streams, accelerator, iterations=iterations, record_trace=False, jobs=jobs
    )
    baseline = results["baseline"]
    rwl = results["rwl"]
    rwl_ro = results["rwl+ro"]
    return MixedWorkloadResult(
        networks=tuple(networks),
        iterations=iterations,
        improvement_rwl=improvement_from_counts(baseline.counts, rwl.counts),
        improvement_rwl_ro=improvement_from_counts(baseline.counts, rwl_ro.counts),
        d_max_baseline=baseline.max_difference,
        d_max_rwl=rwl.max_difference,
        d_max_rwl_ro=rwl_ro.max_difference,
        r_diff_rwl_ro=rwl_ro.r_diff,
    )


@dataclass(frozen=True)
class OracleComparisonResult(JsonResultMixin):
    """Open-loop RWL+RO vs the closed-loop greedy placement oracle.

    The greedy oracle reads the live per-PE wear ledger before every
    tile — hardware no real controller has. If RWL+RO matches it, the
    paper's open-loop scheme leaves nothing on the table.
    """

    network: str
    iterations: int
    rwl_ro_improvement: float
    oracle_improvement: float
    rwl_ro_d_max: int
    oracle_d_max: int

    @property
    def open_loop_matches_oracle(self) -> bool:
        """RWL+RO achieves >= 99% of the oracle's lifetime gain."""
        return self.rwl_ro_improvement >= 0.99 * self.oracle_improvement

    def format(self) -> str:
        """Comparison table."""
        rows = [
            ("rwl+ro (open loop)", f"{self.rwl_ro_improvement:.4f}x", self.rwl_ro_d_max),
            ("greedy oracle (feedback)", f"{self.oracle_improvement:.4f}x", self.oracle_d_max),
        ]
        return format_table(
            ("policy", "lifetime vs baseline", "final Dmax"),
            rows,
            title=(
                f"Extension — open loop vs feedback oracle, {self.network} x "
                f"{self.iterations} iterations"
            ),
        )


def run_oracle_comparison(
    network: str = "MobileNet v3",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 5,
) -> OracleComparisonResult:
    """Compare RWL+RO against the greedy min-usage feedback oracle.

    Defaults to a small workload: the oracle searches all ``w*h`` starts
    per tile and cannot be memoized, so it costs ~1 ms per tile.
    """
    from repro.core.engine import WearLevelingEngine
    from repro.core.policies import make_policy

    accelerator = (accelerator or paper_accelerator()).as_torus()
    streams = execution_for(network, accelerator).streams()
    results = run_policies(
        streams,
        accelerator,
        policies=("baseline", "rwl+ro"),
        iterations=iterations,
        record_trace=False,
    )
    oracle_engine = WearLevelingEngine(accelerator, make_policy("greedy"))
    oracle = oracle_engine.run(streams, iterations=iterations, record_trace=False)
    baseline = results["baseline"].counts
    return OracleComparisonResult(
        network=network,
        iterations=iterations,
        rwl_ro_improvement=improvement_from_counts(
            baseline, results["rwl+ro"].counts
        ),
        oracle_improvement=improvement_from_counts(baseline, oracle.counts),
        rwl_ro_d_max=results["rwl+ro"].max_difference,
        oracle_d_max=oracle.max_difference,
    )


@dataclass(frozen=True)
class VariationSensitivityResult(JsonResultMixin):
    """Wear-leveling robustness under per-PE process variation."""

    network: str
    iterations: int
    study: "object"  # repro.reliability.variation.VariationStudy

    @property
    def always_improves(self) -> bool:
        """Wear-leveling helps at every variation strength."""
        return self.study.always_improves

    @property
    def margin_shrinks(self) -> bool:
        """Variation erodes (but does not erase) the gain."""
        return self.study.margin_shrinks_with_variation

    def format(self) -> str:
        """Sensitivity table."""
        rows = [
            (
                f"{point.sigma:.2f}",
                f"{point.baseline_mttf:.4f}",
                f"{point.leveled_mttf:.4f}",
                f"{point.improvement:.3f}x",
            )
            for point in self.study.points
        ]
        return format_table(
            ("sigma (lognormal)", "baseline MTTF", "RWL+RO MTTF", "gain"),
            rows,
            title=(
                f"Extension — process-variation sensitivity, {self.network} "
                f"(Monte Carlo, relative time units)"
            ),
        )


def run_variation_sensitivity(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
    sigmas: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    num_samples: int = 10_000,
    jobs: Optional[int] = None,
) -> VariationSensitivityResult:
    """Does usage-based wear-leveling survive intrinsic PE variation?"""
    from repro.reliability.variation import run_variation_study

    execution = execution_for(network, accelerator)
    results = run_policies(
        execution.streams(),
        accelerator,
        policies=("baseline", "rwl+ro"),
        iterations=iterations,
        record_trace=False,
        jobs=jobs,
    )
    study = run_variation_study(
        results["baseline"].counts,
        results["rwl+ro"].counts,
        sigmas=sigmas,
        num_samples=num_samples,
    )
    return VariationSensitivityResult(
        network=network, iterations=iterations, study=study
    )


@dataclass(frozen=True)
class ObjectiveAblationRow:
    """Wear-leveling outcome under one scheduling objective."""

    objective: str
    utilization: float
    rwl_ro: float


@dataclass(frozen=True)
class ObjectiveAblationResult(JsonResultMixin):
    """Scheduler-objective sensitivity of the headline claim."""

    network: str
    iterations: int
    rows: Tuple[ObjectiveAblationRow, ...]

    @property
    def conclusion_robust(self) -> bool:
        """RWL+RO beats the baseline under every objective."""
        return all(row.rwl_ro > 1.0 for row in self.rows)

    def format(self) -> str:
        """Ablation table."""
        table_rows = [
            (row.objective, f"{row.utilization:.1%}", f"{row.rwl_ro:.3f}x")
            for row in self.rows
        ]
        return format_table(
            ("objective", "PE util", "RWL+RO"),
            table_rows,
            title=f"Extension — scheduler objective sensitivity, {self.network}",
        )


def run_objective_ablation(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
    objectives: Tuple[str, ...] = ("energy", "latency", "edp"),
    jobs: Optional[int] = None,
) -> ObjectiveAblationResult:
    """Re-run the headline comparison under each scheduling objective."""
    accelerator = accelerator or paper_accelerator()
    rows = []
    for objective in objectives:
        options = SchedulerOptions(objective=objective)
        execution = execution_for(network, accelerator, options)
        results = run_policies(
            execution.streams(),
            accelerator,
            policies=("baseline", "rwl+ro"),
            iterations=iterations,
            record_trace=False,
            jobs=jobs,
        )
        rows.append(
            ObjectiveAblationRow(
                objective=objective,
                utilization=execution.mean_utilization,
                rwl_ro=improvement_from_counts(
                    results["baseline"].counts, results["rwl+ro"].counts
                ),
            )
        )
    return ObjectiveAblationResult(
        network=network, iterations=iterations, rows=tuple(rows)
    )


@dataclass(frozen=True)
class ExtensionSuiteResult(JsonResultMixin):
    """The six `rota extensions` studies as one artifact."""

    policy_comparison: PolicyComparisonResult
    montecarlo: MonteCarloValidationResult
    objective: ObjectiveAblationResult
    beta: BetaSensitivityResult
    variation: VariationSensitivityResult
    mixed_workload: MixedWorkloadResult

    def format(self) -> str:
        """Every study's table, in presentation order."""
        return "\n\n".join(
            (
                self.policy_comparison.format(),
                self.montecarlo.format(),
                self.objective.format(),
                self.beta.format(),
                self.variation.format(),
                self.mixed_workload.format(),
            )
        )


def run_extensions(
    iterations: int = 500, jobs: Optional[int] = None
) -> ExtensionSuiteResult:
    """The registry's extension driver: the `rota extensions` suite.

    Only the policy comparison takes the iteration budget; the other
    studies keep their own defaults (their shapes converge earlier).
    """
    return ExtensionSuiteResult(
        policy_comparison=run_policy_comparison(iterations=iterations, jobs=jobs),
        montecarlo=run_montecarlo_validation(jobs=jobs),
        objective=run_objective_ablation(jobs=jobs),
        beta=run_beta_sensitivity(jobs=jobs),
        variation=run_variation_sensitivity(jobs=jobs),
        mixed_workload=run_mixed_workload(jobs=jobs),
    )
