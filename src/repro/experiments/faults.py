"""Fault study: life *after* the first PE failure (``rota faults``).

The paper stops at delaying the first wear-out failure. This study runs
each scheduling policy past it: per-PE Weibull endurance budgets are
sampled once (common random numbers, so every policy faces the same
silicon), the engine runs until ``deaths`` PEs have died (or the
iteration cap), and the study reports

* **lifetime-to-N-failures** — the iteration at which each successive
  PE died, per policy;
* **the degradation curve** — usable throughput while 0, 1, ... PEs
  were dead (tile slots executed vs nominal);
* **dead-PE heatmaps** — final usage with failed PEs overlaid;
* **Eq. 4 lifetime improvement** on the final ledgers, which reduces to
  the standard no-fault numbers when nothing is injected.

Faults can also be injected explicitly (``dead=[(u, v), ...]``) with
wear-out disabled, which measures pure degradation throughput on a
partially-dead array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.heatmap import render_heatmap
from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.dataflow.scheduler import SchedulerOptions
from repro.dataflow.tiling import TileStream
from repro.errors import ConfigurationError
from repro.experiments.result import JsonResultMixin
from repro.experiments.common import (
    POLICY_NAMES,
    paper_accelerator,
    streams_for,
)
from repro.faults.injection import sample_endurance_budgets
from repro.faults.montecarlo import sample_fault_scenarios
from repro.faults.state import DeathEvent, DegradationStats, FaultState
from repro.reliability.lifetime import relative_lifetime
from repro.reliability.weibull import JEDEC_BETA
from repro.runtime import ParallelRunner


@dataclass(frozen=True)
class DegradationPoint:
    """Throughput observed while exactly ``num_dead`` PEs were dead."""

    num_dead: int
    start_iteration: int
    end_iteration: int
    nominal_tiles: int
    executed_slots: int

    @property
    def usable_throughput(self) -> float:
        """Fraction of fault-free throughput retained in this segment."""
        if self.executed_slots == 0:
            return 1.0
        return self.nominal_tiles / self.executed_slots


@dataclass(frozen=True)
class FaultPolicyRow:
    """One policy's run-to-failure record."""

    policy: str
    death_events: Tuple[DeathEvent, ...]
    iterations_run: int
    max_iterations: int
    counts: np.ndarray
    dead_mask: np.ndarray
    degradation: DegradationStats
    curve: Tuple[DegradationPoint, ...]

    @property
    def num_dead(self) -> int:
        """PEs dead at the end of the run."""
        return int(self.dead_mask.sum())

    @property
    def censored(self) -> bool:
        """Whether the array outlived the iteration cap."""
        return self.iterations_run >= self.max_iterations

    def death_iteration(self, k: int) -> Optional[int]:
        """Iteration of the ``k``-th death (``None`` if never reached)."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if len(self.death_events) < k:
            return None
        return self.death_events[k - 1].iteration

    def heatmap(self) -> str:
        """Final usage heatmap with dead PEs overlaid as ``X``."""
        return render_heatmap(
            self.counts,
            title=f"{self.policy}: usage at end of run ({self.num_dead} dead)",
            dead=self.dead_mask,
        )


@dataclass(frozen=True)
class FaultsResult(JsonResultMixin):
    """The full fault study for one network."""

    network: str
    max_iterations: int
    deaths: int
    mean_budget: float
    seed: int
    rows: Tuple[FaultPolicyRow, ...]

    def row_for(self, policy: str) -> FaultPolicyRow:
        """Look up one policy's row."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def lifetime_improvement(self, policy: str) -> float:
        """Eq. 4 on final ledgers: ``policy`` vs the baseline row.

        Fault runs stop at different iteration counts (each dies on its
        own schedule), so the ledgers are first normalized per unit of
        work — Eq. 4's ratio is scale-invariant, and this reduces to the
        plain Eq. 4 comparison whenever both runs did equal work (e.g.
        the empty-fault-list case).
        """
        baseline = self.row_for("baseline")
        return relative_lifetime(self.row_for(policy).counts) / relative_lifetime(
            baseline.counts
        )

    def format(self, heatmaps: bool = True) -> str:
        """Degradation table (+ dead-PE heatmaps) for the console."""

        def _iteration_cell(row: FaultPolicyRow, k: int) -> str:
            iteration = row.death_iteration(k)
            if iteration is None:
                return f">{row.iterations_run}" if row.censored else "-"
            return str(iteration)

        table_rows = []
        for row in self.rows:
            table_rows.append(
                (
                    row.policy,
                    _iteration_cell(row, 1),
                    _iteration_cell(row, self.deaths),
                    row.num_dead,
                    f"{row.degradation.slowdown:.3f}",
                    f"{row.degradation.usable_throughput:.1%}",
                    f"{self.lifetime_improvement(row.policy):.3f}x",
                )
            )
        lines = [
            format_table(
                (
                    "policy",
                    "1st death",
                    f"{self.deaths}th death",
                    "dead PEs",
                    "slowdown",
                    "usable tput",
                    "lifetime vs base",
                ),
                table_rows,
                title=(
                    f"Fault study — {self.network}, mean endurance budget "
                    f"{self.mean_budget:.0f} allocations, seed {self.seed}, "
                    f"cap {self.max_iterations} iterations"
                ),
            )
        ]
        curve_rows = [
            (
                row.policy,
                point.num_dead,
                f"{point.start_iteration}-{point.end_iteration}",
                f"{point.usable_throughput:.1%}",
            )
            for row in self.rows
            for point in row.curve
        ]
        lines.append(
            format_table(
                ("policy", "dead PEs", "iterations", "usable tput"),
                curve_rows,
                title="Degradation curve — usable throughput vs dead PEs",
            )
        )
        if heatmaps:
            lines.extend(row.heatmap() for row in self.rows)
        return "\n\n".join(lines)


def _calibrated_mean_budget(
    accelerator: Accelerator,
    streams: Sequence[TileStream],
    max_iterations: int,
    fraction: float = 0.5,
) -> float:
    """Pick a budget scale so baseline deaths land mid-run.

    One fault-free baseline pass gives the busiest PE's per-iteration
    usage growth; the mean budget is set so that PE crosses it a
    ``fraction`` of the way through the run. Wear-leveled policies
    spread the same work, so their deaths land later — which is exactly
    the comparison the study makes.
    """
    probe = WearLevelingEngine(accelerator.as_mesh(), make_policy("baseline"))
    result = probe.run(streams, iterations=1, record_trace=False, mode="analytic")
    peak_per_iteration = max(1, int(result.counts.max()))
    return max(1.0, peak_per_iteration * max_iterations * fraction)


def _policy_fault_task(spec: Tuple) -> FaultPolicyRow:
    """Run one policy to failure (module-level so pools can pickle it)."""
    (
        accelerator,
        policy_name,
        trigger,
        streams,
        dead,
        mean_budget,
        beta,
        seed,
        wearout,
        deaths,
        max_iterations,
    ) = spec
    policy = make_policy(policy_name, trigger)
    target = (
        accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
    )
    fault_state = FaultState.from_coords(target.array, dead)
    budgets = None
    if wearout:
        budgets = sample_endurance_budgets(
            target.array, mean_budget, beta=beta, seed=seed
        )
    engine = WearLevelingEngine(
        target, policy, fault_state=fault_state, budgets=budgets
    )

    curve: List[DegradationPoint] = []
    segment_start = 1
    segment_dead = fault_state.num_dead
    prev = DegradationStats(nominal_tiles=0, executed_slots=0)

    def _close_segment(end_iteration: int) -> None:
        nonlocal segment_start, segment_dead, prev
        now = engine.degradation
        curve.append(
            DegradationPoint(
                num_dead=segment_dead,
                start_iteration=segment_start,
                end_iteration=end_iteration,
                nominal_tiles=now.nominal_tiles - prev.nominal_tiles,
                executed_slots=now.executed_slots - prev.executed_slots,
            )
        )
        prev = now
        segment_start = end_iteration + 1
        segment_dead = fault_state.num_dead

    iterations_run = 0
    for iteration in range(1, max_iterations + 1):
        engine.run_iteration(streams)
        iterations_run = iteration
        if fault_state.num_dead != segment_dead:
            _close_segment(iteration)
        if wearout and len(engine.death_events) >= deaths:
            break
    if segment_start <= iterations_run or not curve:
        _close_segment(iterations_run)

    return FaultPolicyRow(
        policy=policy_name,
        death_events=engine.death_events,
        iterations_run=iterations_run,
        max_iterations=max_iterations,
        counts=engine.tracker.snapshot(),
        dead_mask=np.array(fault_state.dead_mask),
        degradation=engine.degradation,
        curve=tuple(curve),
    )


def run_faults(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    policies: Sequence[str] = POLICY_NAMES,
    dead: Sequence[Tuple[int, int]] = (),
    wearout: bool = True,
    deaths: int = 3,
    max_iterations: int = 300,
    mean_budget: Optional[float] = None,
    beta: float = JEDEC_BETA,
    seed: int = 2025,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
    options: Optional[SchedulerOptions] = None,
    jobs: Optional[int] = None,
) -> FaultsResult:
    """Run the fault/degradation study for one network.

    Every policy faces the same sampled endurance-budget field (common
    random numbers) plus the same explicitly injected ``dead`` PEs.
    ``mean_budget=None`` auto-calibrates so baseline deaths land roughly
    mid-run. Per-policy runs are independent and fan out over a
    :class:`~repro.runtime.parallel.ParallelRunner`.
    """
    if deaths < 1:
        raise ConfigurationError(f"deaths must be >= 1, got {deaths}")
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    accelerator = accelerator or paper_accelerator()
    streams = tuple(streams_for(network, accelerator, options))
    if mean_budget is None:
        mean_budget = _calibrated_mean_budget(accelerator, streams, max_iterations)
    dead = tuple((int(u), int(v)) for u, v in dead)

    runner = ParallelRunner(jobs)
    rows = runner.map(
        _policy_fault_task,
        [
            (
                accelerator,
                name,
                trigger,
                streams,
                dead,
                mean_budget,
                beta,
                seed,
                wearout,
                deaths,
                max_iterations,
            )
            for name in policies
        ],
        labels=list(policies),
    )
    return FaultsResult(
        network=network,
        max_iterations=max_iterations,
        deaths=deaths,
        mean_budget=float(mean_budget),
        seed=seed,
        rows=tuple(rows),
    )


@dataclass(frozen=True)
class FaultMonteCarloResult(JsonResultMixin):
    """Sampled lifetime-to-first-failure statistics per policy."""

    network: str
    num_scenarios: int
    deaths: int
    rows: Tuple[Tuple[str, float, float, float], ...]  # policy, mean, p10, p90

    def format(self) -> str:
        """Per-policy death-time table."""
        return format_table(
            ("policy", "mean iters to 1st death", "p10", "p90"),
            [
                (policy, f"{mean:.1f}", f"{p10:.0f}", f"{p90:.0f}")
                for policy, mean, p10, p90 in self.rows
            ],
            title=(
                f"Fault Monte Carlo — {self.network}, "
                f"{self.num_scenarios} sampled endurance fields"
            ),
        )


def run_fault_montecarlo(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    policies: Sequence[str] = POLICY_NAMES,
    num_scenarios: int = 16,
    deaths: int = 1,
    max_iterations: int = 300,
    mean_budget: Optional[float] = None,
    beta: float = JEDEC_BETA,
    seed: int = 2025,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
    options: Optional[SchedulerOptions] = None,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
) -> FaultMonteCarloResult:
    """Monte Carlo lifetime-to-first-failure comparison across policies.

    Each policy sees the identical scenario seeds (common random
    numbers). Results are bit-identical for any ``jobs`` value — see
    :func:`repro.faults.montecarlo.sample_fault_scenarios`.
    ``checkpoint`` names a journal directory (one subdirectory per
    policy) so a killed sweep resumes where it stopped.
    """
    accelerator = accelerator or paper_accelerator()
    streams = tuple(streams_for(network, accelerator, options))
    if mean_budget is None:
        mean_budget = _calibrated_mean_budget(accelerator, streams, max_iterations)
    rows = []
    for policy_name in policies:
        policy_checkpoint = None
        if checkpoint is not None:
            import re
            from pathlib import Path

            slug = re.sub(r"[^\w.-]", "_", policy_name)
            policy_checkpoint = str(Path(checkpoint) / slug)
        samples = sample_fault_scenarios(
            accelerator,
            streams,
            policy_name=policy_name,
            num_scenarios=num_scenarios,
            mean_budget=mean_budget,
            beta=beta,
            deaths=deaths,
            max_iterations=max_iterations,
            seed=seed,
            trigger=trigger,
            jobs=jobs,
            checkpoint=policy_checkpoint,
        )
        lifetimes = samples.lifetime_to(1)
        rows.append(
            (
                policy_name,
                float(lifetimes.mean()),
                float(np.percentile(lifetimes, 10)),
                float(np.percentile(lifetimes, 90)),
            )
        )
    return FaultMonteCarloResult(
        network=network,
        num_scenarios=num_scenarios,
        deaths=deaths,
        rows=tuple(rows),
    )


@dataclass(frozen=True)
class FaultStudyResult(JsonResultMixin):
    """The CLI-facing fault artifact: degradation study + optional MC."""

    study: FaultsResult
    montecarlo: Optional[FaultMonteCarloResult]
    show_heatmaps: bool = True

    def format(self) -> str:
        """The study (with or without heatmaps), then the Monte Carlo."""
        parts = [self.study.format(heatmaps=self.show_heatmaps)]
        if self.montecarlo is not None:
            parts.append(self.montecarlo.format())
        return "\n\n".join(parts)


def run_fault_study(
    network: str = "SqueezeNet",
    dead: Sequence[Tuple[int, int]] = (),
    wearout: bool = True,
    deaths: int = 3,
    max_iterations: int = 300,
    mean_budget: Optional[float] = None,
    seed: int = 2025,
    scenarios: int = 0,
    show_heatmaps: bool = True,
    options: Optional[SchedulerOptions] = None,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
) -> FaultStudyResult:
    """The registry's fault driver: `rota faults` semantics in one call.

    ``scenarios > 0`` additionally runs the N-scenario lifetime Monte
    Carlo with the same budget calibration and seed; ``checkpoint``
    journals its chunks so a killed run can resume bit-identically.
    ``options`` selects the mapping the streams come from (e.g. a
    wear-aware ``search="beam", objective="energy-wear"`` search).
    """
    study = run_faults(
        network=network,
        dead=dead,
        wearout=wearout,
        deaths=deaths,
        max_iterations=max_iterations,
        mean_budget=mean_budget,
        seed=seed,
        options=options,
        jobs=jobs,
    )
    montecarlo = None
    if scenarios:
        montecarlo = run_fault_montecarlo(
            network=network,
            num_scenarios=scenarios,
            max_iterations=max_iterations,
            mean_budget=mean_budget,
            seed=seed,
            options=options,
            checkpoint=checkpoint,
            jobs=jobs,
        )
    return FaultStudyResult(
        study=study, montecarlo=montecarlo, show_heatmaps=show_heatmaps
    )
