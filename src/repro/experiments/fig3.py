"""Fig. 3: usage heatmaps — fixed-corner mesh vs wear-leveled torus.

Fig. 3a runs ResNet and SqueezeNet layers with the fixed starting point
of a conventional mesh array and shows the stress hotspot at the
scheduling corner; Fig. 3b repeats the run with wear-leveling on the
torus and shows near-uniform usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.heatmap import render_heatmap
from repro.analysis.metrics import usage_r_diff
from repro.arch.accelerator import Accelerator
from repro.experiments.common import run_policies, streams_for
from repro.experiments.result import JsonResultMixin

#: Networks whose heatmaps the figure shows.
FIG3_NETWORKS = ("ResNet-50", "SqueezeNet")


@dataclass(frozen=True)
class HeatmapPair:
    """Baseline and wear-leveled heatmaps of one network."""

    network: str
    baseline_counts: np.ndarray
    wear_leveled_counts: np.ndarray

    @property
    def baseline_r_diff(self) -> float:
        """Imbalance of the fixed-corner run."""
        return usage_r_diff(self.baseline_counts)

    @property
    def wear_leveled_r_diff(self) -> float:
        """Imbalance of the RWL+RO run."""
        return usage_r_diff(self.wear_leveled_counts)

    def format(self) -> str:
        """Render both heatmaps side by side (stacked in text)."""
        parts = [
            render_heatmap(
                self.baseline_counts,
                title=(
                    f"Fig. 3a — {self.network}, mesh + fixed start "
                    f"(R_diff={self.baseline_r_diff:.3g})"
                ),
            ),
            render_heatmap(
                self.wear_leveled_counts,
                title=(
                    f"Fig. 3b — {self.network}, torus + RWL+RO "
                    f"(R_diff={self.wear_leveled_r_diff:.3g})"
                ),
            ),
        ]
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Fig3Result(JsonResultMixin):
    """Heatmap pairs for every Fig. 3 network."""

    pairs: Tuple[HeatmapPair, ...]

    def pair_for(self, network: str) -> HeatmapPair:
        """Look up the heatmaps of one network."""
        for pair in self.pairs:
            if pair.network == network:
                return pair
        raise KeyError(network)

    def format(self) -> str:
        """Render every pair."""
        return "\n\n".join(pair.format() for pair in self.pairs)


def run_fig3(
    accelerator: Optional[Accelerator] = None,
    iterations: int = 10,
    networks: Tuple[str, ...] = FIG3_NETWORKS,
    jobs: Optional[int] = None,
) -> Fig3Result:
    """Produce the Fig. 3 heatmap pairs.

    A handful of iterations suffices — the hotspot pattern of the mesh
    baseline is visible after a single pass and stable thereafter.
    """
    pairs = []
    for network in networks:
        streams = streams_for(network, accelerator)
        results: Dict[str, object] = run_policies(
            streams,
            accelerator,
            policies=("baseline", "rwl+ro"),
            iterations=iterations,
            record_trace=False,
            jobs=jobs,
        )
        pairs.append(
            HeatmapPair(
                network=network,
                baseline_counts=results["baseline"].counts,
                wear_leveled_counts=results["rwl+ro"].counts,
            )
        )
    return Fig3Result(pairs=tuple(pairs))
