"""Section V-D: design overhead and the no-performance-degradation claim.

Two executable checks replace the paper's Synopsys DC synthesis:

* the parametric area model prices the folded-torus links and the
  wear-leveling controller registers, reproducing the *order* of the
  published 0.3% overhead;
* the cycle model demonstrates position independence — a tile costs the
  same number of cycles wherever its utilization space sits, so RWL+RO
  adds zero cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.arch.area import AreaBreakdown, AreaModel
from repro.dataflow.cycles import CycleModel
from repro.experiments.common import execution_for, paper_accelerator
from repro.experiments.result import JsonResultMixin
from repro.workloads.registry import network_names


@dataclass(frozen=True)
class OverheadResult(JsonResultMixin):
    """Area overhead and cycle-penalty findings."""

    mesh_breakdown: AreaBreakdown
    torus_breakdown: AreaBreakdown
    overhead_ratio: float
    naive_overhead_ratio: float
    wear_leveling_logic_um2: float
    cycle_penalty: int

    @property
    def overhead_percent(self) -> float:
        """Folded-torus area overhead in percent (paper: 0.3%)."""
        return 100.0 * self.overhead_ratio

    @property
    def matches_paper_order(self) -> bool:
        """Overhead is sub-1%, the order of the published 0.3%."""
        return 0.0 < self.overhead_ratio < 0.01

    def format(self) -> str:
        """Area breakdown table plus the headline numbers."""
        mesh = self.mesh_breakdown
        torus = self.torus_breakdown
        rows = [
            ("PE logic", f"{mesh.pe_logic_um2:,.0f}", f"{torus.pe_logic_um2:,.0f}"),
            (
                "local buffers",
                f"{mesh.local_buffer_um2:,.0f}",
                f"{torus.local_buffer_um2:,.0f}",
            ),
            ("GLB", f"{mesh.glb_um2:,.0f}", f"{torus.glb_um2:,.0f}"),
            (
                "local network",
                f"{mesh.local_network_um2:,.0f}",
                f"{torus.local_network_um2:,.0f}",
            ),
            (
                "controller",
                f"{mesh.controller_um2:,.0f}",
                f"{torus.controller_um2:,.0f}",
            ),
            ("TOTAL", f"{mesh.total_um2:,.0f}", f"{torus.total_um2:,.0f}"),
        ]
        table = format_table(
            ("component (um^2)", "mesh", "RoTA (folded torus)"),
            rows,
            title="Sec. V-D — area breakdown",
        )
        summary = (
            f"\nfolded-torus overhead: {self.overhead_percent:.2f}% "
            f"(paper: 0.3%); naive layout would cost "
            f"{100.0 * self.naive_overhead_ratio:.2f}%\n"
            f"wear-leveling logic: {self.wear_leveling_logic_um2:.0f} um^2\n"
            f"cycle penalty of striding utilization spaces: "
            f"{self.cycle_penalty} cycles (paper: none)"
        )
        return table + summary


def run_overhead(accelerator: Optional[Accelerator] = None) -> OverheadResult:
    """Evaluate the Section V-D overhead claims."""
    accelerator = accelerator or paper_accelerator(torus=False)
    mesh = accelerator.as_mesh()
    model = AreaModel()
    mesh_breakdown = model.breakdown(mesh)
    torus_breakdown = model.breakdown(mesh.as_torus())
    return OverheadResult(
        mesh_breakdown=mesh_breakdown,
        torus_breakdown=torus_breakdown,
        overhead_ratio=model.torus_overhead_ratio(mesh, folded=True),
        naive_overhead_ratio=model.torus_overhead_ratio(mesh, folded=False),
        wear_leveling_logic_um2=model.wear_leveling_logic_um2(mesh.as_torus()),
        cycle_penalty=_cycle_penalty(mesh.as_torus()),
    )


def _cycle_penalty(accelerator: Accelerator) -> int:
    """Extra per-tile cycles of striding utilization spaces vs anchored.

    For every Table II layer, the tile cost is evaluated at the anchored
    origin and at every start coordinate the RWL rotation visits; the sum
    of differences is the penalty. A wrapped rectangle covers exactly
    ``x * y`` PEs wherever it sits, so the result is zero — computed, not
    asserted.
    """
    from repro.core.policies import RwlPolicy

    cycle_model = CycleModel(accelerator)
    policy = RwlPolicy()
    penalty = 0
    for name in network_names():
        execution = execution_for(name, accelerator)
        for layer_execution in execution.layers:
            mapping = layer_execution.schedule.mapping
            stream = layer_execution.stream
            anchored = cycle_model.pass_cycles_at(mapping, (0, 0)).steady_state
            us, vs, multiplicity, _ = policy.layer_grouped(
                stream.space_width,
                stream.space_height,
                stream.num_tiles,
                accelerator.width,
                accelerator.height,
                (0, 0),
            )
            for u, v, count in zip(us, vs, multiplicity):
                striding = cycle_model.pass_cycles_at(
                    mapping, (int(u), int(v))
                ).steady_state
                penalty += int(count) * (striding - anchored)
    return penalty
