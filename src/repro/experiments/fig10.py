"""Fig. 10: wear-leveling gains across PE-array sizes.

Running SqueezeNet on increasingly large arrays, the PE-utilization
ratio drops (layer dimensions misalign more), the baseline's imbalance
worsens, and the RWL+RO gain grows — the paper's claim that the scheme
matters *more* for bigger accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.presets import scaled_array
from repro.dataflow.simulator import DataflowSimulator
from repro.experiments.common import run_policies
from repro.experiments.result import JsonResultMixin
from repro.reliability.lifetime import improvement_from_counts
from repro.runtime import ParallelRunner
from repro.workloads.registry import get_network

#: Array sizes swept by the reproduction (the paper sweeps upward from
#: the Eyeriss 14x12 baseline).
DEFAULT_SIZES = ((8, 8), (14, 12), (16, 16), (24, 24), (32, 32))


@dataclass(frozen=True)
class ArraySizePoint:
    """Wear-leveling outcome on one array size."""

    width: int
    height: int
    utilization: float
    rwl: float
    rwl_ro: float

    @property
    def label(self) -> str:
        """Axis label, e.g. ``"14x12"``."""
        return f"{self.width}x{self.height}"


@dataclass(frozen=True)
class Fig10Result(JsonResultMixin):
    """The Fig. 10 sweep."""

    network: str
    iterations: int
    points: Tuple[ArraySizePoint, ...]

    @property
    def gain_grows_with_size(self) -> bool:
        """RWL+RO gain on the largest array exceeds the smallest."""
        return self.points[-1].rwl_ro > self.points[0].rwl_ro

    def format(self) -> str:
        """Paper-style sweep table."""
        rows = [
            (
                point.label,
                f"{point.utilization:.1%}",
                f"{point.rwl:.2f}x",
                f"{point.rwl_ro:.2f}x",
            )
            for point in self.points
        ]
        return format_table(
            ("PE array", "PE util", "RWL", "RWL+RO"),
            rows,
            title=(
                f"Fig. 10 — lifetime improvement vs array size, "
                f"{self.network} x {self.iterations} iterations"
            ),
        )


def _size_point(spec: Tuple) -> ArraySizePoint:
    """Evaluate one array size (module-level so the pool can pickle it)."""
    network, width, height, iterations = spec
    workload = get_network(network)
    accelerator = scaled_array(width, height, torus=True)
    simulator = DataflowSimulator(accelerator)
    execution = simulator.execute_network(workload.layers, name=workload.name)
    results = run_policies(
        execution.streams(),
        accelerator,
        iterations=iterations,
        record_trace=False,
    )
    baseline = results["baseline"].counts
    return ArraySizePoint(
        width=width,
        height=height,
        utilization=execution.mean_utilization,
        rwl=improvement_from_counts(baseline, results["rwl"].counts),
        rwl_ro=improvement_from_counts(baseline, results["rwl+ro"].counts),
    )


def run_fig10(
    network: str = "SqueezeNet",
    sizes: Tuple[Tuple[int, int], ...] = DEFAULT_SIZES,
    iterations: int = 200,
    jobs: Optional[int] = None,
) -> Fig10Result:
    """Sweep PE-array sizes and measure the wear-leveling gains.

    The per-size evaluations are independent and fan out over a
    :class:`~repro.runtime.parallel.ParallelRunner`; point order and
    contents are identical for any job count.
    """
    runner = ParallelRunner(jobs)
    points = runner.map(
        _size_point,
        [(network, width, height, iterations) for width, height in sizes],
        labels=[f"{width}x{height}" for width, height in sizes],
    )
    return Fig10Result(network=network, iterations=iterations, points=tuple(points))
