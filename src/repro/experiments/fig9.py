"""Fig. 9: layer-wise lifetime improvement vs the theoretical ceiling.

For each layer (run in isolation under RWL), the lifetime improvement
over the fixed-corner baseline is plotted against the layer's PE
utilization; Section V-C derives the perfect-wear-leveling ceiling
``utilization ** (1/beta - 1)``. The reproduction checks that per-layer
RWL improvements approach but never exceed the ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import BaselinePolicy, RwlPolicy
from repro.experiments.common import execution_for, paper_accelerator
from repro.experiments.result import JsonResultMixin
from repro.reliability.lifetime import improvement_from_counts, lifetime_upper_bound
from repro.workloads.registry import network_names

#: Numerical headroom when checking "improvement <= bound": the bound is
#: exact only for perfectly divisible geometry.
BOUND_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LayerPoint:
    """One scatter point of Fig. 9."""

    network: str
    layer: str
    utilization: float
    improvement: float
    upper_bound: float

    @property
    def within_bound(self) -> bool:
        """Improvement does not exceed the perfect-leveling ceiling."""
        return self.improvement <= self.upper_bound + BOUND_TOLERANCE

    @property
    def gap(self) -> float:
        """Fraction of the ceiling actually achieved."""
        return self.improvement / self.upper_bound


@dataclass(frozen=True)
class Fig9Result(JsonResultMixin):
    """All scatter points plus aggregate bound checks."""

    points: Tuple[LayerPoint, ...]
    iterations: int

    @property
    def all_within_bound(self) -> bool:
        """Every layer respects the Section V-C ceiling."""
        return all(point.within_bound for point in self.points)

    @property
    def mean_gap(self) -> float:
        """Average fraction of the ceiling achieved (paper: close to 1)."""
        return sum(point.gap for point in self.points) / len(self.points)

    def format(self, limit: int = 20) -> str:
        """A sample of scatter points, lowest utilization first."""
        ordered = sorted(self.points, key=lambda point: point.utilization)
        rows = [
            (
                point.network,
                point.layer,
                f"{point.utilization:.1%}",
                f"{point.improvement:.2f}x",
                f"{point.upper_bound:.2f}x",
                f"{point.gap:.2f}",
            )
            for point in ordered[:limit]
        ]
        return format_table(
            ("network", "layer", "util", "RWL", "bound", "achieved"),
            rows,
            title=(
                f"Fig. 9 — layer-wise improvement vs ceiling "
                f"({len(self.points)} layers, mean achieved "
                f"{self.mean_gap:.2f})"
            ),
        )


def run_fig9(
    accelerator: Optional[Accelerator] = None,
    networks: Optional[Tuple[str, ...]] = None,
    iterations: int = 1,
) -> Fig9Result:
    """Per-layer RWL improvement vs the theoretical upper bound.

    Each layer runs in isolation under the baseline and RWL; the
    improvement is Eq. 4 on the two ledgers. Per-layer RWL restarts from
    the origin every iteration, so its usage counts scale linearly with
    the iteration count and the improvement is iteration-independent —
    ``iterations=1`` already gives the figure's steady-state points.
    """
    accelerator = accelerator or paper_accelerator()
    mesh = accelerator.as_mesh()
    torus = accelerator.as_torus()
    points: List[LayerPoint] = []
    for name in networks or network_names():
        execution = execution_for(name, accelerator)
        for layer_execution in execution.layers:
            stream = layer_execution.stream
            baseline_engine = WearLevelingEngine(mesh, BaselinePolicy())
            rwl_engine = WearLevelingEngine(torus, RwlPolicy())
            baseline_engine.run([stream], iterations=iterations, record_trace=False)
            rwl_engine.run([stream], iterations=iterations, record_trace=False)
            improvement = improvement_from_counts(
                baseline_engine.tracker.counts, rwl_engine.tracker.counts
            )
            points.append(
                LayerPoint(
                    network=name,
                    layer=stream.layer_name,
                    utilization=layer_execution.utilization,
                    improvement=improvement,
                    upper_bound=lifetime_upper_bound(layer_execution.utilization),
                )
            )
    return Fig9Result(points=tuple(points), iterations=iterations)
