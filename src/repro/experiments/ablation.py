"""Design-choice ablations (DESIGN.md Section 4).

Three studies that are not paper figures but quantify choices the
reproduction had to make:

* **Vertical-stride trigger** — Algorithm 1's exact ``u == 0`` trigger vs
  the robust boundary-wrap trigger (they differ only when RO carries the
  coordinate into a residue class that never revisits column 0).
* **Dataflow preset** — whether the wear-leveling conclusions survive a
  switch from the flexible NeuroSpector-style search to fixed
  output-stationary / weight-stationary mappers.
* **Usage accounting granularity** — allocation-counting (the paper's
  ``A_PE``) vs cycle-weighted stress accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.dataflow.scheduler import SchedulerOptions
from repro.experiments.common import (
    execution_for,
    paper_accelerator,
    run_policies,
    streams_for,
)
from repro.experiments.result import JsonResultMixin
from repro.reliability.lifetime import improvement_from_counts


@dataclass(frozen=True)
class TriggerAblationRow:
    """RWL+RO improvement of one workload under both triggers."""

    network: str
    origin_trigger: float
    wrap_trigger: float

    @property
    def relative_difference(self) -> float:
        """Fractional gap between the two triggers."""
        return abs(self.origin_trigger - self.wrap_trigger) / self.origin_trigger


@dataclass(frozen=True)
class TriggerAblationResult(JsonResultMixin):
    """Trigger ablation across workloads."""

    iterations: int
    rows: Tuple[TriggerAblationRow, ...]

    @property
    def max_relative_difference(self) -> float:
        """Largest trigger-induced gap across workloads."""
        return max(row.relative_difference for row in self.rows)

    def format(self) -> str:
        """Ablation table."""
        table_rows = [
            (
                row.network,
                f"{row.origin_trigger:.3f}x",
                f"{row.wrap_trigger:.3f}x",
                f"{100 * row.relative_difference:.2f}%",
            )
            for row in self.rows
        ]
        return format_table(
            ("network", "origin trigger (paper)", "wrap trigger", "gap"),
            table_rows,
            title=(
                f"Ablation — vertical-stride trigger, RWL+RO improvements "
                f"({self.iterations} iterations)"
            ),
        )


def run_trigger_ablation(
    networks: Tuple[str, ...] = ("SqueezeNet", "MobileNet v3", "ResNet-50"),
    accelerator: Optional[Accelerator] = None,
    iterations: int = 200,
    jobs: Optional[int] = None,
) -> TriggerAblationResult:
    """Compare Algorithm 1's exact trigger with the wrap trigger."""
    rows = []
    for network in networks:
        streams = streams_for(network, accelerator)
        improvements = {}
        for trigger in (StrideTrigger.ORIGIN, StrideTrigger.WRAP):
            results = run_policies(
                streams,
                accelerator,
                policies=("baseline", "rwl+ro"),
                iterations=iterations,
                record_trace=False,
                trigger=trigger,
                jobs=jobs,
            )
            improvements[trigger] = improvement_from_counts(
                results["baseline"].counts, results["rwl+ro"].counts
            )
        rows.append(
            TriggerAblationRow(
                network=network,
                origin_trigger=improvements[StrideTrigger.ORIGIN],
                wrap_trigger=improvements[StrideTrigger.WRAP],
            )
        )
    return TriggerAblationResult(iterations=iterations, rows=tuple(rows))


@dataclass(frozen=True)
class DataflowAblationRow:
    """Wear-leveling outcome under one scheduler preset."""

    dataflow: str
    utilization: float
    rwl_ro: float


@dataclass(frozen=True)
class DataflowAblationResult(JsonResultMixin):
    """Dataflow ablation for one workload."""

    network: str
    iterations: int
    rows: Tuple[DataflowAblationRow, ...]

    @property
    def conclusion_robust(self) -> bool:
        """RWL+RO beats the baseline under every preset."""
        return all(row.rwl_ro > 1.0 for row in self.rows)

    def format(self) -> str:
        """Ablation table."""
        table_rows = [
            (row.dataflow, f"{row.utilization:.1%}", f"{row.rwl_ro:.3f}x")
            for row in self.rows
        ]
        return format_table(
            ("dataflow preset", "PE util", "RWL+RO"),
            table_rows,
            title=f"Ablation — scheduler dataflow preset, {self.network}",
        )


def run_dataflow_ablation(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
    presets: Tuple[str, ...] = (
        "flexible",
        "output_stationary",
        "weight_stationary",
    ),
    jobs: Optional[int] = None,
) -> DataflowAblationResult:
    """Re-run the headline comparison under fixed-dataflow schedulers."""
    accelerator = accelerator or paper_accelerator()
    rows = []
    for preset in presets:
        options = SchedulerOptions(dataflow=preset)
        execution = execution_for(network, accelerator, options)
        results = run_policies(
            execution.streams(),
            accelerator,
            policies=("baseline", "rwl+ro"),
            iterations=iterations,
            record_trace=False,
            jobs=jobs,
        )
        rows.append(
            DataflowAblationRow(
                dataflow=preset,
                utilization=execution.mean_utilization,
                rwl_ro=improvement_from_counts(
                    results["baseline"].counts, results["rwl+ro"].counts
                ),
            )
        )
    return DataflowAblationResult(
        network=network, iterations=iterations, rows=tuple(rows)
    )


@dataclass(frozen=True)
class AccountingAblationResult(JsonResultMixin):
    """Allocation-counting vs cycle-weighted stress accounting."""

    network: str
    iterations: int
    allocation_improvement: float
    cycle_weighted_improvement: float

    @property
    def consistent(self) -> bool:
        """Both accountings agree that wear-leveling helps."""
        return (
            self.allocation_improvement > 1.0
            and self.cycle_weighted_improvement > 1.0
        )

    def format(self) -> str:
        """Two-row comparison."""
        return format_table(
            ("accounting", "RWL+RO improvement"),
            [
                ("allocations (paper A_PE)", f"{self.allocation_improvement:.3f}x"),
                ("cycle-weighted", f"{self.cycle_weighted_improvement:.3f}x"),
            ],
            title=f"Ablation — usage accounting granularity, {self.network}",
        )


def run_accounting_ablation(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = 100,
) -> AccountingAblationResult:
    """Compare allocation-granular and cycle-weighted wear accounting."""
    accelerator = accelerator or paper_accelerator()
    streams = streams_for(network, accelerator)
    improvements = {}
    for weighted in (False, True):
        ledgers = {}
        for name in ("baseline", "rwl+ro"):
            policy = make_policy(name)
            target = (
                accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
            )
            engine = WearLevelingEngine(target, policy, cycle_weighted=weighted)
            ledgers[name] = engine.run(
                streams, iterations=iterations, record_trace=False
            ).counts
        improvements[weighted] = improvement_from_counts(
            ledgers["baseline"], ledgers["rwl+ro"]
        )
    return AccountingAblationResult(
        network=network,
        iterations=iterations,
        allocation_improvement=improvements[False],
        cycle_weighted_improvement=improvements[True],
    )


@dataclass(frozen=True)
class AblationSuiteResult(JsonResultMixin):
    """All three design-choice ablations as one artifact."""

    trigger: TriggerAblationResult
    dataflow: DataflowAblationResult
    accounting: AccountingAblationResult

    def format(self) -> str:
        """The three ablation tables, in DESIGN.md order."""
        return "\n\n".join(
            (
                self.trigger.format(),
                self.dataflow.format(),
                self.accounting.format(),
            )
        )


def run_ablations(jobs: Optional[int] = None) -> AblationSuiteResult:
    """The registry's ablation driver: every study at its default scale."""
    return AblationSuiteResult(
        trigger=run_trigger_ablation(jobs=jobs),
        dataflow=run_dataflow_ablation(jobs=jobs),
        accounting=run_accounting_ablation(),
    )
