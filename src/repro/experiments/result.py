"""The experiment result contract: ``format()`` text + ``to_dict()`` JSON.

Every driver returns a frozen dataclass with the artifact's data series.
Historically those objects only knew how to print themselves
(``format()``); this module adds the structured half of the contract so
dashboards, regression trackers, and ``rota <cmd> --json`` can consume
results without scraping tables:

* :func:`to_jsonable` — one shared recursive converter (numpy arrays →
  lists, nested dataclasses → dicts, enums → values, paths → strings);
* :class:`JsonResultMixin` — gives a result dataclass a ``to_dict()``
  built on that converter, tagged with the concrete result type;
* :class:`ExperimentResult` — the structural protocol the registry and
  the CLI program against.

The round-trip contract: ``json.loads(json.dumps(r.to_dict()))`` equals
``r.to_dict()`` for every registered experiment (covered by
``tests/experiments/test_registry.py``).
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import PurePath
from typing import Any, Dict

try:  # pragma: no cover - typing.Protocol is 3.8+; repo floor is 3.9
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = ["ExperimentResult", "JsonResultMixin", "to_jsonable"]


def to_jsonable(value: Any) -> Any:
    """Convert a result value into JSON-serializable plain data.

    Handles the types experiment results are built from: primitives,
    numpy scalars/arrays (``tolist()``), enums (their values), paths
    (strings), dataclasses (field dicts, recursively), and containers.
    Dict keys become strings, as JSON requires. Anything else raises
    ``TypeError`` — a result holding an unconvertible object is a bug,
    not something to ``repr`` away silently.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        return to_jsonable(value.value)
    if isinstance(value, PurePath):
        return str(value)
    # Numpy is imported lazily so this module stays cheap for `rota list`.
    type_name = type(value).__module__
    if type_name.startswith("numpy"):
        if hasattr(value, "tolist"):
            return value.tolist()
        return value.item()
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return [to_jsonable(item) for item in items]
    raise TypeError(
        f"cannot convert {type(value).__name__} to JSON-safe data; "
        f"experiment results must be built from plain data"
    )


class JsonResultMixin:
    """Adds the structured half of the result contract to a dataclass.

    ``to_dict()`` recurses through every field with :func:`to_jsonable`
    and tags the payload with the concrete result type under
    ``"result"``, so mixed JSON streams stay self-describing.
    """

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every field (numpy arrays become lists)."""
        if not is_dataclass(self):
            raise TypeError(
                f"{type(self).__name__} must be a dataclass to use "
                f"JsonResultMixin"
            )
        payload: Dict[str, Any] = {"result": type(self).__name__}
        for field_ in fields(self):
            payload[field_.name] = to_jsonable(getattr(self, field_.name))
        return payload


@runtime_checkable
class ExperimentResult(Protocol):
    """What the registry, CLI, and report writer require of a result."""

    def format(self) -> str:
        """Human-readable text (the paper-style rows)."""
        ...

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe structured payload."""
        ...
