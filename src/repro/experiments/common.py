"""Shared plumbing for the experiment drivers.

Centralizes the paper's evaluation setup (Eyeriss-style 14x12 array,
energy-optimal scheduling) plus the caches and the parallel fan-out so
that drivers, benches, and examples never schedule the same network —
or re-run the same policy — twice.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.arch.presets import eyeriss_v1
from repro.core.engine import RunResult, WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.dataflow.scheduler import SchedulerOptions
from repro.dataflow.simulator import DataflowSimulator, NetworkExecution
from repro.dataflow.tiling import TileStream
from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    ParallelRunner,
    ResultCache,
    accelerator_fingerprint,
    content_hash,
    result_cache,
)
from repro.workloads.registry import get_network

#: Iteration counts of the paper's transient experiments (Fig. 6a / 6b-7).
PAPER_ITERATIONS = 1000
PAPER_ZOOM_ITERATIONS = 200

#: The three schemes compared throughout Section V.
POLICY_NAMES = ("baseline", "rwl", "rwl+ro")

#: Default entry cap of the per-process schedule cache. Each entry is a
#: full :class:`NetworkExecution`; long sweeps over many (network,
#: accelerator, options) combinations would otherwise grow without
#: bound. Override with ``REPRO_EXECUTION_CACHE_SIZE`` (0 disables).
EXECUTION_CACHE_SIZE = 64

_EXECUTION_CACHE: "OrderedDict[Tuple, NetworkExecution]" = OrderedDict()


def _execution_cache_cap() -> int:
    """Resolve the execution-cache entry cap from the environment."""
    raw = os.environ.get("REPRO_EXECUTION_CACHE_SIZE", "").strip()
    if not raw:
        return EXECUTION_CACHE_SIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return EXECUTION_CACHE_SIZE


def paper_accelerator(torus: bool = True) -> Accelerator:
    """The paper's evaluation platform: Eyeriss-style 14x12 array."""
    return eyeriss_v1(torus=torus)


def execution_for(
    network_name: str,
    accelerator: Optional[Accelerator] = None,
    options: Optional[SchedulerOptions] = None,
) -> NetworkExecution:
    """Schedule one Table II network (cached per process, LRU-bounded).

    The cache keys on the *full* accelerator configuration (via its
    content fingerprint), not just the array dimensions — two
    accelerators with identical width/height but different buffer or
    NoC configurations schedule differently and must not share entries.
    The least recently used entry is evicted once the cache exceeds
    ``REPRO_EXECUTION_CACHE_SIZE`` entries.
    """
    accelerator = accelerator or paper_accelerator()
    options = SchedulerOptions() if options is None else options
    network = get_network(network_name)
    key = (network.name, accelerator_fingerprint(accelerator), options)
    cached = _EXECUTION_CACHE.get(key)
    if cached is not None:
        _EXECUTION_CACHE.move_to_end(key)
        return cached
    simulator = DataflowSimulator(accelerator, options)
    cached = simulator.execute_network(network.layers, name=network.name)
    cap = _execution_cache_cap()
    if cap > 0:
        _EXECUTION_CACHE[key] = cached
        while len(_EXECUTION_CACHE) > cap:
            _EXECUTION_CACHE.popitem(last=False)
    return cached


def streams_for(
    network_name: str,
    accelerator: Optional[Accelerator] = None,
    options: Optional[SchedulerOptions] = None,
) -> List[TileStream]:
    """The per-layer tile streams of one network (cached per process)."""
    return execution_for(network_name, accelerator, options).streams()


def run_policy_key(
    accelerator: Accelerator,
    policy_name: str,
    trigger: StrideTrigger,
    streams: Sequence[TileStream],
    iterations: int,
    record_trace: bool,
    record_snapshots: bool,
) -> str:
    """Content key of one policy run, for the persistent result cache.

    Covers everything that determines the engine's output: the full
    accelerator configuration, the policy and its trigger, the exact
    tile streams, the iteration count, what gets recorded, and the
    cache schema version (bumped when engine semantics change).
    """
    return content_hash(
        "run_policy",
        CACHE_SCHEMA_VERSION,
        accelerator_fingerprint(accelerator),
        policy_name,
        trigger,
        tuple(streams),
        iterations,
        record_trace,
        record_snapshots,
    )


def _policy_task(spec: Tuple) -> RunResult:
    """Run one policy over one stream set (module-level for pickling)."""
    (
        accelerator,
        policy_name,
        trigger,
        streams,
        iterations,
        record_trace,
        record_snapshots,
    ) = spec
    policy = make_policy(policy_name, trigger)
    target = accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
    engine = WearLevelingEngine(target, policy)
    # The analytic orbit fold is bit-identical to the iterative walk and
    # falls back automatically for requests it cannot serve exactly
    # (e.g. snapshot recording for Fig. 7).
    return engine.run(
        streams,
        iterations=iterations,
        record_trace=record_trace,
        record_snapshots=record_snapshots,
        mode="analytic",
    )


def run_policies(
    streams: Sequence[TileStream],
    accelerator: Optional[Accelerator] = None,
    policies: Sequence[str] = POLICY_NAMES,
    iterations: int = PAPER_ITERATIONS,
    record_trace: bool = True,
    record_snapshots: bool = False,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, RunResult]:
    """Run the same tile streams under several policies.

    The baseline runs on the mesh variant of the accelerator (it needs no
    torus) and the striding policies on the torus variant, matching the
    paper's baseline-vs-RoTA comparison. Results share identical total
    work, so Eq. 4 applies directly to any pair of count arrays.

    Policies that miss the persistent result cache fan out over a
    :class:`~repro.runtime.parallel.ParallelRunner` (``jobs=None`` reads
    ``REPRO_JOBS``; the default is serial). Serial and parallel runs
    return bit-identical results, and cache hits skip the engine
    entirely. Pass ``cache`` to use a non-default store (tests), or
    disable caching globally with ``REPRO_RESULT_CACHE=off``.
    """
    accelerator = accelerator or paper_accelerator()
    streams = tuple(streams)
    store = result_cache() if cache is None else cache
    results: Dict[str, RunResult] = {}
    pending: List[Tuple[str, str]] = []
    for name in policies:
        key = run_policy_key(
            accelerator, name, trigger, streams, iterations,
            record_trace, record_snapshots,
        )
        hit = store.get(key)
        if isinstance(hit, RunResult):
            results[name] = hit
        else:
            pending.append((name, key))
    if pending:
        runner = ParallelRunner(jobs)
        specs = [
            (
                accelerator,
                name,
                trigger,
                streams,
                iterations,
                record_trace,
                record_snapshots,
            )
            for name, _ in pending
        ]
        fresh = runner.map(_policy_task, specs, labels=[name for name, _ in pending])
        for (name, key), result in zip(pending, fresh):
            results[name] = result
            store.put(key, result)
    return {name: results[name] for name in policies}
