"""Shared plumbing for the experiment drivers.

Centralizes the paper's evaluation setup (Eyeriss-style 14x12 array,
energy-optimal scheduling) plus per-process caches so that drivers,
benches, and examples never schedule the same network twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.arch.presets import eyeriss_v1
from repro.core.engine import RunResult, WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.dataflow.scheduler import SchedulerOptions
from repro.dataflow.simulator import DataflowSimulator, NetworkExecution
from repro.dataflow.tiling import TileStream
from repro.workloads.registry import get_network

#: Iteration counts of the paper's transient experiments (Fig. 6a / 6b-7).
PAPER_ITERATIONS = 1000
PAPER_ZOOM_ITERATIONS = 200

#: The three schemes compared throughout Section V.
POLICY_NAMES = ("baseline", "rwl", "rwl+ro")

_EXECUTION_CACHE: Dict[Tuple, NetworkExecution] = {}


def paper_accelerator(torus: bool = True) -> Accelerator:
    """The paper's evaluation platform: Eyeriss-style 14x12 array."""
    return eyeriss_v1(torus=torus)


def execution_for(
    network_name: str,
    accelerator: Optional[Accelerator] = None,
    options: SchedulerOptions = SchedulerOptions(),
) -> NetworkExecution:
    """Schedule one Table II network (cached per process)."""
    accelerator = accelerator or paper_accelerator()
    network = get_network(network_name)
    key = (network.name, accelerator.width, accelerator.height, options)
    cached = _EXECUTION_CACHE.get(key)
    if cached is None:
        simulator = DataflowSimulator(accelerator, options)
        cached = simulator.execute_network(network.layers, name=network.name)
        _EXECUTION_CACHE[key] = cached
    return cached


def streams_for(
    network_name: str,
    accelerator: Optional[Accelerator] = None,
    options: SchedulerOptions = SchedulerOptions(),
) -> List[TileStream]:
    """The per-layer tile streams of one network (cached per process)."""
    return execution_for(network_name, accelerator, options).streams()


def run_policies(
    streams: Sequence[TileStream],
    accelerator: Optional[Accelerator] = None,
    policies: Sequence[str] = POLICY_NAMES,
    iterations: int = PAPER_ITERATIONS,
    record_trace: bool = True,
    record_snapshots: bool = False,
    trigger: StrideTrigger = StrideTrigger.ORIGIN,
) -> Dict[str, RunResult]:
    """Run the same tile streams under several policies.

    The baseline runs on the mesh variant of the accelerator (it needs no
    torus) and the striding policies on the torus variant, matching the
    paper's baseline-vs-RoTA comparison. Results share identical total
    work, so Eq. 4 applies directly to any pair of count arrays.
    """
    accelerator = accelerator or paper_accelerator()
    results: Dict[str, RunResult] = {}
    for name in policies:
        policy = make_policy(name, trigger)
        target = accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
        engine = WearLevelingEngine(target, policy)
        results[name] = engine.run(
            streams,
            iterations=iterations,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
        )
    return results
