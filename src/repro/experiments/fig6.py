"""Fig. 6: max PE usage difference over 1,000 SqueezeNet iterations.

Fig. 6a compares D_max growth of the baseline, RWL-only, and RWL+RO
schemes; Fig. 6b zooms into the first 200 iterations, where RWL+RO is
visibly *bounded* while the other two grow; Figs. 6c-e show the final
usage heatmaps. The shapes to reproduce: baseline slope >> RWL slope > 0,
RWL+RO flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.heatmap import render_heatmap
from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import RunResult
from repro.experiments.result import JsonResultMixin
from repro.experiments.common import (
    PAPER_ITERATIONS,
    PAPER_ZOOM_ITERATIONS,
    run_policies,
    streams_for,
)


def _tail_slope(trace: np.ndarray) -> float:
    """Least-squares growth rate over the second half of a trace.

    A bounded-but-oscillating series (RWL+RO's D_max bounces inside a
    fixed band) fits a near-zero slope; endpoint differences would
    misread the oscillation as growth.
    """
    tail = np.asarray(trace[len(trace) // 2 :], dtype=float)
    if tail.size < 2:
        return 0.0
    steps = np.arange(tail.size, dtype=float)
    return float(np.polyfit(steps, tail, 1)[0])


@dataclass(frozen=True)
class Fig6Result(JsonResultMixin):
    """Traces and final heatmaps of the three schemes."""

    network: str
    iterations: int
    results: Dict[str, RunResult]

    def trace(self, policy: str) -> np.ndarray:
        """D_max after each iteration for one policy (Fig. 6a series)."""
        return self.results[policy].max_difference_trace()

    def zoom(self, policy: str, n: int = PAPER_ZOOM_ITERATIONS) -> np.ndarray:
        """The first ``n`` iterations of a policy's trace (Fig. 6b)."""
        return self.trace(policy)[:n]

    def slope(self, policy: str) -> float:
        """Steady-state D_max growth per iteration."""
        return _tail_slope(self.trace(policy))

    @property
    def rwl_ro_bounded(self) -> bool:
        """Whether the RWL+RO trace stops growing (the paper's claim).

        A bounded-but-oscillating trace has a tail slope that vanishes as
        the window grows; anything persistently below 0.05 usage counts
        per iteration is flat next to the baseline's thousands.
        """
        return self.slope("rwl+ro") < 0.05

    def final_counts(self, policy: str) -> np.ndarray:
        """Usage heatmap after all iterations (Figs. 6c-e)."""
        return self.results[policy].counts

    def format(self) -> str:
        """Summary table plus the three final heatmaps."""
        rows = []
        for policy in ("baseline", "rwl", "rwl+ro"):
            trace = self.trace(policy)
            rows.append(
                (
                    policy,
                    int(trace[0]),
                    int(trace[PAPER_ZOOM_ITERATIONS - 1])
                    if len(trace) >= PAPER_ZOOM_ITERATIONS
                    else int(trace[-1]),
                    int(trace[-1]),
                    f"{self.slope(policy):.2f}",
                )
            )
        table = format_table(
            ("scheme", "Dmax@1", f"Dmax@{min(PAPER_ZOOM_ITERATIONS, self.iterations)}",
             f"Dmax@{self.iterations}", "tail slope/iter"),
            rows,
            title=(
                f"Fig. 6a/6b — max PE usage difference, {self.network} x "
                f"{self.iterations} iterations"
            ),
        )
        maps = "\n\n".join(
            render_heatmap(
                self.final_counts(policy),
                title=f"Fig. 6{label} — {policy} usage heatmap",
            )
            for label, policy in zip("cde", ("baseline", "rwl", "rwl+ro"))
        )
        return table + "\n\n" + maps


def run_fig6(
    network: str = "SqueezeNet",
    accelerator: Optional[Accelerator] = None,
    iterations: int = PAPER_ITERATIONS,
    jobs: Optional[int] = None,
) -> Fig6Result:
    """Run the three schemes for Fig. 6 and collect traces + heatmaps."""
    streams = streams_for(network, accelerator)
    results = run_policies(
        streams, accelerator, iterations=iterations, record_trace=True, jobs=jobs
    )
    return Fig6Result(network=network, iterations=iterations, results=results)
