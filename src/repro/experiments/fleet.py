"""Fleet studies: wear-aware dispatch across many accelerators.

Three registered experiments drive :mod:`repro.fleet`:

* ``fleet-lifetime`` (:func:`run_fleet_lifetime`) — one dispatch policy
  in detail: per-device wear table, shared-scale α-heatmap small
  multiples, availability timeline, and (optionally) a seeded Monte
  Carlo over traffic/budget scenarios;
* ``fleet-policies`` (:func:`run_fleet_policies`) — the core result:
  every dispatch policy on the *same* seeded traffic, compared on fleet
  MTTF, latency, throughput, and device-level wear balance. On the
  default skewed bursty scenario ``rotational`` meets or beats
  ``round_robin`` on fleet MTTF at equal throughput;
* ``fleet-degradation`` (:func:`run_fleet_degradation`) — budgets
  calibrated so PEs die mid-run, contrasting retiring devices early
  against serving degraded ones (arXiv:2412.16208's sustainable-reuse
  question at fleet scale).

All three are pure functions of their parameters: traffic and budget
seeds are spawned up front, so ``--jobs`` fan-out never changes a bit
of the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.heatmap import render_heatmap_grid
from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.errors import ConfigurationError
from repro.experiments.common import paper_accelerator
from repro.experiments.result import JsonResultMixin
from repro.fleet.device import WorkloadProfile, build_profiles
from repro.fleet.dispatch import DISPATCH_POLICY_NAMES
from repro.fleet.montecarlo import (
    FleetScenarioSamples,
    calibrated_rate,
    sample_fleet_scenarios,
)
from repro.fleet.simulate import FleetConfig, FleetResult, simulate_fleet
from repro.fleet.traffic import TRAFFIC_KINDS, WorkloadMix, make_traffic
from repro.resilience import CheckpointJournal
from repro.runtime import ParallelRunner, accelerator_fingerprint, content_hash

#: Default traffic seed of the fleet studies (the repo-wide 2025).
DEFAULT_SEED = 2025


def _resolve_mix(mix: Sequence[Tuple[str, float]] = ()) -> WorkloadMix:
    """Build the workload mix (CLI pairs, or the default skewed mix)."""
    if mix:
        return WorkloadMix(tuple((name, float(weight)) for name, weight in mix))
    return WorkloadMix.default_skewed()


def _check_traffic_kind(traffic: str) -> None:
    if traffic not in TRAFFIC_KINDS:
        raise ConfigurationError(
            f"unknown traffic kind {traffic!r}; known: {TRAFFIC_KINDS}"
        )


@dataclass(frozen=True)
class DeviceRow:
    """Per-device summary row of one fleet run."""

    device_id: int
    served: int
    total_usage: int
    peak_usage: int
    dead_pes: int
    alive_fraction: float
    death_time_s: Optional[float]
    counts: np.ndarray
    #: Per-PE dead mask for the heatmap X-overlay (``None`` in results
    #: recorded before the mask was plumbed through).
    dead_mask: Optional[np.ndarray] = None


def _device_rows(result: FleetResult) -> Tuple[DeviceRow, ...]:
    return tuple(
        DeviceRow(
            device_id=stats.device_id,
            served=stats.served,
            total_usage=stats.total_usage,
            peak_usage=stats.peak_usage,
            dead_pes=stats.dead_pes,
            alive_fraction=stats.alive_fraction,
            death_time_s=stats.death_time_s,
            counts=stats.counts,
            dead_mask=stats.dead_mask,
        )
        for stats in result.device_stats
    )


def _device_table(rows: Sequence[DeviceRow], title: str) -> str:
    return format_table(
        ("device", "served", "total usage", "peak PE", "dead PEs", "alive", "retired at"),
        [
            (
                f"dev{row.device_id}",
                row.served,
                row.total_usage,
                row.peak_usage,
                row.dead_pes,
                f"{row.alive_fraction:.0%}",
                "-" if row.death_time_s is None else f"{row.death_time_s:.2f}s",
            )
            for row in rows
        ],
        title=title,
    )


def _device_heatmaps(rows: Sequence[DeviceRow], title: str) -> str:
    """Shared-scale per-device α-heatmap small multiples.

    Dead PEs render as the grid's ``X`` overlay, so a degraded device's
    small multiple shows *where* the array died, not just how hot it ran.
    """
    return render_heatmap_grid(
        [
            (
                f"dev{row.device_id}" + ("" if row.death_time_s is None else " (retired)"),
                row.counts,
                row.dead_mask,
            )
            for row in rows
        ],
        title=title,
    )


@dataclass(frozen=True)
class FleetLifetimeResult(JsonResultMixin):
    """One dispatch policy's fleet run in detail (``rota fleet-lifetime``)."""

    policy: str
    num_devices: int
    traffic: str
    num_requests: int
    rate_rps: float
    seed: int
    mttf_series_s: float
    mttf_parallel_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p99_s: float
    completed: int
    rejected: int
    dropped: int
    availability_fraction: float
    wear_imbalance: float
    devices: Tuple[DeviceRow, ...]
    availability: Tuple[Tuple[float, int], ...]
    montecarlo: Optional[Tuple[Tuple[str, float], ...]]
    show_heatmaps: bool = True

    def format(self) -> str:
        """Fleet summary + per-device table (+ shared-scale heatmaps)."""
        summary = format_table(
            ("metric", "value"),
            [
                ("fleet MTTF (series, first device)", f"{self.mttf_series_s:.4g} s"),
                ("fleet MTTF (parallel, last device)", f"{self.mttf_parallel_s:.4g} s"),
                ("throughput", f"{self.throughput_rps:.2f} req/s"),
                ("latency p50 / p99", f"{self.latency_p50_s * 1e3:.1f} / "
                                      f"{self.latency_p99_s * 1e3:.1f} ms"),
                ("completed / rejected / dropped",
                 f"{self.completed} / {self.rejected} / {self.dropped}"),
                ("availability (time-averaged)", f"{self.availability_fraction:.1%}"),
                ("device wear imbalance (max/mean)", f"{self.wear_imbalance:.4f}"),
            ],
            title=(
                f"Fleet lifetime — {self.num_devices} devices, "
                f"policy {self.policy}, {self.traffic} traffic "
                f"({self.num_requests} requests @ {self.rate_rps:.1f} req/s, "
                f"seed {self.seed})"
            ),
        )
        parts = [summary, _device_table(self.devices, "Per-device wear and service")]
        if self.show_heatmaps:
            parts.append(
                _device_heatmaps(
                    self.devices, "Per-device usage (shared color scale)"
                )
            )
        if self.montecarlo:
            parts.append(
                format_table(
                    ("statistic", "value"),
                    [(name, f"{value:.4g}") for name, value in self.montecarlo],
                    title="Scenario Monte Carlo (traffic + budgets resampled)",
                )
            )
        return "\n\n".join(parts)


def run_fleet_lifetime(
    devices: int = 4,
    policy: str = "rotational",
    traffic: str = "bursty",
    num_requests: int = 400,
    rate_rps: Optional[float] = None,
    mix: Sequence[Tuple[str, float]] = (),
    mean_budget: Optional[float] = None,
    seed: int = DEFAULT_SEED,
    scenarios: int = 0,
    show_heatmaps: bool = True,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
    accelerator: Optional[Accelerator] = None,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
) -> FleetLifetimeResult:
    """Run one fleet scenario in detail under a single dispatch policy.

    ``rate_rps=None`` auto-calibrates to ~70% fleet utilization from the
    workload profiles. ``scenarios > 0`` adds a Monte Carlo that
    resamples traffic and budgets per scenario (fanned out over
    ``jobs`` workers, chunk-invariant); ``checkpoint`` names a journal
    directory so a killed Monte Carlo resumes where it stopped,
    bit-identically.
    """
    _check_traffic_kind(traffic)
    workload_mix = _resolve_mix(mix)
    accelerator = accelerator or paper_accelerator()
    if profiles is None:
        profiles = build_profiles(workload_mix.names, accelerator)
    config = FleetConfig(
        num_devices=devices, policy=policy, mean_budget=mean_budget
    )
    if rate_rps is None:
        rate_rps = calibrated_rate(profiles, workload_mix, config)
    sequence = np.random.SeedSequence(seed)
    traffic_seed, budget_seed, montecarlo_seed = sequence.spawn(3)
    requests = make_traffic(
        traffic, num_requests, rate_rps, mix=workload_mix, seed=traffic_seed
    )
    result = simulate_fleet(
        profiles, requests, accelerator=accelerator, config=config, seed=budget_seed
    )
    montecarlo: Optional[Tuple[Tuple[str, float], ...]] = None
    if scenarios:
        samples = sample_fleet_scenarios(
            accelerator,
            config=config,
            traffic_kind=traffic,
            num_requests=num_requests,
            rate_rps=rate_rps,
            mix=workload_mix,
            profiles=profiles,
            num_scenarios=scenarios,
            seed=montecarlo_seed,
            jobs=jobs,
            checkpoint=checkpoint,
        )
        montecarlo = (
            ("scenarios", float(samples.num_scenarios)),
            ("mean fleet MTTF (series, s)", samples.mean_mttf_series_s),
            ("mean wear imbalance", samples.mean_wear_imbalance),
            ("mean rejected requests", samples.mean_rejected),
        )
    return FleetLifetimeResult(
        policy=policy,
        num_devices=devices,
        traffic=traffic,
        num_requests=num_requests,
        rate_rps=float(rate_rps),
        seed=seed,
        mttf_series_s=result.mttf_series_s,
        mttf_parallel_s=result.mttf_parallel_s,
        throughput_rps=result.throughput_rps,
        latency_p50_s=result.latency_p50_s,
        latency_p99_s=result.latency_p99_s,
        completed=result.completed,
        rejected=result.rejected,
        dropped=result.dropped,
        availability_fraction=result.availability_fraction,
        wear_imbalance=result.wear_imbalance,
        devices=_device_rows(result),
        availability=result.availability,
        montecarlo=montecarlo,
        show_heatmaps=show_heatmaps,
    )


@dataclass(frozen=True)
class FleetPolicyRow:
    """One dispatch policy's record on the shared traffic."""

    policy: str
    mttf_series_s: float
    mttf_parallel_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p99_s: float
    rejected: int
    wear_imbalance: float
    device_totals: Tuple[int, ...]


@dataclass(frozen=True)
class FleetPoliciesResult(JsonResultMixin):
    """The dispatch-policy comparison table (``rota fleet-policies``)."""

    num_devices: int
    traffic: str
    num_requests: int
    rate_rps: float
    seed: int
    rows: Tuple[FleetPolicyRow, ...]

    def row_for(self, policy: str) -> FleetPolicyRow:
        """Look up one policy's row."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def mttf_vs(self, policy: str, baseline: str = "round_robin") -> float:
        """Series-MTTF ratio of ``policy`` against ``baseline``."""
        return self.row_for(policy).mttf_series_s / self.row_for(baseline).mttf_series_s

    def format(self) -> str:
        """The policy-comparison table."""
        return format_table(
            (
                "policy",
                "fleet MTTF (s)",
                "MTTF vs rr",
                "tput (req/s)",
                "p50 (ms)",
                "p99 (ms)",
                "rejected",
                "wear imbalance",
            ),
            [
                (
                    row.policy,
                    f"{row.mttf_series_s:.4g}",
                    f"{self.mttf_vs(row.policy):.4f}x",
                    f"{row.throughput_rps:.2f}",
                    f"{row.latency_p50_s * 1e3:.1f}",
                    f"{row.latency_p99_s * 1e3:.1f}",
                    row.rejected,
                    f"{row.wear_imbalance:.4f}",
                )
                for row in self.rows
            ],
            title=(
                f"Dispatch policies — {self.num_devices} devices, "
                f"{self.traffic} traffic ({self.num_requests} requests "
                f"@ {self.rate_rps:.1f} req/s, seed {self.seed})"
            ),
        )


def _policy_task(spec: Tuple) -> FleetPolicyRow:
    """Simulate one policy (module-level so pools can pickle it)."""
    profiles, requests, accelerator, config, budget_seed = spec
    result = simulate_fleet(
        profiles, requests, accelerator=accelerator, config=config, seed=budget_seed
    )
    return FleetPolicyRow(
        policy=config.policy,
        mttf_series_s=result.mttf_series_s,
        mttf_parallel_s=result.mttf_parallel_s,
        throughput_rps=result.throughput_rps,
        latency_p50_s=result.latency_p50_s,
        latency_p99_s=result.latency_p99_s,
        rejected=result.rejected + result.dropped,
        wear_imbalance=result.wear_imbalance,
        device_totals=result.device_totals,
    )


def run_fleet_policies(
    devices: int = 4,
    traffic: str = "bursty",
    num_requests: int = 300,
    rate_rps: Optional[float] = None,
    mix: Sequence[Tuple[str, float]] = (),
    policies: Sequence[str] = DISPATCH_POLICY_NAMES,
    mean_budget: Optional[float] = None,
    seed: int = DEFAULT_SEED,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
    accelerator: Optional[Accelerator] = None,
) -> FleetPoliciesResult:
    """Compare dispatch policies on identical seeded traffic and budgets.

    Every policy faces the same request sequence and the same sampled
    per-device endurance fields (common random numbers), so differences
    in fleet MTTF and latency are attributable to dispatch alone.
    Profiles are built once here and shipped to workers; per-policy
    simulations are pure, so ``jobs=1`` and ``jobs=4`` are
    bit-identical.
    """
    _check_traffic_kind(traffic)
    workload_mix = _resolve_mix(mix)
    accelerator = accelerator or paper_accelerator()
    profiles = build_profiles(workload_mix.names, accelerator)
    base_config = FleetConfig(
        num_devices=devices, policy=policies[0], mean_budget=mean_budget
    )
    if rate_rps is None:
        rate_rps = calibrated_rate(profiles, workload_mix, base_config)
    sequence = np.random.SeedSequence(seed)
    traffic_seed, budget_seed = sequence.spawn(2)
    requests = make_traffic(
        traffic, num_requests, rate_rps, mix=workload_mix, seed=traffic_seed
    )
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(
            checkpoint,
            run_key=content_hash(
                "fleet-policies",
                accelerator_fingerprint(accelerator),
                devices,
                traffic,
                num_requests,
                float(rate_rps),
                workload_mix,
                list(policies),
                mean_budget,
                seed,
            ),
        )
    runner = ParallelRunner(jobs)
    rows = runner.map(
        _policy_task,
        [
            (
                profiles,
                requests,
                accelerator,
                FleetConfig(
                    num_devices=devices, policy=name, mean_budget=mean_budget
                ),
                budget_seed,
            )
            for name in policies
        ],
        labels=list(policies),
        checkpoint=journal,
    )
    return FleetPoliciesResult(
        num_devices=devices,
        traffic=traffic,
        num_requests=num_requests,
        rate_rps=float(rate_rps),
        seed=seed,
        rows=tuple(rows),
    )


@dataclass(frozen=True)
class FleetDegradationRow:
    """One retirement strategy's record under mid-run wear-out."""

    strategy: str
    min_alive_fraction: float
    completed: int
    rejected: int
    dropped: int
    pe_deaths: int
    devices_retired: int
    availability_fraction: float
    throughput_rps: float
    latency_p99_s: float


@dataclass(frozen=True)
class FleetDegradationResult(JsonResultMixin):
    """Retire-early vs serve-degraded (``rota fleet-degradation``)."""

    policy: str
    num_devices: int
    traffic: str
    num_requests: int
    rate_rps: float
    mean_budget: float
    seed: int
    rows: Tuple[FleetDegradationRow, ...]

    def format(self) -> str:
        """The strategy comparison table."""
        return format_table(
            (
                "strategy",
                "retire below",
                "completed",
                "rejected",
                "dropped",
                "PE deaths",
                "retired",
                "availability",
                "tput (req/s)",
                "p99 (ms)",
            ),
            [
                (
                    row.strategy,
                    f"{row.min_alive_fraction:.0%}",
                    row.completed,
                    row.rejected,
                    row.dropped,
                    row.pe_deaths,
                    row.devices_retired,
                    f"{row.availability_fraction:.1%}",
                    f"{row.throughput_rps:.2f}",
                    f"{row.latency_p99_s * 1e3:.1f}",
                )
                for row in self.rows
            ],
            title=(
                f"Graceful degradation — {self.num_devices} devices, "
                f"policy {self.policy}, mean budget "
                f"{self.mean_budget:.0f} allocations, "
                f"{self.num_requests} requests, seed {self.seed}"
            ),
        )


#: The retirement strategies the degradation study contrasts.
DEGRADATION_STRATEGIES = (
    ("retire-early", 0.95),
    ("retire-half", 0.5),
    ("serve-degraded", 0.1),
)


def _calibrated_fleet_budget(
    profiles: Dict[str, WorkloadProfile],
    mix: WorkloadMix,
    devices: int,
    num_requests: int,
    fraction: float = 0.35,
) -> float:
    """Budget scale putting PE deaths mid-run on an evenly-shared fleet.

    The mix-weighted mean per-request peak-PE increment, times the
    requests one device would serve under perfect sharing, gives the
    busiest PE's expected end-of-run wear; the mean budget is a
    ``fraction`` of that, so deaths start well before the traffic ends.
    """
    probabilities = mix.probabilities
    mean_peak = sum(
        probability * float(profiles[name].counts.max())
        for name, probability in zip(mix.names, probabilities)
    )
    per_device = max(1.0, num_requests / devices)
    return max(1.0, mean_peak * per_device * fraction)


def _degradation_task(spec: Tuple) -> FleetDegradationRow:
    """Run one retirement strategy (module-level so pools can pickle it)."""
    profiles, requests, accelerator, config, budget_seed, strategy = spec
    result = simulate_fleet(
        profiles, requests, accelerator=accelerator, config=config, seed=budget_seed
    )
    return FleetDegradationRow(
        strategy=strategy,
        min_alive_fraction=config.min_alive_fraction,
        completed=result.completed,
        rejected=result.rejected,
        dropped=result.dropped,
        pe_deaths=len(result.pe_deaths),
        devices_retired=config.num_devices - result.devices_alive_at_end,
        availability_fraction=result.availability_fraction,
        throughput_rps=result.throughput_rps,
        latency_p99_s=result.latency_p99_s,
    )


def run_fleet_degradation(
    devices: int = 4,
    policy: str = "rotational",
    traffic: str = "bursty",
    num_requests: int = 400,
    rate_rps: Optional[float] = None,
    mix: Sequence[Tuple[str, float]] = (),
    mean_budget: Optional[float] = None,
    seed: int = DEFAULT_SEED,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
    accelerator: Optional[Accelerator] = None,
) -> FleetDegradationResult:
    """Contrast retirement strategies under mid-run PE wear-out.

    ``mean_budget=None`` auto-calibrates so deaths land mid-run. All
    strategies face identical traffic and identical per-device budget
    fields; only the retirement threshold differs — retiring a device
    at the first sign of damage versus serving it, slowed, to the end
    (the sustainable-reuse trade of arXiv:2412.16208).
    """
    _check_traffic_kind(traffic)
    workload_mix = _resolve_mix(mix)
    accelerator = accelerator or paper_accelerator()
    profiles = build_profiles(workload_mix.names, accelerator)
    if mean_budget is None:
        mean_budget = _calibrated_fleet_budget(
            profiles, workload_mix, devices, num_requests
        )
    reference = FleetConfig(
        num_devices=devices, policy=policy, mean_budget=mean_budget
    )
    if rate_rps is None:
        rate_rps = calibrated_rate(profiles, workload_mix, reference)
    sequence = np.random.SeedSequence(seed)
    traffic_seed, budget_seed = sequence.spawn(2)
    requests = make_traffic(
        traffic, num_requests, rate_rps, mix=workload_mix, seed=traffic_seed
    )
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(
            checkpoint,
            run_key=content_hash(
                "fleet-degradation",
                accelerator_fingerprint(accelerator),
                devices,
                policy,
                traffic,
                num_requests,
                float(rate_rps),
                workload_mix,
                float(mean_budget),
                seed,
            ),
        )
    runner = ParallelRunner(jobs)
    rows = runner.map(
        _degradation_task,
        [
            (
                profiles,
                requests,
                accelerator,
                FleetConfig(
                    num_devices=devices,
                    policy=policy,
                    mean_budget=mean_budget,
                    min_alive_fraction=threshold,
                ),
                budget_seed,
                strategy,
            )
            for strategy, threshold in DEGRADATION_STRATEGIES
        ],
        labels=[strategy for strategy, _ in DEGRADATION_STRATEGIES],
        checkpoint=journal,
    )
    return FleetDegradationResult(
        policy=policy,
        num_devices=devices,
        traffic=traffic,
        num_requests=num_requests,
        rate_rps=float(rate_rps),
        mean_budget=float(mean_budget),
        seed=seed,
        rows=tuple(rows),
    )
