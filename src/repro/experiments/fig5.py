"""Fig. 5 / Table I: the RWL walk-through in closed form.

The paper illustrates RWL with the C5 layer of ResNet using an 8x8
utilization space and Z = 32 tiles on the 14x12 Eyeriss array, deriving
X = 7, W = 4, Y = 4, H_RWL = 2 from Eqs. (5)-(8). This driver evaluates
the closed-form quantities for that canonical example and for every
layer of any Table II network, and cross-checks the D_max <= W + 1 bound
(Eq. 9) against the simulated usage ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import RwlPolicy
from repro.core.rwl_math import RwlParameters, rwl_parameters
from repro.dataflow.tiling import TileStream
from repro.experiments.common import execution_for, paper_accelerator
from repro.experiments.result import JsonResultMixin

#: The paper's canonical example: 8x8 space, 32 tiles, 14x12 array.
PAPER_EXAMPLE = {"w": 14, "h": 12, "x": 8, "y": 8, "z": 32}


@dataclass(frozen=True)
class LayerRwlRow:
    """Closed-form RWL quantities plus the simulated D_max of one layer."""

    layer: str
    params: RwlParameters
    simulated_d_max: int

    @property
    def bound_holds(self) -> bool:
        """Whether Eq. 9's D_max bound holds in simulation."""
        return self.simulated_d_max <= self.params.d_max_bound


@dataclass(frozen=True)
class Fig5Result(JsonResultMixin):
    """Walk-through table for one network plus the paper example."""

    network: str
    example: RwlParameters
    rows: Tuple[LayerRwlRow, ...]

    @property
    def all_bounds_hold(self) -> bool:
        """Eq. 9 verified for every layer."""
        return all(row.bound_holds for row in self.rows)

    def format(self) -> str:
        """Paper-style walk-through table."""
        table_rows = [
            (
                row.layer,
                f"{row.params.x}x{row.params.y}",
                row.params.z,
                row.params.X,
                row.params.W,
                row.params.Y,
                row.params.H_rwl,
                row.params.d_max_bound,
                row.simulated_d_max,
                row.params.min_a_pe,
            )
            for row in self.rows
        ]
        header = (
            "layer",
            "space",
            "Z",
            "X",
            "W",
            "Y",
            "H_RWL",
            "Dmax bound",
            "Dmax sim",
            "min A_PE",
        )
        example = self.example
        title = (
            "Fig. 5 — RWL walk-through "
            f"(paper example {example.x}x{example.y}, Z={example.z}: "
            f"X={example.X} W={example.W} Y={example.Y} H_RWL={example.H_rwl})"
        )
        return format_table(header, table_rows, title=title)


def run_fig5(
    network: str = "ResNet-50", accelerator: Optional[Accelerator] = None
) -> Fig5Result:
    """Evaluate Eqs. (5)-(11) for every layer of one network.

    Each layer is simulated *in isolation* under RWL (reset start, one
    pass) so the simulated D_max is directly comparable with the
    per-layer bound of Eq. 9.
    """
    accelerator = (accelerator or paper_accelerator()).as_torus()
    example = rwl_parameters(**PAPER_EXAMPLE)
    execution = execution_for(network, accelerator)
    rows = []
    for layer_execution in execution.layers:
        stream: TileStream = layer_execution.stream
        params = rwl_parameters(
            w=accelerator.width,
            h=accelerator.height,
            x=stream.space_width,
            y=stream.space_height,
            z=stream.num_tiles,
        )
        engine = WearLevelingEngine(accelerator, RwlPolicy())
        engine.run_layer(stream)
        rows.append(
            LayerRwlRow(
                layer=stream.layer_name,
                params=params,
                simulated_d_max=engine.tracker.max_difference,
            )
        )
    return Fig5Result(network=network, example=example, rows=tuple(rows))
