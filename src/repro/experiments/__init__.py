"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes a ``run_*`` function returning a result object with
the figure's data series plus a ``format()`` method that prints the rows
the paper reports and a ``to_dict()`` method with the JSON-safe data
(see :mod:`repro.experiments.result`). Benchmarks (``benchmarks/``),
examples (``examples/``), and the CLI all call these drivers, so the
reproduction has exactly one implementation of each experiment — and
every driver is declared once in :mod:`repro.experiments.registry`,
which the CLI, ``rota all``, the report writer, and the scorecard all
iterate.

| Paper artifact | Driver |
|---|---|
| Fig. 2a/2b (PE utilization)            | :mod:`repro.experiments.fig2` |
| Fig. 3a/3b (usage heatmaps)            | :mod:`repro.experiments.fig3` |
| Fig. 5 (RWL walk-through)              | :mod:`repro.experiments.fig5` |
| Fig. 6a-e (usage difference, heatmaps) | :mod:`repro.experiments.fig6` |
| Fig. 7 (lifetime vs R_diff)            | :mod:`repro.experiments.fig7` |
| Fig. 8 (lifetime improvement)          | :mod:`repro.experiments.fig8` |
| Fig. 9 (upper bound)                   | :mod:`repro.experiments.fig9` |
| Fig. 10 (array-size sweep)             | :mod:`repro.experiments.fig10` |
| Table II (workloads)                   | :mod:`repro.experiments.table2` |
| Section V-D (overhead)                 | :mod:`repro.experiments.overhead` |
| Design-choice ablations                | :mod:`repro.experiments.ablation` |

The package exports below resolve lazily (PEP 562): importing
``repro.experiments`` — which ``rota --help`` and ``rota list`` do —
loads neither the drivers nor the scheduler stack behind them.
"""

from typing import Tuple

#: Names re-exported from :mod:`repro.experiments.common`, resolved on
#: first attribute access so the scheduler stack stays unimported.
_COMMON_EXPORTS: Tuple[str, ...] = (
    "PAPER_ITERATIONS",
    "PAPER_ZOOM_ITERATIONS",
    "execution_for",
    "paper_accelerator",
    "run_policies",
    "streams_for",
)

__all__ = list(_COMMON_EXPORTS)


def __getattr__(name: str):
    if name in _COMMON_EXPORTS:
        from repro.experiments import common

        return getattr(common, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(set(globals()) | set(__all__))
