"""The ``fleet-accuracy`` study: SLO-routed dispatch on degraded fleets.

Four (policy, mode) pairings face identical seeded traffic and identical
per-device endurance fields (common random numbers):

* ``round_robin`` / ``rotational`` in ``retire`` mode — the PR-5
  baselines: exact service, devices leave the fleet at
  ``min_alive_fraction``;
* ``slo_aware`` / ``slo_rotational`` in ``serve-degraded-approx`` mode —
  the accuracy-aware stack: worn devices keep serving tolerant traffic
  at model-predicted loss, exact traffic routes to loss-free devices.

The result is a three-axis Pareto comparison — fleet time-to-first-
retirement vs sustained throughput vs p99 delivered accuracy loss — with
the headline that SLO-aware dispatch extends time-to-retirement versus
``rotational`` at bounded loss on the default skewed bursty scenario.
Delivered loss is fixed at admission (see
:meth:`~repro.fleet.device.FleetDevice.enqueue`), so under SLO routing
the p99 delivered loss is bounded by the configured budget by
construction — the property the CI accuracy-smoke job asserts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.accuracy.model import ACCURACY_MODEL_NAMES, calibrate_profiles
from repro.accuracy.slo import SLOClass, parse_slo
from repro.analysis.report import format_table
from repro.arch.accelerator import Accelerator
from repro.errors import ConfigurationError
from repro.experiments.common import paper_accelerator
from repro.experiments.fleet import (
    DEFAULT_SEED,
    _calibrated_fleet_budget,
    _check_traffic_kind,
    _resolve_mix,
)
from repro.experiments.result import JsonResultMixin
from repro.fleet.device import build_profiles
from repro.fleet.montecarlo import calibrated_rate, sample_fleet_scenarios
from repro.fleet.simulate import FleetConfig, simulate_fleet
from repro.fleet.traffic import WorkloadMix, make_traffic
from repro.resilience import CheckpointJournal
from repro.runtime import ParallelRunner, accelerator_fingerprint, content_hash

#: The (policy, device mode) pairings the bracket compares, in table order.
ACCURACY_BRACKET = (
    ("round_robin", "retire"),
    ("rotational", "retire"),
    ("slo_aware", "serve-degraded-approx"),
    ("slo_rotational", "serve-degraded-approx"),
)


def _resolve_slos(
    mix: WorkloadMix,
    slos: Sequence[Tuple[str, str]],
    max_loss: float,
) -> WorkloadMix:
    """Attach SLO classes to the mix.

    Explicit ``(workload, class-spec)`` pairs win; with none given, the
    heaviest-weight workload is tolerant of ``max_loss`` and the rest
    stay exact — the skewed default where the bulk of the traffic can
    absorb degraded service but the tail cannot.
    """
    if slos:
        return mix.with_slos(
            (name, parse_slo(spec)) for name, spec in slos
        )
    weights = {name: weight for name, weight in mix.entries}
    bulk = max(mix.names, key=lambda name: (weights[name], name))
    return mix.with_slos(((bulk, SLOClass.tolerant(max_loss)),))


@dataclass(frozen=True)
class FleetAccuracyRow:
    """One (policy, mode) pairing's record on the shared scenario."""

    policy: str
    mode: str
    time_to_first_retirement_s: float
    retirement_censored: bool
    throughput_rps: float
    latency_p99_s: float
    delivered_loss_mean: float
    delivered_loss_p99: float
    slo_violations: int
    completed: int
    rejected: int
    dropped: int
    pe_deaths: int
    devices_retired: int
    mttf_series_s: float
    #: Whether the row sits on the (retirement, throughput, loss)
    #: Pareto frontier of the bracket.
    pareto: bool = False
    #: Scenario-Monte-Carlo aggregates (``None`` when ``scenarios=0``).
    scenario_mean_retirement_s: Optional[float] = None
    scenario_worst_loss_p99: Optional[float] = None


def _dominates(a: FleetAccuracyRow, b: FleetAccuracyRow) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` on the three study axes."""
    axes_a = (
        a.time_to_first_retirement_s,
        a.throughput_rps,
        -a.delivered_loss_p99,
    )
    axes_b = (
        b.time_to_first_retirement_s,
        b.throughput_rps,
        -b.delivered_loss_p99,
    )
    return all(x >= y for x, y in zip(axes_a, axes_b)) and axes_a != axes_b


def _mark_pareto(
    rows: Sequence[FleetAccuracyRow],
) -> Tuple[FleetAccuracyRow, ...]:
    return tuple(
        replace(
            row,
            pareto=not any(
                _dominates(other, row) for other in rows if other is not row
            ),
        )
        for row in rows
    )


@dataclass(frozen=True)
class FleetAccuracyResult(JsonResultMixin):
    """The SLO-routed dispatch bracket (``rota fleet-accuracy``)."""

    num_devices: int
    traffic: str
    num_requests: int
    rate_rps: float
    mean_budget: float
    max_loss: float
    accuracy_model: str
    min_alive_fraction: float
    seed: int
    slo_classes: Tuple[Tuple[str, str], ...]
    rows: Tuple[FleetAccuracyRow, ...]

    def row_for(self, policy: str) -> FleetAccuracyRow:
        """Look up one pairing's row by policy name."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def retirement_vs(
        self, policy: str, baseline: str = "rotational"
    ) -> float:
        """Time-to-first-retirement ratio of ``policy`` over ``baseline``."""
        return (
            self.row_for(policy).time_to_first_retirement_s
            / self.row_for(baseline).time_to_first_retirement_s
        )

    @property
    def headline(self) -> str:
        """The study's one-line claim."""
        best = self.row_for("slo_aware")
        bound = "holds" if best.delivered_loss_p99 <= self.max_loss else "BROKEN"
        censored = " (no device retired)" if best.retirement_censored else ""
        return (
            f"slo_aware extends fleet time-to-retirement "
            f"{self.retirement_vs('slo_aware'):.2f}x vs rotational{censored}; "
            f"p99 delivered loss {best.delivered_loss_p99:.4f} <= "
            f"{self.max_loss:g} budget {bound}"
        )

    def format(self) -> str:
        """Bracket table, SLO classes, and the headline."""
        table = format_table(
            (
                "policy",
                "mode",
                "retire at (s)",
                "tput (req/s)",
                "p99 (ms)",
                "p99 loss",
                "viol",
                "compl",
                "rej",
                "retired",
                "pareto",
            ),
            [
                (
                    row.policy,
                    row.mode,
                    f"{row.time_to_first_retirement_s:.4g}"
                    + (">" if row.retirement_censored else ""),
                    f"{row.throughput_rps:.2f}",
                    f"{row.latency_p99_s * 1e3:.1f}",
                    f"{row.delivered_loss_p99:.4f}",
                    row.slo_violations,
                    row.completed,
                    row.rejected + row.dropped,
                    row.devices_retired,
                    "*" if row.pareto else "",
                )
                for row in self.rows
            ],
            title=(
                f"Accuracy-aware serving — {self.num_devices} devices, "
                f"{self.traffic} traffic ({self.num_requests} requests "
                f"@ {self.rate_rps:.1f} req/s), mean budget "
                f"{self.mean_budget:.0f}, model {self.accuracy_model}, "
                f"seed {self.seed}"
            ),
        )
        slo_lines = "\n".join(
            f"  {name}: {spec}" for name, spec in self.slo_classes
        )
        parts = [table, f"SLO classes:\n{slo_lines}", self.headline]
        if any(row.scenario_mean_retirement_s is not None for row in self.rows):
            parts.append(
                format_table(
                    ("policy", "mean retire at (s)", "worst p99 loss"),
                    [
                        (
                            row.policy,
                            f"{row.scenario_mean_retirement_s:.4g}",
                            f"{row.scenario_worst_loss_p99:.4f}",
                        )
                        for row in self.rows
                        if row.scenario_mean_retirement_s is not None
                    ],
                    title="Scenario Monte Carlo (traffic + budgets resampled)",
                )
            )
        return "\n\n".join(parts)


def _accuracy_task(spec: Tuple) -> FleetAccuracyRow:
    """Run one bracket pairing (module-level so pools can pickle it)."""
    profiles, requests, accelerator, config, budget_seed, accuracy_profiles = spec
    result = simulate_fleet(
        profiles,
        requests,
        accelerator=accelerator,
        config=config,
        seed=budget_seed,
        accuracy_profiles=accuracy_profiles,
    )
    return FleetAccuracyRow(
        policy=config.policy,
        mode=config.mode,
        time_to_first_retirement_s=result.time_to_first_retirement_s,
        retirement_censored=result.retirement_censored,
        throughput_rps=result.throughput_rps,
        latency_p99_s=result.latency_p99_s,
        delivered_loss_mean=result.delivered_loss_mean,
        delivered_loss_p99=result.delivered_loss_p99,
        slo_violations=result.slo_violations,
        completed=result.completed,
        rejected=result.rejected,
        dropped=result.dropped,
        pe_deaths=len(result.pe_deaths),
        devices_retired=config.num_devices - result.devices_alive_at_end,
        mttf_series_s=result.mttf_series_s,
    )


def run_fleet_accuracy(
    devices: int = 4,
    traffic: str = "bursty",
    num_requests: int = 400,
    rate_rps: Optional[float] = None,
    mix: Sequence[Tuple[str, float]] = (),
    slos: Sequence[Tuple[str, str]] = (),
    max_loss: float = 0.12,
    accuracy_model: str = "pruning",
    min_alive_fraction: float = 0.75,
    mean_budget: Optional[float] = None,
    seed: int = DEFAULT_SEED,
    scenarios: int = 0,
    checkpoint: Optional[str] = None,
    jobs: Optional[int] = None,
    accelerator: Optional[Accelerator] = None,
) -> FleetAccuracyResult:
    """Compare exact-retire baselines against SLO-routed degraded service.

    All four pairings face the same SLO-tagged request sequence and the
    same sampled per-device endurance fields, so differences are
    attributable to (policy, mode) alone. ``mean_budget=None``
    auto-calibrates so PEs die mid-run (the regime where degraded
    service matters); ``slos`` overrides the default contract set
    (heaviest-weight workload tolerant of ``max_loss``, rest exact).
    ``scenarios > 0`` adds a per-pairing Monte Carlo over resampled
    traffic and budgets — the same scenario seeds for every pairing —
    fanned out over ``jobs`` workers, chunk-invariant and resumable via
    ``checkpoint``.
    """
    _check_traffic_kind(traffic)
    if not 0.0 < max_loss < 1.0:
        raise ConfigurationError(
            f"max_loss must be in (0, 1), got {max_loss}"
        )
    if accuracy_model not in ACCURACY_MODEL_NAMES:
        raise ConfigurationError(
            f"unknown accuracy model {accuracy_model!r}; "
            f"known: {ACCURACY_MODEL_NAMES}"
        )
    workload_mix = _resolve_slos(_resolve_mix(mix), slos, max_loss)
    accelerator = accelerator or paper_accelerator()
    profiles = build_profiles(workload_mix.names, accelerator)
    # Pin the per-workload accuracy calibration here and ship it to
    # workers, so a sweep never depends on worker-local memo state.
    accuracy_profiles = calibrate_profiles(workload_mix.names)
    if mean_budget is None:
        mean_budget = _calibrated_fleet_budget(
            profiles, workload_mix, devices, num_requests
        )
    reference = FleetConfig(
        num_devices=devices,
        policy=ACCURACY_BRACKET[0][0],
        mean_budget=mean_budget,
        min_alive_fraction=min_alive_fraction,
    )
    if rate_rps is None:
        rate_rps = calibrated_rate(profiles, workload_mix, reference)
    sequence = np.random.SeedSequence(seed)
    traffic_seed, budget_seed, montecarlo_seed = sequence.spawn(3)
    requests = make_traffic(
        traffic, num_requests, rate_rps, mix=workload_mix, seed=traffic_seed
    )
    configs = [
        FleetConfig(
            num_devices=devices,
            policy=policy,
            mean_budget=mean_budget,
            min_alive_fraction=min_alive_fraction,
            mode=mode,
            accuracy_model=accuracy_model if mode != "retire" else None,
        )
        for policy, mode in ACCURACY_BRACKET
    ]
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(
            os.path.join(checkpoint, "bracket"),
            run_key=content_hash(
                "fleet-accuracy",
                accelerator_fingerprint(accelerator),
                devices,
                traffic,
                num_requests,
                float(rate_rps),
                workload_mix,
                float(mean_budget),
                float(max_loss),
                accuracy_model,
                float(min_alive_fraction),
                seed,
            ),
        )
    runner = ParallelRunner(jobs)
    rows = runner.map(
        _accuracy_task,
        [
            (
                profiles,
                requests,
                accelerator,
                config,
                budget_seed,
                accuracy_profiles,
            )
            for config in configs
        ],
        labels=[policy for policy, _ in ACCURACY_BRACKET],
        checkpoint=journal,
    )
    if scenarios:
        augmented = []
        for row, config in zip(rows, configs):
            samples = sample_fleet_scenarios(
                accelerator,
                config=config,
                traffic_kind=traffic,
                num_requests=num_requests,
                rate_rps=rate_rps,
                mix=workload_mix,
                profiles=profiles,
                num_scenarios=scenarios,
                seed=montecarlo_seed,
                jobs=jobs,
                checkpoint=(
                    None
                    if checkpoint is None
                    else os.path.join(checkpoint, f"mc-{config.policy}")
                ),
            )
            augmented.append(
                replace(
                    row,
                    scenario_mean_retirement_s=(
                        samples.mean_time_to_first_retirement_s
                    ),
                    scenario_worst_loss_p99=samples.worst_delivered_loss_p99,
                )
            )
        rows = augmented
    return FleetAccuracyResult(
        num_devices=devices,
        traffic=traffic,
        num_requests=num_requests,
        rate_rps=float(rate_rps),
        mean_budget=float(mean_budget),
        max_loss=float(max_loss),
        accuracy_model=accuracy_model,
        min_alive_fraction=float(min_alive_fraction),
        seed=seed,
        slo_classes=tuple(
            (name, workload_mix.slo_for(name).name)
            for name in workload_mix.names
        ),
        rows=_mark_pareto(rows),
    )
