"""Declarative experiment registry: one spec per paper artifact.

Every experiment the reproduction can run is described here *as data*:
a stable id, the paper artifact it regenerates, a typed parameter
schema, classification tags, and the dotted path of its driver
function. The CLI (`rota <id>`), the full-report writer, `rota all`,
and the scorecard all iterate this registry instead of maintaining
parallel hand-edited lists — adding an experiment is one
:func:`register` call, and the completeness tests
(``tests/experiments/test_registry.py``) fail if any consumer falls
out of sync.

The module is deliberately lightweight: no driver (or numpy) import
happens until a spec's runner is resolved, so ``rota --help``,
``rota list``, and ``rota --version`` never pay the simulation stack's
import cost.

:func:`run_experiment` is the single execution entrypoint. It wraps
the driver call with observability — phase wall times, result-cache
hit/miss counts, parallel-runner task timings, the accelerator
fingerprint, and the package version — and returns the result together
with a :class:`RunManifest` that ``rota report`` persists as
``manifest.json``.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.result import ExperimentResult, JsonResultMixin, to_jsonable

__all__ = [
    "ExperimentRun",
    "ExperimentSpec",
    "Param",
    "ParamValidationError",
    "PhaseTiming",
    "RunManifest",
    "all_specs",
    "get_spec",
    "package_version",
    "run_experiment",
    "spec_ids",
    "validate_params",
]


def package_version() -> str:
    """The installed package version (falls back to the source tree's)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - package half-installed
        return "unknown"


def _parse_dead_coords(specs: List[str]) -> Tuple[Tuple[int, int], ...]:
    """Parse ``--dead U,V`` coordinate options (CLI-facing errors)."""
    coords = []
    for spec in specs:
        try:
            u, v = (int(part) for part in spec.split(","))
        except ValueError:
            raise SystemExit(f"--dead expects 'U,V' integer pairs, got {spec!r}")
        coords.append((u, v))
    return tuple(coords)


def _parse_workload_mix(specs: List[str]) -> Tuple[Tuple[str, float], ...]:
    """Parse ``--mix NAME=WEIGHT`` options into plain (name, weight) pairs.

    Stays plain data (the fleet drivers build the actual
    ``WorkloadMix``), so the registry keeps its no-numpy import rule.
    """
    entries = []
    for spec in specs:
        name, separator, weight = spec.partition("=")
        if not separator or not name:
            raise SystemExit(f"--mix expects 'NAME=WEIGHT' pairs, got {spec!r}")
        try:
            value = float(weight)
        except ValueError:
            raise SystemExit(
                f"--mix weight must be a number, got {weight!r} in {spec!r}"
            )
        entries.append((name, value))
    return tuple(entries)


def _parse_slo_pairs(specs: List[str]) -> Tuple[Tuple[str, str], ...]:
    """Parse ``--slo NAME=CLASS`` options into plain (name, spec) pairs.

    The class spelling (``exact`` or ``tolerant:0.05``) stays a string —
    the accuracy driver parses it via
    :func:`repro.accuracy.slo.parse_slo` — so the registry keeps its
    no-driver-imports rule.
    """
    pairs = []
    for spec in specs:
        name, separator, slo_class = spec.partition("=")
        if not separator or not name or not slo_class:
            raise SystemExit(
                f"--slo expects 'NAME=CLASS' pairs "
                f"(CLASS: exact or tolerant:MAX_LOSS), got {spec!r}"
            )
        pairs.append((name, slo_class))
    return tuple(pairs)


#: Named CLI-value converters a :class:`Param` may reference. Kept as a
#: registry (not lambdas on the spec) so specs stay picklable plain data.
CONVERTERS: Dict[str, Callable[[Any], Any]] = {
    "dead_coords": _parse_dead_coords,
    "workload_mix": _parse_workload_mix,
    "slo_pairs": _parse_slo_pairs,
}

#: Types a parameter schema may declare, mapped to argparse behavior.
PARAM_KINDS = ("int", "float", "str", "flag", "repeat")


@dataclass(frozen=True)
class Param:
    """One experiment parameter: schema for both the CLI and the runner.

    Parameters
    ----------
    name:
        The runner's keyword-argument name (snake_case).
    kind:
        One of :data:`PARAM_KINDS`; ``"flag"`` is a boolean switch and
        ``"repeat"`` an appendable string option.
    default:
        Value used when the flag is omitted (must match the runner's
        own default so CLI and API behavior agree).
    help:
        CLI help text.
    flag:
        Override the CLI flag spelling (default ``--<name>`` with
        underscores dashed). Used for negated flags (``--no-wearout``).
    short:
        Optional short flag (e.g. ``-j``).
    metavar:
        Optional argparse metavar.
    kwarg:
        Override the keyword the runner receives (default ``name``);
        e.g. the CLI's uniform ``--iterations`` maps onto the fault
        study's ``max_iterations``.
    convert:
        Key into :data:`CONVERTERS` applied to the CLI value before the
        runner sees it.
    invert:
        For ``"flag"``: the runner receives the *negation* of the
        switch (``--no-wearout`` → ``wearout=False``).
    choices:
        Closed vocabulary for ``"str"`` parameters. The CLI rejects
        other spellings via argparse ``choices``; the JSON validator
        turns them into a per-field 400. Kept as literals on the spec
        (not imported from the driver) to preserve the registry's
        no-driver-import rule — ``tests/experiments/test_registry.py``
        pins them against the driver's own tuples.
    """

    name: str
    kind: str = "str"
    default: Any = None
    help: str = ""
    flag: Optional[str] = None
    short: Optional[str] = None
    metavar: Optional[str] = None
    kwarg: Optional[str] = None
    convert: Optional[str] = None
    invert: bool = False
    choices: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ConfigurationError(
                f"param {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {PARAM_KINDS}"
            )
        if self.invert and self.kind != "flag":
            raise ConfigurationError(
                f"param {self.name!r}: invert only applies to flags"
            )
        if self.choices is not None:
            if self.kind != "str":
                raise ConfigurationError(
                    f"param {self.name!r}: choices only apply to str params"
                )
            if self.default is not None and self.default not in self.choices:
                raise ConfigurationError(
                    f"param {self.name!r}: default {self.default!r} is not "
                    f"one of its choices {self.choices}"
                )

    @property
    def cli_flag(self) -> str:
        """The long CLI flag, e.g. ``--mean-budget``."""
        return self.flag or "--" + self.name.replace("_", "-")

    @property
    def dest(self) -> str:
        """The argparse namespace attribute this parameter lands in."""
        return self.cli_flag.lstrip("-").replace("-", "_")

    @property
    def runner_kwarg(self) -> str:
        """The keyword the runner function receives."""
        return self.kwarg or self.name


def _jobs_param() -> Param:
    """The uniform ``--jobs`` flag (every fan-out experiment gets it)."""
    return Param(
        name="jobs",
        kind="int",
        default=None,
        short="-j",
        help=(
            "worker processes (default: $REPRO_JOBS or 1 = serial; "
            "0 = all CPUs); results are identical at any value"
        ),
    )


def _iterations_param(default: int, help: str = "") -> Param:
    return Param(name="iterations", kind="int", default=default, help=help)


def _resume_param() -> Param:
    """The uniform ``--resume`` flag (every Monte Carlo driver gets it)."""
    return Param(
        name="resume",
        kind="str",
        default=None,
        metavar="DIR",
        kwarg="checkpoint",
        help=(
            "checkpoint journal directory: completed Monte Carlo chunks "
            "are recorded there and a rerun of the same configuration "
            "skips them (bit-identical output to an uninterrupted run)"
        ),
    )


def _network_param(default: Optional[str], help: str = "") -> Param:
    return Param(name="network", kind="str", default=default, help=help)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one runnable experiment.

    ``runner`` is a lazy dotted path (``"module:function"``); the module
    is imported only when the experiment actually runs, keeping
    registry iteration (help text, ``rota list``) free of driver
    imports.
    """

    id: str
    title: str
    artifact: str
    runner: str
    params: Tuple[Param, ...] = ()
    tags: Tuple[str, ...] = ()
    all_params: Tuple[Tuple[str, Any], ...] = ()

    def resolve(self) -> Callable[..., ExperimentResult]:
        """Import and return the driver function."""
        module_name, _, function_name = self.runner.partition(":")
        if not function_name:
            raise ConfigurationError(
                f"spec {self.id!r} runner must be 'module:function', "
                f"got {self.runner!r}"
            )
        module = importlib.import_module(module_name)
        return getattr(module, function_name)

    def param(self, name: str) -> Param:
        """Look up one parameter by name."""
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    @property
    def defaults(self) -> Dict[str, Any]:
        """Runner kwargs when every parameter is left at its default."""
        return {param.runner_kwarg: param.default for param in self.params}


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (ids are unique)."""
    if spec.id in _REGISTRY:
        raise ConfigurationError(f"duplicate experiment id {spec.id!r}")
    _REGISTRY[spec.id] = spec
    return spec


def get_spec(spec_id: str) -> ExperimentSpec:
    """Look up one spec by id."""
    try:
        return _REGISTRY[spec_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {spec_id!r}; known: {known}"
        ) from None


def all_specs(tag: Optional[str] = None) -> Tuple[ExperimentSpec, ...]:
    """Every spec in registration (paper) order, optionally tag-filtered."""
    specs = tuple(_REGISTRY.values())
    if tag is None:
        return specs
    return tuple(spec for spec in specs if tag in spec.tags)


def spec_ids(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered experiment ids, optionally filtered by tag."""
    return tuple(spec.id for spec in all_specs(tag))


# ---------------------------------------------------------------------------
# Parameter validation: the JSON-facing half of the Param schema.
# ---------------------------------------------------------------------------


class ParamValidationError(ConfigurationError):
    """A params mapping failed schema validation.

    ``errors`` maps each offending field name to a human-readable
    message; the service layer turns this into a 400 response with
    per-field errors, mirroring the CLI's argparse rejections.
    """

    def __init__(self, spec_id: str, errors: Mapping[str, str]) -> None:
        self.spec_id = spec_id
        self.errors: Dict[str, str] = dict(errors)
        detail = "; ".join(
            f"{name}: {message}" for name, message in sorted(self.errors.items())
        )
        super().__init__(f"invalid parameters for experiment {spec_id!r}: {detail}")


def _validate_value(param: Param, value: Any) -> Tuple[Any, Optional[str]]:
    """Check one supplied value against its schema; returns (value, error)."""
    if value is None:
        if param.default is None:
            return None, None
        return None, f"must not be null (omit the field for the default)"
    if param.kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            return None, f"expected an integer, got {type(value).__name__}"
        return value, None
    if param.kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None, f"expected a number, got {type(value).__name__}"
        return float(value), None
    if param.kind == "str":
        if not isinstance(value, str):
            return None, f"expected a string, got {type(value).__name__}"
        if param.choices is not None and value not in param.choices:
            return None, (
                f"must be one of {list(param.choices)}, got {value!r}"
            )
        return value, None
    if param.kind == "flag":
        if not isinstance(value, bool):
            return None, f"expected a boolean, got {type(value).__name__}"
        return value, None
    # "repeat": a list of strings, optionally run through a converter
    # (the same one the CLI applies to repeated flags).
    if not isinstance(value, (list, tuple)):
        return None, f"expected a list of strings, got {type(value).__name__}"
    items = list(value)
    for item in items:
        if not isinstance(item, str):
            return None, (
                f"expected a list of strings, got item of type "
                f"{type(item).__name__}"
            )
    if param.convert:
        try:
            return CONVERTERS[param.convert](items), None
        # Converters are CLI-facing and may bail with SystemExit; the
        # API must turn that into a field error, not a dead worker.
        except (SystemExit, ReproError, ValueError, TypeError) as error:
            return None, str(error) or "invalid value"
    return items, None


def validate_params(spec: ExperimentSpec, raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a JSON-shaped params mapping against ``spec``'s schema.

    Fields are the public parameter names (``spec.params[i].name`` —
    what the CLI flags are derived from); omitted fields take their
    defaults. Returns the runner kwargs ready for
    :func:`run_experiment`. Raises :class:`ParamValidationError`
    carrying one message per offending field — unknown names, wrong
    JSON types, or converter rejections.
    """
    if not isinstance(raw, Mapping):
        raise ParamValidationError(
            spec.id, {"params": f"expected an object, got {type(raw).__name__}"}
        )
    errors: Dict[str, str] = {}
    known = {param.name: param for param in spec.params}
    for name in raw:
        if not isinstance(name, str) or name not in known:
            errors[str(name)] = (
                f"unknown parameter; schema: {sorted(known) or 'none'}"
            )
    params: Dict[str, Any] = {}
    for name, param in known.items():
        if name not in raw:
            params[param.runner_kwarg] = param.default
            continue
        value, error = _validate_value(param, raw[name])
        if error is not None:
            errors[name] = error
        else:
            params[param.runner_kwarg] = value
    if errors:
        raise ParamValidationError(spec.id, errors)
    return params


# ---------------------------------------------------------------------------
# Observability: the per-run manifest.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseTiming:
    """Wall time of one named phase of a run."""

    name: str
    seconds: float


@dataclass(frozen=True)
class RunManifest(JsonResultMixin):
    """Everything observable about one experiment (or report) run."""

    spec_id: str
    params: Tuple[Tuple[str, Any], ...]
    version: str
    accelerator: str
    started_at: float
    wall_seconds: float
    phases: Tuple[PhaseTiming, ...]
    cache: Tuple[Tuple[str, int], ...]  # hits / misses / puts / ...
    tasks: Tuple[Tuple[str, float, str, bool], ...]  # label, secs, mode, retried
    resilience: Tuple[Tuple[str, int], ...] = ()  # retries / timeouts / ...

    @property
    def cache_counts(self) -> Dict[str, int]:
        """Cache counters as a dict."""
        return dict(self.cache)

    @property
    def resilience_counts(self) -> Dict[str, int]:
        """Resilience counters as a dict."""
        return dict(self.resilience)

    def format(self) -> str:
        """One-paragraph human summary."""
        counts = self.cache_counts
        lines = [
            f"run manifest — {self.spec_id} (repro {self.version}), "
            f"{self.wall_seconds:.2f}s wall",
            f"  cache: {counts.get('hits', 0)} hits, "
            f"{counts.get('misses', 0)} misses, {counts.get('puts', 0)} puts",
        ]
        for phase in self.phases:
            lines.append(f"  phase {phase.name}: {phase.seconds:.2f}s")
        if self.tasks:
            total = sum(task[1] for task in self.tasks)
            lines.append(
                f"  {len(self.tasks)} runner task(s), {total:.2f}s task time"
            )
        resilience = self.resilience_counts
        if any(resilience.values()):
            detail = ", ".join(
                f"{count} {name.replace('_', ' ')}"
                for name, count in sorted(resilience.items())
                if count
            )
            lines.append(f"  resilience: {detail}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentRun:
    """One executed experiment: its result plus the run manifest."""

    spec: ExperimentSpec
    result: ExperimentResult
    manifest: RunManifest


def _accelerator_fingerprint() -> str:
    """Fingerprint of the paper evaluation platform (best effort)."""
    try:
        from repro.experiments.common import paper_accelerator
        from repro.runtime import accelerator_fingerprint

        return accelerator_fingerprint(paper_accelerator())
    except Exception:  # pragma: no cover - fingerprinting must not fail a run
        return "unavailable"


def run_experiment(spec_id: str, **params: Any) -> ExperimentRun:
    """Run one registered experiment with full observability.

    Unknown parameter names raise
    :class:`~repro.errors.ConfigurationError` before any driver import.
    The returned manifest records the import and run phases, every
    result-cache hit/miss/put, and every
    :class:`~repro.runtime.parallel.ParallelRunner` task timing the run
    produced.
    """
    spec = get_spec(spec_id)
    known = {param.runner_kwarg for param in spec.params}
    unknown = set(params) - known
    if unknown:
        raise ConfigurationError(
            f"experiment {spec_id!r} does not accept parameter(s) "
            f"{sorted(unknown)}; schema: {sorted(known) or 'none'}"
        )
    from repro.runtime import collect_metrics

    started_at = time.time()
    start = time.perf_counter()
    with collect_metrics() as metrics:
        import_start = time.perf_counter()
        runner = spec.resolve()
        import_seconds = time.perf_counter() - import_start
        run_start = time.perf_counter()
        result = runner(**params)
        run_seconds = time.perf_counter() - run_start
    manifest = RunManifest(
        spec_id=spec.id,
        params=tuple(sorted((key, to_jsonable(value)) for key, value in params.items())),
        version=package_version(),
        accelerator=_accelerator_fingerprint(),
        started_at=started_at,
        wall_seconds=time.perf_counter() - start,
        phases=(
            PhaseTiming(name="import", seconds=import_seconds),
            PhaseTiming(name="run", seconds=run_seconds),
        ),
        cache=tuple(sorted(metrics.cache_summary().items())),
        tasks=tuple(
            (
                timing.label,
                timing.seconds,
                timing.mode,
                bool(getattr(timing, "retried", False)),
            )
            for timing in metrics.task_timings
        ),
        resilience=tuple(sorted(metrics.resilience_summary().items())),
    )
    return ExperimentRun(spec=spec, result=result, manifest=manifest)


# ---------------------------------------------------------------------------
# The registry itself: one spec per paper artifact, in paper order.
# ---------------------------------------------------------------------------

register(
    ExperimentSpec(
        id="table2",
        title="Table II workload roster",
        artifact="Table II",
        runner="repro.experiments.table2:run_table2",
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="utilization",
        title="Fig. 2 PE utilization",
        artifact="Fig. 2",
        runner="repro.experiments.fig2:run_utilization",
        params=(
            _network_param(None, help="also show per-layer (Fig. 2b)"),
        ),
        tags=("figure",),
        all_params=(("network", "SqueezeNet"),),
    )
)

register(
    ExperimentSpec(
        id="heatmaps",
        title="Fig. 3 usage heatmaps",
        artifact="Fig. 3",
        runner="repro.experiments.fig3:run_fig3",
        params=(_iterations_param(10), _jobs_param()),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="unfold",
        title="Fig. 4 unfolded torus walk",
        artifact="Fig. 4",
        runner="repro.experiments.fig4:run_fig4",
        params=(
            Param(name="x", kind="int", default=8),
            Param(name="y", kind="int", default=8),
        ),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="walkthrough",
        title="Fig. 5 RWL closed-form walk-through",
        artifact="Fig. 5 / Table I",
        runner="repro.experiments.fig5:run_fig5",
        params=(_network_param("ResNet-50"),),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="usage-diff",
        title="Fig. 6 max usage difference",
        artifact="Fig. 6",
        runner="repro.experiments.fig6:run_fig6",
        params=(
            _network_param("SqueezeNet"),
            _iterations_param(1000),
            _jobs_param(),
        ),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="projection",
        title="Fig. 7 lifetime vs R_diff",
        artifact="Fig. 7",
        runner="repro.experiments.fig7:run_fig7",
        params=(
            _network_param("SqueezeNet"),
            _iterations_param(200),
            _jobs_param(),
        ),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="lifetime",
        title="Fig. 8 lifetime improvement per workload",
        artifact="Fig. 8",
        runner="repro.experiments.fig8:run_fig8",
        params=(_iterations_param(200), _jobs_param()),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="upper-bound",
        title="Fig. 9 layer-wise improvement vs ceiling",
        artifact="Fig. 9",
        runner="repro.experiments.fig9:run_fig9",
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="sweep",
        title="Fig. 10 PE-array size sweep",
        artifact="Fig. 10",
        runner="repro.experiments.fig10:run_fig10",
        params=(
            _network_param("SqueezeNet"),
            _iterations_param(200),
            _jobs_param(),
        ),
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="overhead",
        title="Sec. V-D area/cycle overhead",
        artifact="Sec. V-D",
        runner="repro.experiments.overhead:run_overhead",
        tags=("figure",),
    )
)

register(
    ExperimentSpec(
        id="faults",
        title="fault study: run past PE wear-out deaths, report degradation",
        artifact="fault study (extension)",
        runner="repro.experiments.faults:run_fault_study",
        params=(
            _network_param("SqueezeNet"),
            Param(
                name="dead",
                kind="repeat",
                default=(),
                metavar="U,V",
                convert="dead_coords",
                help="inject an explicit dead PE (repeatable)",
            ),
            Param(
                name="wearout",
                kind="flag",
                flag="--no-wearout",
                invert=True,
                default=True,
                help="disable Weibull wear-out deaths (explicit --dead faults only)",
            ),
            Param(
                name="deaths", kind="int", default=3,
                help="stop after N wear-out deaths",
            ),
            Param(
                name="iterations", kind="int", default=300,
                kwarg="max_iterations", help="iteration cap",
            ),
            Param(
                name="mean_budget",
                kind="float",
                default=None,
                help="mean per-PE endurance budget (default: auto-calibrated)",
            ),
            Param(name="seed", kind="int", default=2025),
            Param(
                name="scenarios", kind="int", default=0,
                help="also run an N-scenario lifetime Monte Carlo",
            ),
            Param(
                name="heatmaps",
                kind="flag",
                flag="--no-heatmaps",
                invert=True,
                default=True,
                kwarg="show_heatmaps",
                help="skip dead-PE heatmaps",
            ),
            _resume_param(),
            _jobs_param(),
        ),
        tags=("fault",),
    )
)

def _fleet_shared_params(num_requests_default: int) -> Tuple[Param, ...]:
    """Parameters every fleet experiment shares."""
    return (
        Param(
            name="devices", kind="int", default=4,
            help="accelerators in the fleet",
        ),
        Param(
            name="traffic", kind="str", default="bursty",
            help="arrival process: poisson or bursty",
        ),
        Param(
            name="requests", kind="int", default=num_requests_default,
            kwarg="num_requests", help="requests to offer",
        ),
        Param(
            name="rate", kind="float", default=None, kwarg="rate_rps",
            # A bare "%" here would crash argparse's ``--help`` formatter
            # (help strings are %-interpolated), hence the 0.7 spelling.
            help="arrival rate in req/s (default: auto-calibrated to "
                 "~0.7 fleet utilization)",
        ),
        Param(
            name="mix",
            kind="repeat",
            default=(),
            metavar="NAME=WEIGHT",
            convert="workload_mix",
            help="workload mix entry (repeatable; default: "
                 "SqueezeNet=0.7 ResNet-50=0.3)",
        ),
        Param(
            name="mean_budget",
            kind="float",
            default=None,
            help="mean per-PE endurance budget (default: no wear-out deaths; "
                 "lifetime is projected from final wear rates)",
        ),
        Param(name="seed", kind="int", default=2025),
    )


register(
    ExperimentSpec(
        id="fleet-lifetime",
        title="fleet study: one dispatch policy in detail",
        artifact="fleet lifetime (extension)",
        runner="repro.experiments.fleet:run_fleet_lifetime",
        params=(
            Param(
                name="policy", kind="str", default="rotational",
                help="dispatch policy: round_robin, least_outstanding, "
                     "least_wear, or rotational",
            ),
            *_fleet_shared_params(400),
            Param(
                name="scenarios", kind="int", default=0,
                help="also run an N-scenario traffic/budget Monte Carlo",
            ),
            Param(
                name="heatmaps",
                kind="flag",
                flag="--no-heatmaps",
                invert=True,
                default=True,
                kwarg="show_heatmaps",
                help="skip per-device heatmaps",
            ),
            _resume_param(),
            _jobs_param(),
        ),
        tags=("fleet",),
    )
)

register(
    ExperimentSpec(
        id="fleet-policies",
        title="fleet study: dispatch-policy comparison on shared traffic",
        artifact="fleet policy table (extension)",
        runner="repro.experiments.fleet:run_fleet_policies",
        params=(
            *_fleet_shared_params(300),
            _resume_param(),
            _jobs_param(),
        ),
        tags=("fleet",),
    )
)

register(
    ExperimentSpec(
        id="fleet-degradation",
        title="fleet study: retire-early vs serve-degraded under wear-out",
        artifact="fleet degradation (extension)",
        runner="repro.experiments.fleet:run_fleet_degradation",
        params=(
            Param(
                name="policy", kind="str", default="rotational",
                help="dispatch policy the strategies share",
            ),
            *_fleet_shared_params(400),
            _resume_param(),
            _jobs_param(),
        ),
        tags=("fleet",),
    )
)

register(
    ExperimentSpec(
        id="fleet-accuracy",
        title="fleet study: SLO-routed dispatch with degraded service",
        artifact="accuracy/lifetime/throughput Pareto (extension)",
        runner="repro.experiments.accuracy:run_fleet_accuracy",
        params=(
            *_fleet_shared_params(400),
            Param(
                name="slo",
                kind="repeat",
                default=(),
                metavar="NAME=CLASS",
                convert="slo_pairs",
                kwarg="slos",
                help="SLO class per workload (repeatable; CLASS: exact or "
                     "tolerant:MAX_LOSS; default: heaviest mix entry "
                     "tolerant of --max-loss, rest exact)",
            ),
            Param(
                name="max_loss", kind="float", default=0.12,
                help="accuracy-loss budget of the default tolerant class",
            ),
            Param(
                name="model",
                kind="str",
                default="pruning",
                choices=("pruning", "approximation"),
                kwarg="accuracy_model",
                help="degradation style of worn devices",
            ),
            Param(
                name="min_alive", kind="float", default=0.75,
                kwarg="min_alive_fraction",
                help="alive fraction below which a device retires "
                     "(retire mode) or serves degraded (approx mode)",
            ),
            Param(
                name="scenarios", kind="int", default=0,
                help="also run an N-scenario traffic/budget Monte Carlo "
                     "per (policy, mode) pairing",
            ),
            _resume_param(),
            _jobs_param(),
        ),
        tags=("fleet", "accuracy"),
    )
)

register(
    ExperimentSpec(
        id="ablations",
        title="design-choice ablations",
        artifact="design ablations (DESIGN.md Sec. 4)",
        runner="repro.experiments.ablation:run_ablations",
        params=(_jobs_param(),),
        tags=("ablation",),
    )
)

register(
    ExperimentSpec(
        id="extensions",
        title="extension studies: policy comparison, Monte Carlo, objectives",
        artifact="extension studies",
        runner="repro.experiments.extensions:run_extensions",
        params=(_iterations_param(500), _jobs_param()),
        tags=("extension",),
    )
)

register(
    ExperimentSpec(
        id="attribution",
        title="which layers stress the hottest PE (baseline)",
        artifact="wear attribution (analysis)",
        runner="repro.experiments.diagnostics:run_attribution",
        params=(
            _network_param("SqueezeNet"),
            Param(name="limit", kind="int", default=10),
        ),
        tags=("analysis",),
    )
)

register(
    ExperimentSpec(
        id="profile",
        title="per-layer network profile",
        artifact="network profile (analysis)",
        runner="repro.experiments.diagnostics:run_profile",
        params=(
            _network_param("SqueezeNet"),
            Param(name="limit", kind="int", default=None),
        ),
        tags=("analysis",),
    )
)

register(
    ExperimentSpec(
        id="mapping-search",
        title="wear-aware mapping search: Pareto table per layer",
        artifact="mapping search (analysis)",
        runner="repro.experiments.mapping_search:run_mapping_search",
        params=(
            _network_param("SqueezeNet"),
            Param(
                name="objective",
                kind="str",
                default="energy-wear",
                # Literals mirror repro.dataflow.evaluate.OBJECTIVES /
                # repro.dataflow.search.SEARCH_MODES (pinned by
                # tests/experiments/test_registry.py) so the registry
                # stays import-light.
                choices=("energy", "latency", "edp", "wear", "energy-wear"),
                help="search objective (lexicographic; see docs)",
            ),
            Param(
                name="search",
                kind="str",
                default="beam",
                choices=("greedy", "exhaustive", "beam"),
                help="search mode: greedy (legacy), exhaustive, or beam",
            ),
            Param(
                name="beam_width", kind="int", default=8,
                help="spatial skeletons surviving to temporal enumeration",
            ),
            Param(
                name="tolerance", kind="float", default=0.05,
                help="max energy overhead vs the greedy baseline the "
                     "wear-optimal pick may pay (fraction, default 0.05)",
            ),
            Param(
                name="max_points", kind="int", default=6,
                help="Pareto points shown per layer",
            ),
            Param(
                name="limit", kind="int", default=None,
                help="only report the first N distinct layers",
            ),
            _jobs_param(),
        ),
        tags=("analysis", "mapping"),
    )
)

register(
    ExperimentSpec(
        id="scorecard",
        title="re-check every paper-shape claim (pass/fail table)",
        artifact="reproduction scorecard",
        runner="repro.experiments.scorecard:run_scorecard",
        params=(_iterations_param(100),),
        tags=("scorecard",),
    )
)
