"""Registry drivers for the analysis-layer diagnostics.

``rota attribution`` and ``rota profile`` wrap functions from
:mod:`repro.analysis` whose ``format()`` takes a row limit. The registry
contract wants zero-argument ``format()`` and ``to_dict()`` on every
result, so these thin drivers bind the limit into the result object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.attribution import WearAttribution, attribute_wear
from repro.analysis.network_report import NetworkProfile, profile_network
from repro.experiments.common import (
    execution_for,
    paper_accelerator,
    streams_for,
)
from repro.experiments.result import JsonResultMixin

__all__ = [
    "AttributionReport",
    "ProfileReport",
    "run_attribution",
    "run_profile",
]


@dataclass(frozen=True)
class AttributionReport(JsonResultMixin):
    """Wear attribution of one network, with its display limit bound."""

    attribution: WearAttribution
    limit: int

    def format(self) -> str:
        """The top-``limit`` attribution rows."""
        return self.attribution.format(limit=self.limit)


@dataclass(frozen=True)
class ProfileReport(JsonResultMixin):
    """Per-layer profile of one network, with its display limit bound."""

    profile: NetworkProfile
    limit: Optional[int]

    def format(self) -> str:
        """The profile table, truncated to ``limit`` rows if set."""
        return self.profile.format(limit=self.limit)


def run_attribution(
    network: str = "SqueezeNet", limit: int = 10
) -> AttributionReport:
    """Which layers stress the baseline's hottest PE."""
    accelerator = paper_accelerator()
    streams = streams_for(network, accelerator)
    return AttributionReport(
        attribution=attribute_wear(accelerator, streams), limit=limit
    )


def run_profile(
    network: str = "SqueezeNet", limit: Optional[int] = None
) -> ProfileReport:
    """The per-layer schedule/utilization profile of one network."""
    accelerator = paper_accelerator()
    execution = execution_for(network, accelerator)
    return ProfileReport(
        profile=profile_network(accelerator, execution), limit=limit
    )
