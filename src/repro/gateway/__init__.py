"""``repro.gateway`` — the multi-process serving front door.

The gateway is the production-shaped successor of ``rota serve``: an
asyncio HTTP front end over a supervised pool of worker *processes*,
with request coalescing on content keys (concurrent identical
submissions share one execution), streaming job progress (SSE plus
ETag conditional polling), tiered backpressure (accept →
coalesce-only → shed → draining), and poisoned-key quarantine. It
speaks the exact HTTP surface of the PR-4 service — same routes, same
bodies, same error contract — so every existing client keeps working.
"""

from repro.gateway.api import GatewayAPI
from repro.gateway.coalesce import Coalescer
from repro.gateway.http import AsyncHTTPFrontend
from repro.gateway.jobs import TIERS, GatewayJob, GatewayJobManager
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.pool import PoolEvent, WorkerProcessPool
from repro.gateway.server import GatewayConfig, GatewayService, serve_gateway

__all__ = [
    "AsyncHTTPFrontend",
    "Coalescer",
    "GatewayAPI",
    "GatewayConfig",
    "GatewayJob",
    "GatewayJobManager",
    "GatewayMetrics",
    "GatewayService",
    "PoolEvent",
    "TIERS",
    "WorkerProcessPool",
    "serve_gateway",
]
