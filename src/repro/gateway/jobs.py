"""The gateway's job layer: coalesced intake over the process pool.

:class:`GatewayJobManager` is the multi-process, coalescing successor
of the PR-4 :class:`~repro.service.jobs.JobManager`. It exposes the
same query surface (``get``/``jobs``/``queue_depth``/
``running_count``/``worker_health``), so :class:`~repro.service.api.
ServiceAPI` routes against it unchanged, and adds:

* **request coalescing** — a submission whose content key is already
  executing attaches to the in-flight run (one execution, many
  responses) via :class:`~repro.gateway.coalesce.Coalescer`;
* **progress events** — every job keeps a monotonic event journal
  (``queued`` → ``running`` → terminal state) that feeds both the SSE
  stream and the JSON ``/events`` fallback, and listeners can
  subscribe for live delivery;
* **tiered backpressure** — the intake degrades in order: *accept* →
  *coalesce-only* (queue full: unique work is 429'd with a computed
  ``Retry-After``, identical-to-in-flight work still attaches) →
  *shed* (circuit breaker open: 503) → *draining* (shutdown: 503);
* **poisoned-key quarantine** — a key whose executions keep crashing
  workers is condemned; identical submissions fail fast instead of
  burning another worker process.

Thread model: submissions arrive on the asyncio loop (or any thread),
pool events arrive on the supervisor thread; every mutation happens
under one lock, and event listeners are invoked under that lock so a
subscriber observes a consistent, gap-free, monotonic event sequence.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.experiments.registry import (
    get_spec,
    package_version,
    validate_params,
)
from repro.gateway.coalesce import Coalescer
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.pool import PoolEvent, WorkerProcessPool
from repro.resilience import CircuitBreaker
from repro.runtime import CACHE_SCHEMA_VERSION, content_hash
from repro.service.jobs import (
    Job,
    JobState,
    QueueFullError,
    ServiceStoppedError,
    UnknownJobError,
)

__all__ = ["GatewayJob", "GatewayJobManager", "TIERS"]

#: Backpressure tiers, most to least permissive.
TIERS = ("accept", "coalesce-only", "shed", "draining")

Listener = Callable[[Dict[str, Any]], None]


@dataclass
class GatewayJob(Job):
    """One gateway submission (mutated only under the manager lock)."""

    #: Content key of the run (coalescing and warm-cache identity).
    key: str = ""
    #: True when this submission attached to an in-flight execution.
    coalesced: bool = False
    #: The job owning the execution this one attached to (or ``None``).
    primary_id: Optional[str] = None
    #: Monotonic progress journal; seq starts at 1.
    events: List[Dict[str, Any]] = field(default_factory=list, repr=False)
    #: Live event listeners (SSE subscribers).
    listeners: List[Listener] = field(default_factory=list, repr=False)

    def summary(self) -> Dict[str, Any]:
        body = super().summary()
        body["coalesced"] = self.coalesced
        body["version"] = self.version
        return body


class GatewayJobManager:
    """Coalesced, back-pressured intake over a worker-process pool.

    Parameters mirror :class:`~repro.service.jobs.JobManager` where the
    concepts match; the additions are ``task_attempts`` (worker-crash
    retries before a key is quarantined), ``start_method`` (the
    ``multiprocessing`` start method), and ``cache_dir`` (an explicit
    warm-hit store handed to the worker processes).
    """

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 64,
        metrics: Optional[GatewayMetrics] = None,
        job_timeout: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        task_attempts: int = 2,
        cache_dir: Optional[str] = None,
        cache_enabled: Optional[bool] = None,
        start_method: str = "spawn",
    ) -> None:
        if queue_depth < 1:
            raise ReproError(f"queue depth must be >= 1, got {queue_depth}")
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self.breaker = breaker
        self._workers = workers
        self._queue_depth = queue_depth
        self._lock = threading.Lock()
        self._jobs: Dict[str, GatewayJob] = {}
        self._counter = itertools.count(1)
        self._stop = threading.Event()
        self._coalescer = Coalescer()
        self._pool = WorkerProcessPool(
            workers=workers,
            on_event=self._on_pool_event,
            task_timeout=job_timeout,
            task_attempts=task_attempts,
            cache_dir=cache_dir,
            cache_enabled=cache_enabled,
            start_method=start_method,
            on_restart=self.metrics.record_worker_restart,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self, ready_timeout: Optional[float] = 60.0) -> None:
        """Spawn and warm the worker pool (blocks until ready)."""
        self._pool.start(ready_timeout=ready_timeout)

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful drain: stop intake, finish running, cancel queued."""
        self._stop.set()
        self._pool.shutdown(drain_timeout=timeout)

    # -- intake -------------------------------------------------------------

    def submit(
        self, spec_id: str, raw_params: Optional[Dict[str, Any]]
    ) -> GatewayJob:
        """Validate, coalesce or enqueue one run; returns the job.

        Raises the same error family as the thread service —
        :class:`ServiceStoppedError` (503), :class:`~repro.resilience.
        CircuitOpenError` (503), :class:`QueueFullError` (429) — plus
        :class:`~repro.resilience.PoisonedTaskError` for a quarantined
        content key.
        """
        spec = get_spec(spec_id)
        params = validate_params(spec, raw_params if raw_params is not None else {})
        if self._stop.is_set():
            raise ServiceStoppedError("gateway is shutting down")
        key = self._content_key(spec.id, params)
        self._coalescer.check_quarantine(key)
        job = GatewayJob(
            id=f"run-{next(self._counter):06d}-{uuid.uuid4().hex[:8]}",
            spec_id=spec.id,
            params=params,
            created_at=time.time(),
            key=key,
        )
        with self._lock:
            # Tier 1.5: attach to an identical in-flight execution. This
            # stays open through the coalesce-only tier — attaching costs
            # no queue slot and no worker.
            primary_id = self._coalescer.attach(key, job.id)
            if primary_id is not None:
                primary = self._jobs.get(primary_id)
                job.coalesced = True
                job.primary_id = primary_id
                self._jobs[job.id] = job
                self._publish_locked(job, JobState.QUEUED)
                if primary is not None and primary.state == JobState.RUNNING:
                    job.state = JobState.RUNNING
                    job.started_at = primary.started_at
                    job.version += 1
                    self._publish_locked(job, JobState.RUNNING)
                self.metrics.record_submitted()
                self.metrics.record_coalesced()
                return job
        # Unique work: subject to the breaker and the bounded queue.
        if self.breaker is not None:
            self.breaker.check()
        if self._pool.pending_count() >= self._queue_depth:
            self.metrics.record_rejected()
            raise QueueFullError(
                f"gateway queue is full ({self._queue_depth} pending); "
                f"identical in-flight submissions still coalesce",
                retry_after=self.retry_after_seconds(),
            )
        with self._lock:
            self._jobs[job.id] = job
            self._coalescer.open(key, job.id)
            self._publish_locked(job, JobState.QUEUED)
        self._pool.submit(job.id, job.spec_id, job.params, key)
        self.metrics.record_submitted()
        self.metrics.record_execution()
        return job

    def _content_key(self, spec_id: str, params: Dict[str, Any]) -> str:
        """Same content key as the PR-4 warm cache (shared identity)."""
        return content_hash(
            "service-run",
            CACHE_SCHEMA_VERSION,
            package_version(),
            spec_id,
            params,
        )

    # -- queries (ServiceAPI contract) --------------------------------------

    def get(self, job_id: str) -> GatewayJob:
        """Look up one job by id."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[GatewayJob]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def queue_depth(self) -> int:
        """Unique executions accepted but not yet on a worker."""
        return self._pool.pending_count()

    def running_count(self) -> int:
        """Executions currently on a worker process."""
        return self._pool.busy_count()

    def worker_health(self) -> List[Dict[str, Any]]:
        """Per-worker liveness (process pool flavor, for ``/healthz``)."""
        return self._pool.worker_health()

    def keys_in_flight(self) -> int:
        """Distinct content keys currently executing."""
        return self._coalescer.in_flight()

    def tier(self) -> str:
        """The current backpressure tier (see :data:`TIERS`)."""
        if self._stop.is_set():
            return "draining"
        if self.breaker is not None and self.breaker.state == (
            CircuitBreaker.OPEN
        ):
            return "shed"
        if self._pool.pending_count() >= self._queue_depth:
            return "coalesce-only"
        return "accept"

    def retry_after_seconds(self) -> int:
        """Backpressure hint for 429 responses (computed, clamped).

        Outstanding executions divided by the pool's observed service
        rate (EMA over ``workers`` lanes), clamped to [1, 60] — the
        same estimator the thread service now uses.
        """
        ema = self.metrics.estimated_job_seconds()
        if ema is None:
            return 1
        outstanding = self._pool.pending_count() + self._pool.busy_count()
        estimate = math.ceil(outstanding * ema / max(1, self._workers))
        return int(min(60, max(1, estimate)))

    # -- progress events ----------------------------------------------------

    def events_for(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's event journal so far (oldest first)."""
        job = self.get(job_id)
        with self._lock:
            return list(job.events)

    def subscribe(
        self, job_id: str, listener: Listener
    ) -> List[Dict[str, Any]]:
        """Register a live listener; returns the replay of past events.

        The replay and the subscription are atomic: every event is
        delivered exactly once, either in the returned list or to the
        listener, in seq order.
        """
        job = self.get(job_id)
        with self._lock:
            job.listeners.append(listener)
            return list(job.events)

    def unsubscribe(self, job_id: str, listener: Listener) -> None:
        """Drop a live listener (no-op if already gone)."""
        try:
            job = self.get(job_id)
        except UnknownJobError:
            return
        with self._lock:
            try:
                job.listeners.remove(listener)
            except ValueError:
                pass

    def _publish_locked(self, job: GatewayJob, state: str) -> None:
        """Append one event to the job's journal and notify listeners."""
        event: Dict[str, Any] = {
            "seq": len(job.events) + 1,
            "job_id": job.id,
            "state": state,
            "coalesced": job.coalesced,
            "cached": job.cached,
            "ts": round(time.time(), 6),
        }
        if job.error is not None:
            event["error"] = dict(job.error)
        job.events.append(event)
        for listener in list(job.listeners):
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - a bad subscriber must not wedge
                pass

    # -- pool event handling (supervisor thread) ----------------------------

    def _family(self, task_id: str) -> List[GatewayJob]:
        """The primary job plus every follower attached to its key."""
        primary = self._jobs.get(task_id)
        if primary is None:
            return []
        follower_ids = self._coalescer.followers(primary.key)
        family = [primary]
        for follower_id in follower_ids:
            follower = self._jobs.get(follower_id)
            if follower is not None:
                family.append(follower)
        return family

    def _on_pool_event(self, event: PoolEvent) -> None:
        if event.kind == "started":
            with self._lock:
                for job in self._family(event.task_id):
                    if job.state == JobState.QUEUED:
                        job.state = JobState.RUNNING
                        job.started_at = time.time()
                        job.version += 1
                        self._publish_locked(job, JobState.RUNNING)
            return
        if event.kind == "retry":
            self.metrics.record_task_retry()
            return
        if event.kind == "done":
            self._finish(event)
            return
        if event.kind == "cancelled":
            with self._lock:
                primary = self._jobs.get(event.task_id)
                family = self._family(event.task_id)
                if primary is not None:
                    self._coalescer.resolve(primary.key)
                for job in family:
                    if not job.done:
                        job.state = JobState.CANCELLED
                        job.finished_at = time.time()
                        job.version += 1
                        self._publish_locked(job, JobState.CANCELLED)
                        self.metrics.record_cancelled()
            return
        # failed / crash / timeout all terminate the family.
        timed_out = event.kind == "timeout"
        state = JobState.TIMEOUT if timed_out else JobState.FAILED
        error = {
            "code": event.code or "internal-error",
            "message": event.message or "execution failed",
        }
        with self._lock:
            primary = self._jobs.get(event.task_id)
            family = self._family(event.task_id)
            if primary is not None:
                self._coalescer.resolve(primary.key)
            for job in family:
                if job.done:
                    continue
                job.state = state
                job.error = dict(error)
                job.finished_at = time.time()
                job.version += 1
                self._publish_locked(job, state)
        if event.kind == "crash" and primary is not None:
            # The key kept killing workers: condemn it so identical
            # submissions stop burning processes.
            self._coalescer.quarantine(
                primary.key, f"{primary.spec_id}:{primary.id}"
            )
            self.metrics.record_quarantine()
            self.metrics.record_task_quarantine()
        seconds = self._job_seconds(primary)
        self.metrics.record_job_summary(
            None, seconds, failed=not timed_out, timed_out=timed_out
        )
        if self.breaker is not None:
            self.breaker.record_failure()

    def _finish(self, event: PoolEvent) -> None:
        with self._lock:
            primary = self._jobs.get(event.task_id)
            family = self._family(event.task_id)
            if primary is not None:
                self._coalescer.resolve(primary.key)
                primary.cached = event.cached
            for job in family:
                if job.done:
                    continue
                job.payload = event.payload
                job.state = JobState.DONE
                job.finished_at = time.time()
                job.version += 1
                self._publish_locked(job, JobState.DONE)
        seconds = self._job_seconds(primary)
        self.metrics.record_job_summary(event.observed, seconds)
        if self.breaker is not None:
            self.breaker.record_success()

    @staticmethod
    def _job_seconds(primary: Optional[GatewayJob]) -> float:
        if primary is None or primary.started_at is None:
            return 0.0
        finished = primary.finished_at or time.time()
        return max(0.0, finished - primary.started_at)
