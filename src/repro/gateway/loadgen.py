"""Seeded open-loop load generation for the serving front door.

The generator reuses the fleet simulator's arrival processes
(:mod:`repro.fleet.traffic`) to offer traffic to a *real* HTTP endpoint
— ``rota gateway`` or the PR-4 ``rota serve`` — and measures what the
service actually sustains. Open-loop means arrivals never wait for
completions: a request is fired at its scheduled offset regardless of
backlog, which is the regime where backpressure tiers and coalescing
matter (a closed-loop client self-throttles and hides both).

A scenario draws each request's *class* (experiment + parameters) from
a :class:`~repro.fleet.traffic.WorkloadMix` over a small class set, so
identical submissions naturally arrive concurrently — the duplicated
traffic shape (thundering herds on hot configurations) that request
coalescing converts from N executions into one.

Every request is driven to a terminal state over plain HTTP: submit,
then poll the run detail with ``If-None-Match`` (unchanged states cost
a bodyless 304). The report combines the client's view (sustained RPS,
submit-to-terminal p50/p99, error budget) with the service's own
``/metrics`` deltas (coalesce ratio, executions dispatched) so a bench
gate can assert both sides.

Determinism: the schedule is a pure function of ``(seed, scenario)``;
timings of course are not, which is why the bench records them as
direction-tagged metrics instead of asserting exact values.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError, ReproError
from repro.fleet.traffic import WorkloadMix, make_traffic

__all__ = [
    "LoadReport",
    "LoadScenario",
    "RequestClass",
    "default_scenario",
    "run_load",
]

#: Terminal job states (mirrors ``JobState.TERMINAL`` without importing
#: the service stack into the client).
_TERMINAL = ("done", "failed", "cancelled", "timeout")


@dataclass(frozen=True)
class RequestClass:
    """One request population: an experiment plus fixed parameters."""

    name: str
    spec_id: str
    params: Dict[str, Any] = field(default_factory=dict)


#: The default duplicated-traffic class set: four ``lifetime`` sweeps of
#: different lengths. Each runs a few hundred milliseconds — long enough
#: that identical arrivals overlap in flight and coalesce, short enough
#: that a bench pass stays in seconds.
DEFAULT_CLASSES = (
    RequestClass("lifetime-30", "lifetime", {"iterations": 30}),
    RequestClass("lifetime-40", "lifetime", {"iterations": 40}),
    RequestClass("lifetime-50", "lifetime", {"iterations": 50}),
    RequestClass("lifetime-60", "lifetime", {"iterations": 60}),
)


@dataclass(frozen=True)
class LoadScenario:
    """One seeded open-loop traffic description."""

    classes: Tuple[RequestClass, ...] = DEFAULT_CLASSES
    num_requests: int = 48
    rate_rps: float = 24.0
    kind: str = "poisson"
    seed: int = 2025
    poll_interval_s: float = 0.05
    request_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("a load scenario needs request classes")
        names = [cls.name for cls in self.classes]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate class name in {names}")

    def schedule(self) -> Tuple[Tuple[float, RequestClass], ...]:
        """The seeded ``(arrival_s, class)`` sequence, oldest first."""
        by_name = {cls.name: cls for cls in self.classes}
        mix = WorkloadMix.uniform(by_name)
        requests = make_traffic(
            self.kind,
            self.num_requests,
            self.rate_rps,
            mix=mix,
            seed=self.seed,
        )
        return tuple(
            (request.arrival_s, by_name[request.workload])
            for request in requests
        )


def default_scenario(smoke: bool = False) -> LoadScenario:
    """The pinned bench scenario (small in ``--smoke``)."""
    if smoke:
        return LoadScenario(num_requests=20, rate_rps=16.0)
    return LoadScenario(num_requests=48, rate_rps=24.0)


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured, client side and service side."""

    offered: int
    completed: int
    failed: int
    rejected: int
    errors_5xx: int
    submit_statuses: Dict[int, int]
    duration_s: float
    sustained_rps: float
    p50_ms: float
    p99_ms: float
    polls: int
    not_modified: int
    coalesce_ratio: float
    coalesced: int
    executions: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "errors_5xx": self.errors_5xx,
            "submit_statuses": {
                str(code): count
                for code, count in sorted(self.submit_statuses.items())
            },
            "duration_s": round(self.duration_s, 4),
            "sustained_rps": round(self.sustained_rps, 3),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "polls": self.polls,
            "not_modified": self.not_modified,
            "coalesce_ratio": round(self.coalesce_ratio, 6),
            "coalesced": self.coalesced,
            "executions": self.executions,
        }

    def format(self) -> str:
        """Human-readable one-run summary."""
        statuses = ", ".join(
            f"{code}: {count}"
            for code, count in sorted(self.submit_statuses.items())
        )
        return "\n".join(
            [
                f"load report: {self.completed}/{self.offered} completed "
                f"in {self.duration_s:.2f}s "
                f"({self.sustained_rps:.2f} sustained rps)",
                f"  latency    p50 {self.p50_ms:.1f} ms, "
                f"p99 {self.p99_ms:.1f} ms (submit to terminal)",
                f"  submits    {statuses}",
                f"  outcomes   {self.failed} failed, {self.rejected} "
                f"rejected, {self.errors_5xx} 5xx",
                f"  coalescing {self.coalesced} coalesced / "
                f"{self.executions} executions "
                f"(ratio {self.coalesce_ratio:.2f})",
                f"  polling    {self.polls} polls, "
                f"{self.not_modified} answered 304",
            ]
        )


# ---------------------------------------------------------------------------
# Minimal asyncio HTTP client (connection per request, like the clients
# the service targets; works against both the gateway's asyncio front
# end and the stdlib threading server behind ``rota serve``).
# ---------------------------------------------------------------------------


async def _http(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, str], Optional[Dict[str, Any]]]:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        if payload:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - close races are benign
            pass
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    response_headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    parsed: Optional[Dict[str, Any]] = None
    if body_raw:
        try:
            parsed = json.loads(body_raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = None
    return status, response_headers, parsed


@dataclass
class _Outcome:
    """Client-side record of one driven request."""

    submit_status: int
    latency_ms: Optional[float] = None
    terminal_state: Optional[str] = None
    polls: int = 0
    not_modified: int = 0


async def _drive_one(
    host: str,
    port: int,
    arrival_s: float,
    request_class: RequestClass,
    scenario: LoadScenario,
    started: float,
) -> _Outcome:
    """Fire one request at its offset and follow it to a terminal state."""
    delay = arrival_s - (time.perf_counter() - started)
    if delay > 0:
        await asyncio.sleep(delay)
    begin = time.perf_counter()
    try:
        status, _, body = await _http(
            host,
            port,
            "POST",
            f"/v1/experiments/{request_class.spec_id}/runs",
            body=request_class.params,
            timeout=scenario.request_timeout_s,
        )
    except (OSError, asyncio.TimeoutError):
        return _Outcome(submit_status=599)
    if status != 202 or body is None:
        return _Outcome(submit_status=status)
    job_id = body["job"]["id"]
    outcome = _Outcome(submit_status=status)
    etag: Optional[str] = None
    deadline = begin + scenario.request_timeout_s
    while time.perf_counter() < deadline:
        headers = {} if etag is None else {"If-None-Match": etag}
        try:
            poll_status, poll_headers, poll_body = await _http(
                host,
                port,
                "GET",
                f"/v1/runs/{job_id}",
                headers=headers,
                timeout=scenario.request_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            break
        outcome.polls += 1
        if poll_status == 304:
            outcome.not_modified += 1
        elif poll_body is not None:
            etag = poll_headers.get("etag", etag)
            state = poll_body.get("state")
            if state in _TERMINAL:
                outcome.terminal_state = state
                outcome.latency_ms = (time.perf_counter() - begin) * 1000.0
                return outcome
        await asyncio.sleep(scenario.poll_interval_s)
    return outcome


def _gateway_counters(metrics: Optional[Dict[str, Any]]) -> Dict[str, int]:
    """Coalescing counters from a ``/metrics`` body (0s for ``serve``)."""
    section = (metrics or {}).get("gateway") or {}
    jobs = (metrics or {}).get("jobs") or {}
    return {
        "coalesced": int(section.get("coalesced", 0)),
        "executions": int(section.get("executions_dispatched", 0)),
        "submitted": int(jobs.get("submitted", 0)),
    }


async def _run_load_async(base_url: str, scenario: LoadScenario) -> LoadReport:
    parts = urlsplit(base_url)
    if parts.hostname is None or parts.port is None:
        raise ConfigurationError(
            f"load base URL needs an explicit host:port, got {base_url!r}"
        )
    host, port = parts.hostname, parts.port
    status, _, before = await _http(host, port, "GET", "/metrics")
    if status != 200:
        raise ReproError(f"target /metrics answered {status}; aborting load")
    counters_before = _gateway_counters(before)
    schedule = scenario.schedule()
    started = time.perf_counter()
    outcomes = await asyncio.gather(
        *(
            _drive_one(host, port, arrival_s, cls, scenario, started)
            for arrival_s, cls in schedule
        )
    )
    duration_s = time.perf_counter() - started
    _, _, after = await _http(host, port, "GET", "/metrics")
    counters_after = _gateway_counters(after)

    latencies = sorted(
        outcome.latency_ms
        for outcome in outcomes
        if outcome.latency_ms is not None
    )
    completed = sum(1 for o in outcomes if o.terminal_state == "done")
    failed = sum(
        1
        for o in outcomes
        if o.terminal_state in ("failed", "timeout", "cancelled")
    )
    rejected = sum(1 for o in outcomes if o.submit_status in (429, 503))
    errors_5xx = sum(
        1
        for o in outcomes
        if 500 <= o.submit_status < 599 and o.submit_status != 503
    )
    statuses: Dict[int, int] = {}
    for o in outcomes:
        statuses[o.submit_status] = statuses.get(o.submit_status, 0) + 1
    coalesced = counters_after["coalesced"] - counters_before["coalesced"]
    executions = counters_after["executions"] - counters_before["executions"]
    submitted = counters_after["submitted"] - counters_before["submitted"]
    return LoadReport(
        offered=len(schedule),
        completed=completed,
        failed=failed,
        rejected=rejected,
        errors_5xx=errors_5xx,
        submit_statuses=statuses,
        duration_s=duration_s,
        sustained_rps=completed / duration_s if duration_s > 0 else 0.0,
        p50_ms=_percentile(latencies, 50.0),
        p99_ms=_percentile(latencies, 99.0),
        polls=sum(o.polls for o in outcomes),
        not_modified=sum(o.not_modified for o in outcomes),
        coalesce_ratio=coalesced / submitted if submitted else 0.0,
        coalesced=coalesced,
        executions=executions,
    )


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(len(sorted_values) * q / 100.0)))
    return sorted_values[rank]


def run_load(base_url: str, scenario: Optional[LoadScenario] = None) -> LoadReport:
    """Offer one scenario to a live service and report what it sustained."""
    return asyncio.run(
        _run_load_async(base_url, scenario or LoadScenario())
    )
