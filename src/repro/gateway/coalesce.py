"""Request coalescing: identical in-flight submissions share one run.

Every run is deterministic by construction — a submission is fully
described by its content key ``content_hash("service-run", schema,
version, spec id, validated params)``, the same key the PR-4 warm
cache stores results under. The warm cache already collapses
*sequential* duplicates; the :class:`Coalescer` collapses *concurrent*
ones: while a key is executing, later identical submissions attach to
the primary job instead of dispatching their own execution, and all
attached jobs resolve with the primary's payload the moment it lands.

The coalescer also keeps the poisoned-key ledger: a key whose
executions keep crashing workers is quarantined, and further
submissions for it are rejected outright instead of burning another
worker process (graceful degradation, not collapse).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.resilience import PoisonedTaskError

__all__ = ["Coalescer"]


class Coalescer:
    """Tracks in-flight content keys and the jobs attached to them."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key -> primary job id
        self._primary: Dict[str, str] = {}
        #: key -> follower job ids (primary excluded)
        self._attached: Dict[str, List[str]] = {}
        #: keys condemned by repeated worker crashes
        self._quarantined: Dict[str, str] = {}

    def check_quarantine(self, key: str) -> None:
        """Raise :class:`PoisonedTaskError` for a condemned key."""
        with self._lock:
            label = self._quarantined.get(key)
        if label is not None:
            raise PoisonedTaskError(label, attempts=0, kind="crash")

    def quarantine(self, key: str, label: str) -> None:
        """Condemn a key: identical submissions are rejected from now on."""
        with self._lock:
            self._quarantined[key] = label

    def quarantined_count(self) -> int:
        """Number of condemned keys."""
        with self._lock:
            return len(self._quarantined)

    def attach(self, key: str, job_id: str) -> Optional[str]:
        """Attach ``job_id`` to an in-flight ``key`` if one exists.

        Returns the primary job id when the submission coalesced, or
        ``None`` when nothing with this key is in flight.
        """
        with self._lock:
            primary = self._primary.get(key)
            if primary is None:
                return None
            self._attached[key].append(job_id)
            return primary

    def open(self, key: str, job_id: str) -> None:
        """Mark ``key`` as executing with ``job_id`` as its primary."""
        with self._lock:
            self._primary[key] = job_id
            self._attached[key] = []

    def resolve(self, key: str) -> List[str]:
        """Close an in-flight key; returns the attached follower ids."""
        with self._lock:
            self._primary.pop(key, None)
            return self._attached.pop(key, [])

    def followers(self, key: str) -> List[str]:
        """The follower ids currently attached to ``key``."""
        with self._lock:
            return list(self._attached.get(key, []))

    def in_flight(self) -> int:
        """Number of keys currently executing."""
        with self._lock:
            return len(self._primary)
