"""Assembly and lifecycle of one gateway process (``rota gateway``).

:class:`GatewayService` wires the pieces together — gateway metrics,
circuit breaker, the coalescing :class:`~repro.gateway.jobs.
GatewayJobManager` over its worker-process pool, the
:class:`~repro.gateway.api.GatewayAPI`, and the asyncio
:class:`~repro.gateway.http.AsyncHTTPFrontend` — and owns the event
loop, which runs on a dedicated background thread so ``start()`` /
``shutdown()`` stay plain synchronous calls (same ergonomics as
:class:`~repro.service.server.RotaService`, which the tests lean on).

:func:`serve_gateway` is the CLI entrypoint: print one listening line,
park on a shutdown event, and drain gracefully when SIGTERM *or*
SIGINT arrives — both signals take the identical path: stop accepting,
let running executions finish, cancel queued ones, close streams.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.resilience import CircuitBreaker
from repro.gateway.api import GatewayAPI
from repro.gateway.http import AsyncHTTPFrontend
from repro.gateway.jobs import GatewayJobManager
from repro.gateway.metrics import GatewayMetrics

__all__ = ["GatewayConfig", "GatewayService", "serve_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one ``rota gateway`` process.

    The serving knobs mirror :class:`~repro.service.server.
    ServiceConfig`; the gateway adds ``task_attempts`` (worker-crash
    retries before a content key is quarantined) and ``start_method``
    (how worker processes are spawned — ``spawn`` is the safe default
    next to the asyncio loop; tests use ``fork`` for speed).
    """

    host: str = "127.0.0.1"
    port: int = 8764
    workers: int = 4
    queue_depth: int = 64
    request_timeout: float = 300.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    task_attempts: int = 2
    start_method: str = "spawn"
    cache_dir: Optional[str] = None
    #: ``None`` = environment default; ``False`` forces every execution
    #: cold (the load bench uses it so throughput measures work, not
    #: warm hits).
    cache_enabled: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"gateway workers must be >= 1, got {self.workers}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"gateway queue depth must be >= 1, got {self.queue_depth}"
            )
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"gateway request timeout must be > 0, "
                f"got {self.request_timeout}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"gateway breaker threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigurationError(
                f"gateway breaker cooldown must be > 0, "
                f"got {self.breaker_cooldown}"
            )
        if self.task_attempts < 1:
            raise ConfigurationError(
                f"gateway task attempts must be >= 1, got {self.task_attempts}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigurationError(
                f"gateway start method must be spawn/fork/forkserver, "
                f"got {self.start_method!r}"
            )


class GatewayService:
    """One assembled gateway: pool + manager + API + asyncio front end."""

    def __init__(self, config: Optional[GatewayConfig] = None) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.metrics = GatewayMetrics()
        self.manager = GatewayJobManager(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            metrics=self.metrics,
            job_timeout=self.config.request_timeout,
            breaker=CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown_seconds=self.config.breaker_cooldown,
            ),
            task_attempts=self.config.task_attempts,
            cache_dir=self.config.cache_dir,
            cache_enabled=self.config.cache_enabled,
            start_method=self.config.start_method,
        )
        self.api = GatewayAPI(self.manager)
        self._frontend = AsyncHTTPFrontend(
            self.api,
            host=self.config.host,
            port=self.config.port,
            request_timeout=self.config.request_timeout,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    @property
    def host(self) -> str:
        """The bound host (after :meth:`start`)."""
        return self._host if self._host is not None else self.config.host

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        return self._port if self._port is not None else self.config.port

    @property
    def url(self) -> str:
        """Base URL of the running gateway."""
        return f"http://{self.host}:{self.port}"

    def start(self, ready_timeout: Optional[float] = 60.0) -> None:
        """Warm the worker pool, then bind and serve (both blocking).

        Returns only once every worker process has completed its ready
        handshake and the listener is bound — by the time the listening
        line is printed, the pool really is ``workers`` wide.
        """
        self.manager.start(ready_timeout=ready_timeout)
        if self._loop_thread is not None:
            return
        loop = asyncio.new_event_loop()
        self._loop = loop
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            started.set()
            loop.run_forever()

        self._loop_thread = threading.Thread(
            target=_run, name="rota-gateway-loop", daemon=True
        )
        self._loop_thread.start()
        started.wait()
        future = asyncio.run_coroutine_threadsafe(self._frontend.start(), loop)
        self._host, self._port = future.result(timeout=30.0)

    def shutdown(self, drain_timeout: Optional[float] = None) -> str:
        """Graceful drain; returns a one-line shutdown summary.

        Order matters: close the listener first (no new submissions),
        then drain the pool — running executions finish, queued ones
        cancel, and their terminal events close any live SSE streams —
        and only then stop the loop.
        """
        loop = self._loop
        if loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._frontend.stop(), loop
            ).result(timeout=30.0)
        self.manager.shutdown(timeout=drain_timeout)
        if loop is not None and self._loop_thread is not None:
            loop.call_soon_threadsafe(loop.stop)
            self._loop_thread.join(timeout=30.0)
            loop.close()
            self._loop = None
            self._loop_thread = None
        metrics = self.metrics
        return (
            f"rota gateway drained: {metrics.jobs_completed} completed "
            f"({metrics.jobs_coalesced} coalesced, "
            f"{metrics.executions_dispatched} executions), "
            f"{metrics.jobs_failed} failed, {metrics.jobs_cancelled} "
            f"cancelled, {metrics.jobs_rejected} rejected; "
            f"{metrics.requests_total} requests in "
            f"{metrics.uptime_seconds():.1f}s"
        )


def serve_gateway(
    config: Optional[GatewayConfig] = None,
    install_signal_handlers: bool = True,
) -> str:
    """Run the gateway until SIGTERM/SIGINT, then drain and summarize.

    This is what ``rota gateway`` calls. SIGINT is handled identically
    to SIGTERM — an operator's Ctrl-C gets the same graceful drain as
    the supervisor's stop signal.
    """
    service = GatewayService(config)
    stop = threading.Event()

    if install_signal_handlers:

        def _request_shutdown(signum: int, frame: Any) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)

    service.start()
    print(
        f"rota gateway listening on {service.url} "
        f"(workers={service.config.workers} processes, "
        f"queue={service.config.queue_depth}, "
        f"start_method={service.config.start_method}); "
        f"SIGTERM/SIGINT drain",
        flush=True,
    )
    stop.wait()
    return service.shutdown()
