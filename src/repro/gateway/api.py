"""The gateway's request surface: :class:`ServiceAPI` plus gateway state.

The whole PR-4 route table is inherited unchanged — experiments list,
validation, submission, run detail with ETag/304 — because
:class:`~repro.gateway.jobs.GatewayJobManager` speaks the same manager
contract. The overrides add what only the gateway has: per-worker
*process* liveness in ``/healthz`` and the coalescing/backpressure
section in ``/metrics``. The SSE upgrade of ``/v1/runs/<id>/events``
lives in the HTTP layer (:mod:`repro.gateway.http`); through the plain
``handle()`` contract that route answers with the JSON event journal.
"""

from __future__ import annotations

from repro.experiments.registry import package_version
from repro.gateway.jobs import GatewayJobManager
from repro.service.api import ApiResponse, ServiceAPI

__all__ = ["GatewayAPI"]


class GatewayAPI(ServiceAPI):
    """Routes gateway requests onto the coalescing job manager."""

    def __init__(self, manager: GatewayJobManager) -> None:
        super().__init__(manager)

    def _healthz(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        manager = self._manager
        workers = manager.worker_health()
        return ApiResponse(
            200,
            {
                "status": "ok",
                "version": package_version(),
                "uptime_seconds": round(manager.metrics.uptime_seconds(), 3),
                "workers": workers,
                "workers_alive": sum(1 for row in workers if row["alive"]),
                "tier": manager.tier(),
            },
        )

    def _metrics(self, method: str) -> ApiResponse:
        rejected = self._require(method, "GET")
        if rejected:
            return rejected
        manager = self._manager
        breaker = manager.breaker
        return ApiResponse(
            200,
            manager.metrics.snapshot(
                queue_depth=manager.queue_depth(),
                jobs_running=manager.running_count(),
                breaker=None if breaker is None else breaker.snapshot(),
                tier=manager.tier(),
                keys_in_flight=manager.keys_in_flight(),
                retry_after_hint=manager.retry_after_seconds(),
            ),
        )
