"""Gateway metrics: the service counters plus coalescing and streaming.

:class:`GatewayMetrics` extends :class:`~repro.service.metrics.
ServiceMetrics` with the front-door counters the gateway adds on top of
the job lifecycle: request coalescing (submissions attached to an
in-flight execution instead of spawning one), executions actually
dispatched to the worker pool, conditional-polling 304s, live SSE
streams, and poisoned-key quarantines. ``GET /metrics`` gains a
``gateway`` section; everything inherited keeps its shape, so PR-4
dashboards keep working against a gateway.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.metrics import ServiceMetrics

__all__ = ["GatewayMetrics"]


class GatewayMetrics(ServiceMetrics):
    """Thread-safe counters for one gateway process."""

    def __init__(self) -> None:
        super().__init__()
        # Submissions that attached to an in-flight identical execution.
        self.jobs_coalesced = 0
        # Tasks actually handed to the worker-process pool.
        self.executions_dispatched = 0
        # Conditional polls answered 304 Not Modified.
        self.requests_not_modified = 0
        # SSE streams opened over the lifetime of the process.
        self.sse_streams = 0
        # Content keys quarantined after repeated worker crashes.
        self.keys_quarantined = 0

    def record_coalesced(self) -> None:
        """Count one submission served by attaching to an in-flight run."""
        with self._lock:
            self.jobs_coalesced += 1

    def record_execution(self) -> None:
        """Count one task dispatched to the worker pool."""
        with self._lock:
            self.executions_dispatched += 1

    def record_not_modified(self) -> None:
        """Count one ETag poll answered with a bodyless 304."""
        with self._lock:
            self.requests_not_modified += 1

    def record_sse_stream(self) -> None:
        """Count one server-sent-events subscription."""
        with self._lock:
            self.sse_streams += 1

    def record_quarantine(self) -> None:
        """Count one content key condemned by repeated worker crashes."""
        with self._lock:
            self.keys_quarantined += 1

    def record_job_summary(
        self,
        observed: Optional[Dict[str, Any]],
        seconds: float,
        failed: bool = False,
        timed_out: bool = False,
    ) -> None:
        """Fold one pool execution's flattened counters into the totals.

        The worker-process twin of :meth:`ServiceMetrics.record_job` —
        workers live in separate processes, so they ship a plain
        counter dict instead of a RunMetrics object.
        """
        with self._lock:
            self._record_outcome_locked(seconds, failed, timed_out)
            if observed:
                self.cache_hits += observed.get("cache_hits", 0)
                self.cache_misses += observed.get("cache_misses", 0)
                self.cache_puts += observed.get("cache_puts", 0)
                self.cache_evictions += observed.get("cache_evictions", 0)
                self.cache_corruptions += observed.get("cache_corruptions", 0)
                self.task_retries += observed.get("task_retries", 0)
                self.task_timeouts += observed.get("task_timeouts", 0)
                self.task_quarantines += observed.get("task_quarantines", 0)
                self.tasks_run += observed.get("tasks_run", 0)
                self.task_seconds += observed.get("task_seconds", 0.0)

    def record_task_retry(self) -> None:
        """Count one task redispatched after a worker crash."""
        with self._lock:
            self.task_retries += 1

    def record_task_quarantine(self) -> None:
        """Count one task condemned after exhausting its attempts."""
        with self._lock:
            self.task_quarantines += 1

    def coalesce_ratio(self) -> float:
        """Fraction of accepted submissions served without an execution."""
        with self._lock:
            if not self.jobs_submitted:
                return 0.0
            return self.jobs_coalesced / self.jobs_submitted

    def snapshot(
        self,
        queue_depth: int = 0,
        jobs_running: int = 0,
        breaker: Optional[Dict[str, Any]] = None,
        tier: Optional[str] = None,
        keys_in_flight: int = 0,
        retry_after_hint: int = 1,
    ) -> Dict[str, Any]:
        """The service snapshot plus the ``gateway`` section."""
        body = super().snapshot(
            queue_depth=queue_depth, jobs_running=jobs_running, breaker=breaker
        )
        with self._lock:
            coalesce_ratio = (
                self.jobs_coalesced / self.jobs_submitted
                if self.jobs_submitted
                else 0.0
            )
            body["gateway"] = {
                "coalesced": self.jobs_coalesced,
                "coalesce_ratio": round(coalesce_ratio, 6),
                "executions_dispatched": self.executions_dispatched,
                "keys_in_flight": keys_in_flight,
                "keys_quarantined": self.keys_quarantined,
                "not_modified": self.requests_not_modified,
                "sse_streams": self.sse_streams,
                "backpressure": {
                    "tier": tier,
                    "retry_after_hint": retry_after_hint,
                },
            }
        return body
