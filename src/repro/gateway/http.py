"""The gateway's asyncio HTTP/1.1 front end.

One event loop (run by :class:`~repro.gateway.server.GatewayService` on
a dedicated thread) accepts every connection; request handling is
non-blocking because the expensive work — experiment execution — lives
in the worker processes, and the API layer only touches in-memory job
state under short critical sections. The transport stays deliberately
small:

* ordinary routes parse the request, call :meth:`ServiceAPI.handle`
  (the exact contract ``rota serve`` uses), and write one JSON
  document with ``Connection: close``;
* ``GET /v1/runs/<id>/events`` with ``Accept: text/event-stream`` is
  upgraded to a live SSE stream: the journal replay and the
  subscription are atomic (no gaps, no duplicates), events carry
  ``id:``/``event:``/``data:`` lines with monotonic per-job sequence
  numbers, heartbeat comments keep idle connections alive, and the
  stream closes itself after the terminal event;
* a 304 is written with no body and no content type (RFC 9110).

HTTP parsing accepts exactly what the service's clients send: a request
line, ``\\r\\n``-separated headers, and an optional ``Content-Length``
JSON body. Anything malformed gets a structured 400, never a stack
trace.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.api import ApiResponse, ServiceAPI
from repro.service.jobs import JobState, UnknownJobError

__all__ = ["AsyncHTTPFrontend"]

#: Max bytes of request head (request line + headers) we accept.
_MAX_HEAD_BYTES = 32 * 1024
#: Max JSON body bytes we accept.
_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds of SSE silence before a comment heartbeat is emitted.
_HEARTBEAT_SECONDS = 15.0


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")


_REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """A malformed request; the message becomes the 400 body."""


class AsyncHTTPFrontend:
    """Serves :class:`ServiceAPI` over asyncio, with the SSE upgrade."""

    def __init__(
        self,
        api: ServiceAPI,
        host: str = "127.0.0.1",
        port: int = 8764,
        request_timeout: float = 300.0,
    ) -> None:
        self._api = api
        self._host = host
        self._port = port
        self._request_timeout = request_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[Tuple[str, int]] = None

    # -- lifecycle (called from the loop thread) ----------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        return self._address

    async def stop(self) -> None:
        """Stop accepting new connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)`` once started."""
        return self._address

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await asyncio.wait_for(
                self._handle_request(reader, writer),
                timeout=self._request_timeout,
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass
        except ConnectionError:
            pass
        except Exception:  # noqa: BLE001 - a bad connection must not leak
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, headers, body = await self._read_request(reader)
        except _BadRequest as error:
            await self._write_response(
                writer,
                ApiResponse(
                    400,
                    {"error": {"code": "invalid-request", "message": str(error)}},
                ),
            )
            return
        if self._wants_sse(method, path, headers):
            await self._stream_events(writer, path, headers)
            return
        response = self._api.handle(method, path, body, headers)
        await self._write_response(writer, response)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[Dict[str, Any]]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large") from None
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                raise
            raise _BadRequest("truncated request head") from None
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            if not _:
                raise _BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = await self._read_body(reader, headers)
        return method, path, headers, body

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Mapping[str, str]
    ) -> Optional[Dict[str, Any]]:
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest("content-length is not an integer") from None
        if length <= 0:
            return None
        if length > _MAX_BODY_BYTES:
            raise _BadRequest(f"request body too large ({length} bytes)")
        raw = await reader.readexactly(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(
                f"request body is not valid JSON: {error}"
            ) from None
        if parsed is not None and not isinstance(parsed, dict):
            raise _BadRequest(
                f"request body must be a JSON object, "
                f"got {type(parsed).__name__}"
            )
        return parsed

    # -- plain JSON responses -----------------------------------------------

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: ApiResponse
    ) -> None:
        payload = b"" if response.status == 304 else _json_bytes(response.payload)
        head = [
            f"HTTP/1.1 {response.status} "
            f"{_REASONS.get(response.status, 'Unknown')}"
        ]
        if payload:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(payload)}")
        for name, value in response.headers:
            head.append(f"{name}: {value}")
        head.append("Connection: close")
        writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + payload
        )
        await writer.drain()
        self._api.manager.metrics.record_request(response.status)

    # -- SSE ----------------------------------------------------------------

    @staticmethod
    def _wants_sse(
        method: str, path: str, headers: Mapping[str, str]
    ) -> bool:
        if method != "GET":
            return False
        parts = [part for part in path.split("/") if part]
        if len(parts) != 4 or parts[:2] != ["v1", "runs"] or parts[3] != "events":
            return False
        return "text/event-stream" in headers.get("accept", "")

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        path: str,
        headers: Mapping[str, str],
    ) -> None:
        """Upgrade ``/v1/runs/<id>/events`` to a live event stream.

        The journal replay and the live subscription are atomic (the
        manager returns the replay under the same lock that registers
        the listener), so a subscriber sees every event exactly once,
        in sequence order. The stream self-terminates after a terminal
        state, which lets dumb clients simply read to EOF.
        """
        manager = self._api.manager
        job_id = [part for part in path.split("/") if part][2]
        subscribe = getattr(manager, "subscribe", None)
        if subscribe is None:
            await self._write_response(
                writer,
                self._api.handle("GET", path, None, headers),
            )
            return
        try:
            cursor = int(headers.get("last-event-id", 0))
        except ValueError:
            cursor = 0
        loop = asyncio.get_running_loop()
        pending: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

        def _listener(event: Dict[str, Any]) -> None:
            # Invoked under the manager lock from whatever thread
            # publishes (intake or pool supervisor): hand off without
            # blocking and without touching loop state directly.
            loop.call_soon_threadsafe(pending.put_nowait, event)

        try:
            replay = subscribe(job_id, _listener)
        except UnknownJobError:
            await self._write_response(
                writer,
                ApiResponse(
                    404,
                    {
                        "error": {
                            "code": "unknown-job",
                            "message": f"unknown job {job_id!r}",
                        }
                    },
                ),
            )
            return
        record_stream = getattr(manager.metrics, "record_sse_stream", None)
        if record_stream is not None:
            record_stream()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            terminal = False
            # Replay events land on the queue ahead of any live event:
            # the listener enqueues via call_soon_threadsafe, which
            # cannot run until this coroutine next awaits.
            for event in replay:
                if event["seq"] <= cursor:
                    continue
                terminal = await self._write_event(writer, event)
                if terminal:
                    break
            while not terminal:
                try:
                    event = await asyncio.wait_for(
                        pending.get(), timeout=_HEARTBEAT_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(b": heartbeat\r\n\r\n")
                    await writer.drain()
                    continue
                if event["seq"] <= cursor:
                    continue
                terminal = await self._write_event(writer, event)
            self._api.manager.metrics.record_request(200)
        finally:
            unsubscribe = getattr(manager, "unsubscribe", None)
            if unsubscribe is not None:
                unsubscribe(job_id, _listener)

    @staticmethod
    async def _write_event(
        writer: asyncio.StreamWriter, event: Dict[str, Any]
    ) -> bool:
        """Emit one SSE frame; returns True when the state is terminal."""
        data = json.dumps(event, sort_keys=True)
        frame = (
            f"id: {event['seq']}\r\n"
            f"event: {event['state']}\r\n"
            f"data: {data}\r\n\r\n"
        )
        writer.write(frame.encode("utf-8"))
        await writer.drain()
        return event["state"] in JobState.TERMINAL
