"""The gateway's supervised worker-process pool.

Where the PR-4 service executed jobs on worker *threads* inside the
HTTP process, the gateway runs them in N dedicated worker *processes*:
one experiment at a time per worker, dispatched over a per-worker task
queue, results and lifecycle events flowing back over one shared event
queue. A supervisor thread in the gateway process owns the pool state
and provides the resilience guarantees the serving front door needs:

* **ready handshake** — a worker announces itself only after it has
  imported the simulation stack, so ``/healthz`` reporting N live
  workers means N *warm* processes;
* **deadline enforcement** — a task overrunning its wall-clock budget
  gets its worker ``terminate()``-d (processes, unlike threads, can
  actually be killed) and reported as a timeout;
* **dead-worker respawn** — a worker that exits for any reason is
  replaced, and whatever task it held is retried on another worker;
* **poisoned-task retry accounting** — a task that keeps killing
  workers is failed with ``kind="crash"`` after ``task_attempts``
  tries; the job layer quarantines its content key so identical
  submissions stop burning workers (the same quarantine idea
  :class:`~repro.runtime.parallel.ParallelRunner` applies to batch
  tasks, re-used for serving).

Workers execute through the same ``run_experiment`` + warm-cache path
as the thread service, so a gateway response is byte-identical to
``rota <exp> --json`` (modulo manifest timings).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError

__all__ = ["PoolEvent", "WorkerProcessPool"]

#: Environment knob forcing nested runners serial inside pool workers
#: (mirrors :func:`repro.runtime.parallel._worker_init`).
_JOBS_ENV = "REPRO_JOBS"


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------


def _observed_summary(observed: Any) -> Dict[str, int]:
    """Flatten a worker-side RunMetrics into a picklable counter dict."""
    return {
        "cache_hits": observed.cache_hits,
        "cache_misses": observed.cache_misses,
        "cache_puts": observed.cache_puts,
        "cache_evictions": observed.cache_evictions,
        "cache_corruptions": observed.cache_corruptions,
        "task_retries": observed.task_retries,
        "task_timeouts": observed.task_timeouts,
        "task_quarantines": observed.task_quarantines,
        "tasks_run": len(observed.task_timings),
        "task_seconds": sum(t.seconds for t in observed.task_timings),
    }


def _worker_main(
    worker_id: int,
    task_queue: "multiprocessing.Queue",
    event_queue: "multiprocessing.Queue",
    cache_dir: Optional[str],
    cache_enabled: Optional[bool],
) -> None:
    """One worker process: import, announce ready, execute until sentinel."""
    os.environ[_JOBS_ENV] = "1"
    # Pay the import bill up front, before claiming to be ready.
    from repro.experiments.registry import run_experiment  # noqa: F401
    from repro.runtime import ResultCache, result_cache
    from repro.runtime.observe import collect_metrics

    if cache_dir is not None:
        cache = ResultCache(
            directory=cache_dir,
            enabled=True if cache_enabled is None else cache_enabled,
        )
    else:
        cache = result_cache()
    event_queue.put(("ready", worker_id, os.getpid()))
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, spec_id, params, key = item
        event_queue.put(("started", worker_id, task_id, os.getpid()))
        try:
            with collect_metrics() as observed:
                payload, cached = _run_or_reuse(cache, key, spec_id, params)
            event_queue.put(
                (
                    "done",
                    worker_id,
                    task_id,
                    payload,
                    cached,
                    _observed_summary(observed),
                )
            )
        except ReproError as error:
            event_queue.put(
                ("failed", worker_id, task_id, "repro-error", str(error))
            )
        except Exception as error:  # noqa: BLE001 - worker must survive jobs
            event_queue.put(
                (
                    "failed",
                    worker_id,
                    task_id,
                    "internal-error",
                    f"{type(error).__name__}: {error}",
                )
            )


def _run_or_reuse(
    cache: Any, key: str, spec_id: str, params: Dict[str, Any]
) -> Tuple[Dict[str, Any], bool]:
    """Serve from the shared warm-hit store or execute for real."""
    from repro.experiments.registry import run_experiment

    hit = cache.get(key)
    if isinstance(hit, dict) and "result" in hit and "manifest" in hit:
        return hit, True
    run = run_experiment(spec_id, **params)
    payload = {
        "result": run.result.to_dict(),
        "manifest": run.manifest.to_dict(),
    }
    cache.put(key, payload)
    return payload, False


# ---------------------------------------------------------------------------
# Gateway process side
# ---------------------------------------------------------------------------


@dataclass
class PoolEvent:
    """One task outcome reported to the pool's owner.

    ``kind`` is ``"started"``, ``"done"``, ``"failed"``, ``"crash"``,
    ``"timeout"``, ``"retry"``, or ``"cancelled"``. For ``done``,
    ``payload``/``cached``/``observed`` are set; for failures, ``code``
    and ``message``.
    """

    kind: str
    task_id: str
    payload: Optional[Dict[str, Any]] = None
    cached: bool = False
    observed: Optional[Dict[str, int]] = None
    code: Optional[str] = None
    message: Optional[str] = None
    attempts: int = 1


@dataclass
class _Task:
    task_id: str
    spec_id: str
    params: Dict[str, Any]
    key: str
    attempts: int = 0


@dataclass
class _Worker:
    index: int
    process: "multiprocessing.process.BaseProcess"
    task_queue: "multiprocessing.Queue"
    ready: bool = False
    current: Optional[_Task] = None
    started_at: float = 0.0
    jobs_completed: int = 0
    restarts: int = 0
    stats: Dict[str, Any] = field(default_factory=dict)


class WorkerProcessPool:
    """N supervised worker processes behind per-worker task queues.

    Parameters
    ----------
    workers:
        Number of worker processes.
    on_event:
        Callback invoked from the supervisor thread with a
        :class:`PoolEvent` for every task lifecycle transition. The
        callback must be thread-safe and fast.
    task_timeout:
        Wall-clock budget per executing task; an overrunning worker is
        terminated and the task reported with ``kind="timeout"``.
        ``None`` disables the deadline.
    task_attempts:
        Times a task may be dispatched before a worker crash condemns
        it (``kind="crash"``). Attempt 2+ of a task is reported with a
        ``retry`` event first.
    cache_dir / cache_enabled:
        Explicit warm-hit store for the workers; ``None`` resolves the
        environment default (``REPRO_RESULT_CACHE``) per worker.
    start_method:
        ``multiprocessing`` start method. ``spawn`` (default) keeps
        workers independent of the gateway's threads; tests may use
        ``fork`` for startup speed.
    """

    def __init__(
        self,
        workers: int,
        on_event: Callable[[PoolEvent], None],
        task_timeout: Optional[float] = None,
        task_attempts: int = 2,
        cache_dir: Optional[str] = None,
        cache_enabled: Optional[bool] = None,
        start_method: str = "spawn",
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"gateway workers must be >= 1, got {workers}"
            )
        if task_attempts < 1:
            raise ConfigurationError(
                f"task_attempts must be >= 1, got {task_attempts}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0, got {task_timeout}"
            )
        self._context = multiprocessing.get_context(start_method)
        self._num_workers = workers
        self._on_event = on_event
        self._task_timeout = task_timeout
        self._task_attempts = task_attempts
        self._cache_dir = cache_dir
        self._cache_enabled = cache_enabled
        self._event_queue: "multiprocessing.Queue" = self._context.Queue()
        self._lock = threading.Lock()
        self._pending: List[_Task] = []
        self._workers: List[_Worker] = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._on_restart = on_restart
        self.workers_restarted = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self, ready_timeout: Optional[float] = 60.0) -> None:
        """Spawn the workers and the supervisor thread (idempotent).

        Blocks until every worker has completed its import handshake
        (up to ``ready_timeout`` seconds) so callers observe a warm,
        full-width pool.
        """
        if self._supervisor is not None:
            return
        with self._lock:
            for index in range(self._num_workers):
                self._workers.append(self._spawn(index))
        self._supervisor = threading.Thread(
            target=self._supervise, name="rota-gateway-supervisor", daemon=True
        )
        self._supervisor.start()
        if ready_timeout is not None:
            deadline = time.monotonic() + ready_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if all(worker.ready for worker in self._workers):
                        return
                time.sleep(0.01)
            raise ReproError(
                f"gateway worker pool not ready within {ready_timeout:g}s"
            )

    def _spawn(self, index: int) -> _Worker:
        task_queue: "multiprocessing.Queue" = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                task_queue,
                self._event_queue,
                self._cache_dir,
                self._cache_enabled,
            ),
            name=f"rota-gateway-worker-{index}",
            daemon=True,
        )
        process.start()
        return _Worker(index=index, process=process, task_queue=task_queue)

    def shutdown(self, drain_timeout: Optional[float] = None) -> None:
        """Drain and stop: finish running tasks, cancel pending ones.

        Pending (never dispatched) tasks are reported as ``cancelled``;
        busy workers get up to ``drain_timeout`` seconds to finish
        before being terminated (their task reported as ``crash``).
        """
        self._draining.set()
        with self._lock:
            pending, self._pending = self._pending, []
        for task in pending:
            self._on_event(PoolEvent(kind="cancelled", task_id=task.task_id))
        deadline = (
            None
            if drain_timeout is None
            else time.monotonic() + drain_timeout
        )
        while True:
            with self._lock:
                busy = [w for w in self._workers if w.current is not None]
            if not busy:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        self._stop.set()
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.task_queue.put_nowait(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None

    # -- intake -------------------------------------------------------------

    def submit(
        self, task_id: str, spec_id: str, params: Dict[str, Any], key: str
    ) -> None:
        """Queue one task for execution (dispatched by the supervisor)."""
        if self._draining.is_set() or self._stop.is_set():
            raise ReproError("worker pool is shutting down")
        with self._lock:
            self._pending.append(
                _Task(task_id=task_id, spec_id=spec_id, params=params, key=key)
            )

    def pending_count(self) -> int:
        """Tasks accepted but not yet dispatched to a worker."""
        with self._lock:
            return len(self._pending)

    def busy_count(self) -> int:
        """Workers currently executing a task."""
        with self._lock:
            return sum(1 for w in self._workers if w.current is not None)

    def worker_health(self) -> List[Dict[str, Any]]:
        """Per-worker liveness for ``/healthz`` (process pool flavor)."""
        with self._lock:
            rows = []
            for worker in self._workers:
                rows.append(
                    {
                        "id": worker.index,
                        "kind": "process",
                        "pid": worker.process.pid,
                        "alive": worker.process.is_alive(),
                        "ready": worker.ready,
                        "busy": worker.current is not None,
                        "current_job": (
                            None
                            if worker.current is None
                            else worker.current.task_id
                        ),
                        "jobs_completed": worker.jobs_completed,
                        "restarts": worker.restarts,
                    }
                )
            return rows

    # -- supervision --------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                event = self._event_queue.get(timeout=0.02)
            except queue.Empty:
                event = None
            except (OSError, ValueError):
                return  # queue closed during shutdown
            if event is not None:
                try:
                    self._handle_event(event)
                except Exception:  # noqa: BLE001 - supervisor must survive
                    pass
            self._check_deadlines()
            self._check_liveness()
            self._dispatch()

    def _handle_event(self, event: Tuple[Any, ...]) -> None:
        kind, worker_id = event[0], event[1]
        with self._lock:
            worker = self._worker_by_index(worker_id)
        if worker is None:
            return
        if kind == "ready":
            with self._lock:
                worker.ready = True
            return
        if kind == "started":
            # Dispatch already recorded worker.current; the event just
            # confirms the worker picked the task up.
            task_id = event[2]
            with self._lock:
                if worker.current is not None and (
                    worker.current.task_id == task_id
                ):
                    worker.started_at = time.monotonic()
            self._on_event(PoolEvent(kind="started", task_id=task_id))
            return
        if kind == "done":
            _, _, task_id, payload, cached, observed = event
            with self._lock:
                task = worker.current
                worker.current = None
                worker.jobs_completed += 1
            if task is None or task.task_id != task_id:
                return
            self._on_event(
                PoolEvent(
                    kind="done",
                    task_id=task_id,
                    payload=payload,
                    cached=cached,
                    observed=observed,
                    attempts=task.attempts,
                )
            )
            return
        if kind == "failed":
            _, _, task_id, code, message = event
            with self._lock:
                task = worker.current
                worker.current = None
            if task is None or task.task_id != task_id:
                return
            self._on_event(
                PoolEvent(
                    kind="failed",
                    task_id=task_id,
                    code=code,
                    message=message,
                    attempts=task.attempts,
                )
            )

    def _worker_by_index(self, index: int) -> Optional[_Worker]:
        for worker in self._workers:
            if worker.index == index:
                return worker
        return None

    def _check_deadlines(self) -> None:
        if self._task_timeout is None:
            return
        now = time.monotonic()
        overdue: List[Tuple[_Worker, _Task]] = []
        with self._lock:
            for worker in self._workers:
                if (
                    worker.current is not None
                    and worker.started_at
                    and now - worker.started_at > self._task_timeout
                ):
                    overdue.append((worker, worker.current))
        for worker, task in overdue:
            self._replace_worker(worker)
            self._on_event(
                PoolEvent(
                    kind="timeout",
                    task_id=task.task_id,
                    code="timeout",
                    message=(
                        f"job exceeded the {self._task_timeout:g}s "
                        f"request timeout"
                    ),
                    attempts=task.attempts,
                )
            )

    def _check_liveness(self) -> None:
        dead: List[_Worker] = []
        with self._lock:
            for worker in self._workers:
                if not worker.process.is_alive():
                    dead.append(worker)
        for worker in dead:
            task = worker.current
            self._replace_worker(worker)
            if task is None:
                continue
            if task.attempts < self._task_attempts and not (
                self._draining.is_set()
            ):
                # The crash burned one attempt; requeue on another worker.
                self._on_event(
                    PoolEvent(
                        kind="retry",
                        task_id=task.task_id,
                        attempts=task.attempts,
                    )
                )
                with self._lock:
                    self._pending.insert(0, task)
            else:
                self._on_event(
                    PoolEvent(
                        kind="crash",
                        task_id=task.task_id,
                        code="worker-crash",
                        message=(
                            f"worker process died while executing "
                            f"{task.task_id} (attempt {task.attempts}/"
                            f"{self._task_attempts})"
                        ),
                        attempts=task.attempts,
                    )
                )

    def _replace_worker(self, worker: _Worker) -> None:
        """Kill (if needed) and respawn one worker slot."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if self._stop.is_set() or self._draining.is_set():
            with self._lock:
                worker.current = None
            return
        with self._lock:
            replacement = self._spawn(worker.index)
            replacement.jobs_completed = worker.jobs_completed
            replacement.restarts = worker.restarts + 1
            position = self._workers.index(worker)
            self._workers[position] = replacement
            self.workers_restarted += 1
        if self._on_restart is not None:
            self._on_restart()

    def _dispatch(self) -> None:
        """Hand pending tasks to ready idle workers (supervisor only)."""
        while True:
            with self._lock:
                if not self._pending:
                    return
                idle = next(
                    (
                        worker
                        for worker in self._workers
                        if worker.ready
                        and worker.current is None
                        and worker.process.is_alive()
                    ),
                    None,
                )
                if idle is None:
                    return
                task = self._pending.pop(0)
                task.attempts += 1
                idle.current = task
                idle.started_at = time.monotonic()
            try:
                idle.task_queue.put(
                    (task.task_id, task.spec_id, task.params, task.key)
                )
            except (OSError, ValueError):
                with self._lock:
                    idle.current = None
                    self._pending.insert(0, task)
                return
