"""Seeded Monte Carlo over fleet traffic/wear-out scenarios.

Each scenario draws fresh traffic and fresh per-device endurance-budget
fields, runs the fleet event loop under one dispatch policy, and keeps a
compact outcome record. Seeding mirrors :mod:`repro.faults.montecarlo`:
one :class:`numpy.random.SeedSequence` child is spawned per scenario *up
front*, and each child spawns exactly two grandchildren — traffic first,
budgets second — so the sampled scenario set depends only on
``(seed, num_scenarios)``, never on ``chunk_size``, ``jobs``, or how
chunks land on worker processes. Serial and parallel runs are
bit-identical.

Workload profiles are built **once in the caller's process** and shipped
to workers as plain data; workers never touch the scheduler, so a fleet
sweep fans out with no per-worker warm-up beyond unpickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigurationError
from repro.fleet.device import WorkloadProfile, build_profiles
from repro.fleet.simulate import FleetConfig, FleetResult, simulate_fleet
from repro.fleet.traffic import WorkloadMix, make_traffic
from repro.resilience import CheckpointJournal
from repro.runtime import ParallelRunner, accelerator_fingerprint, content_hash

Seed = Union[int, np.random.SeedSequence]

#: Fleet scenarios are mid-weight (an event loop over a few hundred
#: requests), between the heavy engine runs of ``faults.montecarlo``
#: (chunks of 8) and the trivial draws of ``reliability.montecarlo``.
DEFAULT_CHUNK_SIZE = 4


@dataclass(frozen=True)
class FleetOutcome:
    """Compact record of one sampled fleet scenario."""

    mttf_series_s: float
    mttf_parallel_s: float
    completed: int
    rejected: int
    dropped: int
    throughput_rps: float
    latency_p99_s: float
    wear_imbalance: float
    devices_alive_at_end: int
    pe_deaths: int
    #: Accuracy-layer fields, appended with defaults so outcome records
    #: journaled before PR 10 still unpickle.
    delivered_loss_p99: float = 0.0
    slo_violations: int = 0
    time_to_first_retirement_s: float = 0.0

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetOutcome":
        """Distill a full :class:`FleetResult` into the sweep record."""
        return cls(
            mttf_series_s=result.mttf_series_s,
            mttf_parallel_s=result.mttf_parallel_s,
            completed=result.completed,
            rejected=result.rejected,
            dropped=result.dropped,
            throughput_rps=result.throughput_rps,
            latency_p99_s=result.latency_p99_s,
            wear_imbalance=result.wear_imbalance,
            devices_alive_at_end=result.devices_alive_at_end,
            pe_deaths=len(result.pe_deaths),
            delivered_loss_p99=result.delivered_loss_p99,
            slo_violations=result.slo_violations,
            time_to_first_retirement_s=result.time_to_first_retirement_s,
        )


@dataclass(frozen=True)
class FleetScenarioSamples:
    """Aggregate of many sampled fleet scenarios for one dispatch policy."""

    policy: str
    num_devices: int
    traffic_kind: str
    outcomes: Tuple[FleetOutcome, ...]

    @property
    def num_scenarios(self) -> int:
        """How many scenarios were sampled."""
        return len(self.outcomes)

    @property
    def mean_mttf_series_s(self) -> float:
        """Mean first-device-failure MTTF across scenarios."""
        return float(np.mean([o.mttf_series_s for o in self.outcomes]))

    @property
    def mean_wear_imbalance(self) -> float:
        """Mean max-over-mean device wear across scenarios."""
        return float(np.mean([o.wear_imbalance for o in self.outcomes]))

    @property
    def mean_rejected(self) -> float:
        """Mean rejected-request count across scenarios."""
        return float(np.mean([o.rejected for o in self.outcomes]))

    @property
    def mean_time_to_first_retirement_s(self) -> float:
        """Mean time until the first device retired across scenarios."""
        return float(
            np.mean([o.time_to_first_retirement_s for o in self.outcomes])
        )

    @property
    def worst_delivered_loss_p99(self) -> float:
        """Largest per-scenario p99 delivered loss (the SLO-bound check)."""
        return float(max(o.delivered_loss_p99 for o in self.outcomes))


def _scenario_chunk(spec: Tuple) -> Tuple[FleetOutcome, ...]:
    """Run one chunk of scenarios (module-level so pools can pickle it)."""
    (
        profiles,
        accelerator,
        config,
        traffic_kind,
        num_requests,
        rate_rps,
        mix,
        scenario_seeds,
    ) = spec
    outcomes = []
    for scenario_seed in scenario_seeds:
        traffic_seed, budget_seed = scenario_seed.spawn(2)
        requests = make_traffic(
            traffic_kind, num_requests, rate_rps, mix=mix, seed=traffic_seed
        )
        result = simulate_fleet(
            profiles,
            requests,
            accelerator=accelerator,
            config=config,
            seed=budget_seed,
        )
        outcomes.append(FleetOutcome.from_result(result))
    return tuple(outcomes)


def sample_fleet_scenarios(
    accelerator: Accelerator,
    config: FleetConfig = FleetConfig(),
    traffic_kind: str = "bursty",
    num_requests: int = 256,
    rate_rps: Optional[float] = None,
    mix: Optional[WorkloadMix] = None,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
    num_scenarios: int = 16,
    seed: Seed = 2025,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: Optional[str] = None,
) -> FleetScenarioSamples:
    """Monte Carlo fleet statistics for one dispatch policy.

    ``rate_rps=None`` calibrates the arrival rate so the fleet runs at
    ~70% utilization: ``0.7 * num_devices / mean_service_seconds`` over
    the (mix-weighted) workload profiles. ``jobs`` fans scenario chunks
    over a :class:`~repro.runtime.parallel.ParallelRunner` (``None``
    reads ``REPRO_JOBS``; serial by default); results are bit-identical
    for any ``jobs`` and ``chunk_size``. ``checkpoint`` names a journal
    directory: completed chunks are recorded there and a rerun of the
    same configuration (enforced by a content-hash run key) skips them,
    still bit-identical because scenario seeds are spawned up front.
    """
    if num_scenarios < 1:
        raise ConfigurationError(
            f"num_scenarios must be positive, got {num_scenarios}"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    mix = mix or WorkloadMix.default_skewed()
    if profiles is None:
        profiles = build_profiles(mix.names, accelerator)
    if rate_rps is None:
        rate_rps = calibrated_rate(profiles, mix, config)
    # Rebuild a passed-in SeedSequence from its identity (see the same
    # guard in simulate_fleet): several samplings sharing one sequence
    # object — the common-random-number policy brackets — must each see
    # the identical scenario seeds, regardless of call order.
    sequence = (
        np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    scenario_seeds = sequence.spawn(num_scenarios)
    chunks = [
        scenario_seeds[start : start + chunk_size]
        for start in range(0, num_scenarios, chunk_size)
    ]
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(
            checkpoint,
            run_key=content_hash(
                "fleet-scenarios",
                accelerator_fingerprint(accelerator),
                config,
                traffic_kind,
                num_requests,
                float(rate_rps),
                mix,
                num_scenarios,
                chunk_size,
                sequence,
            ),
        )
    runner = ParallelRunner(jobs)
    chunk_outcomes = runner.map(
        _scenario_chunk,
        [
            (
                profiles,
                accelerator,
                config,
                traffic_kind,
                num_requests,
                rate_rps,
                mix,
                chunk,
            )
            for chunk in chunks
        ],
        labels=[f"chunk-{index}" for index in range(len(chunks))],
        checkpoint=journal,
    )
    outcomes = tuple(outcome for chunk in chunk_outcomes for outcome in chunk)
    return FleetScenarioSamples(
        policy=config.policy,
        num_devices=config.num_devices,
        traffic_kind=traffic_kind,
        outcomes=outcomes,
    )


def calibrated_rate(
    profiles: Dict[str, WorkloadProfile],
    mix: WorkloadMix,
    config: FleetConfig,
    utilization: float = 0.7,
) -> float:
    """Arrival rate putting a healthy fleet at the given utilization.

    Uses the mix-weighted mean service time, so the default scenario is
    busy enough for queueing to matter but stable enough that the
    policies face the same effective traffic.
    """
    if not 0.0 < utilization:
        raise ConfigurationError(
            f"utilization must be positive, got {utilization}"
        )
    clock_hz = config.clock_mhz * 1e6
    probabilities = mix.probabilities
    mean_service = sum(
        probability * profiles[name].cycles / clock_hz
        for name, probability in zip(mix.names, probabilities)
    )
    if mean_service <= 0:
        raise ConfigurationError("profiles yield a zero mean service time")
    return utilization * config.num_devices / mean_service
