"""Pluggable dispatch policies: which device serves the next request?

The fleet-level mirror of :mod:`repro.core.policies`. A dispatch policy
is a pure strategy object consulted once per arriving request with the
live device roster; it returns the chosen device id (or ``None`` when no
device can accept). All tie-breaks are deterministic, so a simulation is
a pure function of its inputs regardless of worker fan-out.

* ``round_robin`` — carried pointer over device ids; levels request
  *counts*, which under a skewed workload mix is not the same thing as
  leveling *wear*.
* ``least_outstanding`` — classic load balancing on queue depth; good
  for latency, wear-blind.
* ``least_wear`` — greedy on the hottest PE of each device's usage
  ledger (the fleet analogue of a feedback policy): picks whichever
  device currently has the lowest peak wear. Levels wear well but
  ignores queueing entirely.
* ``rotational`` — the paper's RWL+RO idea lifted to device indices.
  Treat the fleet as a 1-D torus of ``N`` devices: the rotation pointer
  is the stride anchor and advances past every dispatched device, and a
  per-device dispatched-wear ledger carries the *residue* — the wear
  imbalance a finished epoch leaves behind — across epochs, exactly the
  way RO carries the coordinate across layers. Each request goes to the
  least-loaded candidate in rotation order from the pointer, so under a
  uniform workload the policy degenerates to round-robin (zero residue,
  pure stride) and under a skewed mix the residue steers heavy requests
  away from already-stressed devices.

Two SLO-aware policies route on the request's accuracy contract
(:class:`~repro.accuracy.slo.SLOClass`) against each device's
model-predicted loss:

* ``slo_aware`` — tolerant traffic deliberately seeks out the *most*
  degraded device still inside the request's loss budget (sacrificial
  absorption: worn silicon soaks up the tolerant load, preserving
  healthy devices for exact traffic); exact traffic load-balances over
  loss-free devices. Rejects only when no device meets the SLO.
* ``slo_rotational`` — the rotational residue ledger restricted to
  SLO-eligible candidates: wear-leveled rotation *within* the set of
  devices the request's contract allows.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Protocol, Sequence

from repro.errors import ConfigurationError

#: Policy names in comparison order (the fleet-policies table rows).
DISPATCH_POLICY_NAMES = (
    "round_robin",
    "least_outstanding",
    "least_wear",
    "rotational",
)

#: SLO-routing policies (the fleet-accuracy bracket adds these).
SLO_DISPATCH_POLICY_NAMES = ("slo_aware", "slo_rotational")

#: Tolerance when comparing a device's predicted loss to a request's
#: budget, so a device whose loss *equals* the budget stays eligible.
_LOSS_EPSILON = 1e-12


class DeviceView(Protocol):
    """What a dispatch policy may observe about one device."""

    device_id: int

    @property
    def can_accept(self) -> bool:
        """Alive with queue headroom."""
        ...

    @property
    def outstanding(self) -> int:
        """Requests queued plus in service."""
        ...

    @property
    def peak_wear(self) -> float:
        """The hottest PE's wear (budget-normalized when budgets exist)."""
        ...

    def predicted_loss(self, workload: str) -> float:
        """Model-predicted accuracy loss of serving ``workload`` now."""
        ...


class DispatchPolicy(abc.ABC):
    """Strategy interface: pick the device for one request."""

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ConfigurationError(
                f"a fleet needs at least one device, got {num_devices}"
            )
        self._num_devices = num_devices

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Identifier used in reports and the CLI."""

    @abc.abstractmethod
    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        """Device id for a request of ``wear_cost`` wear units, or ``None``.

        ``devices`` is the full roster indexed by device id; only
        devices with ``can_accept`` may be chosen. ``wear_cost`` is the
        request's total per-PE usage increment (its wear footprint) —
        count-based policies ignore it. ``workload`` and ``max_loss``
        describe the request's accuracy contract; wear- and count-based
        policies ignore them, SLO-aware policies route on them
        (``max_loss=None`` means exact).
        """


class RoundRobinDispatch(DispatchPolicy):
    """Carried pointer over device ids, skipping dead or full devices."""

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self._pointer = 0

    @property
    def name(self) -> str:
        return "round_robin"

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        for offset in range(self._num_devices):
            device_id = (self._pointer + offset) % self._num_devices
            if devices[device_id].can_accept:
                self._pointer = (device_id + 1) % self._num_devices
                return device_id
        return None


class LeastOutstandingDispatch(DispatchPolicy):
    """Fewest queued-plus-running requests; ties break on device id."""

    @property
    def name(self) -> str:
        return "least_outstanding"

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        best: Optional[int] = None
        for device in devices:
            if not device.can_accept:
                continue
            if best is None or device.outstanding < devices[best].outstanding:
                best = device.device_id
        return best


class LeastWearDispatch(DispatchPolicy):
    """Lowest peak-PE wear; ties break on the lowest device id.

    Wear updates only when requests *complete*, so between completions
    this policy keeps piling onto the same coldest device — the latency
    cost of wear-greedy dispatch the fleet-policies table makes visible.
    """

    @property
    def name(self) -> str:
        return "least_wear"

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        # Each device's wear is read exactly once and the minimum is
        # taken over explicit (peak_wear, device_id) keys: the winner is
        # a pure function of the roster, never of how many times a
        # lazily-materialized wear property was re-read mid-comparison.
        best: Optional[int] = None
        best_wear = 0.0
        for device in devices:
            if not device.can_accept:
                continue
            wear = device.peak_wear
            if (
                best is None
                or wear < best_wear
                or (wear == best_wear and device.device_id < best)
            ):
                best = device.device_id
                best_wear = wear
        return best


class RotationalDispatch(DispatchPolicy):
    """RWL stride over device indices with residue carried across epochs.

    Maintains a dispatched-wear ledger (wear units routed to each
    device, counted at dispatch time) and a rotation pointer. The chosen
    device is the candidate with the minimum dispatched wear; among
    equally-loaded candidates, the one first in rotation order from the
    pointer wins, and the pointer then advances past it. The ledger is
    never reset, so the fractional imbalance one traffic epoch leaves
    behind — the fleet's residue — keeps steering later epochs, exactly
    the role RO's carried coordinate plays inside one array.
    """

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self._pointer = 0
        self._dispatched: List[float] = [0.0] * num_devices

    @property
    def name(self) -> str:
        return "rotational"

    @property
    def dispatched_wear(self) -> Sequence[float]:
        """Wear units routed to each device so far (for introspection)."""
        return tuple(self._dispatched)

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        chosen: Optional[int] = None
        chosen_load = 0.0
        for offset in range(self._num_devices):
            device_id = (self._pointer + offset) % self._num_devices
            if not devices[device_id].can_accept:
                continue
            load = self._dispatched[device_id]
            if chosen is None or load < chosen_load:
                chosen = device_id
                chosen_load = load
        if chosen is None:
            return None
        self._dispatched[chosen] += float(wear_cost)
        self._pointer = (chosen + 1) % self._num_devices
        return chosen


def _loss_budget(max_loss: Optional[float]) -> float:
    """A request's loss budget; ``None`` means exact (zero tolerance)."""
    return 0.0 if max_loss is None else float(max_loss)


class SLOAwareDispatch(DispatchPolicy):
    """Route on the accuracy contract: worn absorbs tolerant traffic.

    Eligible devices are those accepting requests whose predicted loss
    for the workload fits the budget. A tolerant request goes to the
    eligible device with the *highest* (loss, peak wear) — sacrificial
    absorption, spending silicon that is already degraded — while an
    exact request load-balances on queue depth over loss-free devices.
    Ties always break on the lowest device id. Returns ``None`` only
    when no device meets the SLO.
    """

    @property
    def name(self) -> str:
        return "slo_aware"

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        budget = _loss_budget(max_loss)
        eligible: List = []
        for device in devices:
            if not device.can_accept:
                continue
            loss = device.predicted_loss(workload) if workload else 0.0
            if loss <= budget + _LOSS_EPSILON:
                eligible.append((device, loss))
        if not eligible:
            return None
        if budget > 0.0:
            best = max(
                eligible,
                key=lambda pair: (
                    pair[1],
                    pair[0].peak_wear,
                    -pair[0].device_id,
                ),
            )
            return best[0].device_id
        best = min(
            eligible,
            key=lambda pair: (pair[0].outstanding, pair[0].device_id),
        )
        return best[0].device_id


class SLORotationalDispatch(DispatchPolicy):
    """Rotational residue dispatch restricted to SLO-eligible devices.

    Identical ledger and pointer mechanics to
    :class:`RotationalDispatch`, but a device only counts as a candidate
    when its predicted loss for the request's workload fits the budget —
    wear-leveled rotation within the contract-allowed set.
    """

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self._pointer = 0
        self._dispatched: List[float] = [0.0] * num_devices

    @property
    def name(self) -> str:
        return "slo_rotational"

    @property
    def dispatched_wear(self) -> Sequence[float]:
        """Wear units routed to each device so far (for introspection)."""
        return tuple(self._dispatched)

    def select(
        self,
        devices: Sequence[DeviceView],
        wear_cost: float,
        workload: Optional[str] = None,
        max_loss: Optional[float] = None,
    ) -> Optional[int]:
        budget = _loss_budget(max_loss)
        chosen: Optional[int] = None
        chosen_load = 0.0
        for offset in range(self._num_devices):
            device_id = (self._pointer + offset) % self._num_devices
            device = devices[device_id]
            if not device.can_accept:
                continue
            loss = device.predicted_loss(workload) if workload else 0.0
            if loss > budget + _LOSS_EPSILON:
                continue
            load = self._dispatched[device_id]
            if chosen is None or load < chosen_load:
                chosen = device_id
                chosen_load = load
        if chosen is None:
            return None
        self._dispatched[chosen] += float(wear_cost)
        self._pointer = (chosen + 1) % self._num_devices
        return chosen


_POLICIES = {
    "round_robin": RoundRobinDispatch,
    "least_outstanding": LeastOutstandingDispatch,
    "least_wear": LeastWearDispatch,
    "rotational": RotationalDispatch,
    "slo_aware": SLOAwareDispatch,
    "slo_rotational": SLORotationalDispatch,
}


def make_dispatch_policy(name: str, num_devices: int) -> DispatchPolicy:
    """Construct a dispatch policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        known = DISPATCH_POLICY_NAMES + SLO_DISPATCH_POLICY_NAMES
        raise ConfigurationError(
            f"unknown dispatch policy {name!r}; known: {known}"
        ) from None
    return factory(num_devices)
