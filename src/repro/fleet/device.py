"""Per-device state of the fleet simulator.

A :class:`FleetDevice` wraps exactly the state the single-array stack
already models, at request granularity:

* the engine's per-PE usage ledger — each served request adds its
  workload's :class:`WorkloadProfile` counts (one engine iteration's
  worth of wear) to the same ``(h, w)`` array the
  :class:`~repro.core.tracker.UsageTracker` keeps;
* :class:`~repro.faults.state.FaultState` — PEs die when the ledger
  crosses per-PE Weibull endurance budgets
  (:func:`repro.faults.injection.sample_endurance_budgets`), and the
  device retires once too few PEs survive;
* a bounded FIFO queue with service times from the cycle model
  (:meth:`NetworkExecution.total_cycles <repro.dataflow.simulator.
  NetworkExecution.total_cycles>`), slowed down as PEs die.

Profiles are computed once per workload by actually scheduling the
network and running the wear-leveling engine for one iteration, so fleet
wear is grounded in the same per-PE counts every paper figure uses —
not a synthetic abstraction of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accuracy.model import (
    AccuracyModel,
    WorkloadAccuracyProfile,
    accuracy_profile_for,
    make_accuracy_model,
)
from repro.arch.accelerator import Accelerator
from repro.core.engine import WearLevelingEngine
from repro.core.policies import StrideTrigger, make_policy
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injection import EnduranceBudgets
from repro.faults.state import FaultState
from repro.fleet.traffic import Request

#: Intra-device wear-leveling policy assumed when profiling workloads:
#: fleet devices are RoTA accelerators, so each runs RWL+RO internally.
PROFILE_POLICY = "rwl+ro"

#: What a device does once its alive fraction falls under
#: ``min_alive_fraction``: ``retire`` leaves service (the PR-5
#: behavior); ``serve-degraded-approx`` keeps serving at model-predicted
#: accuracy loss — the dead PEs' work is approximated away rather than
#: recomputed, so service time stops paying the slowdown too.
DEVICE_MODES = ("retire", "serve-degraded-approx")


@dataclass(frozen=True)
class WorkloadProfile:
    """One workload's per-request footprint on one accelerator.

    ``counts`` is the per-PE usage increment of a single inference (one
    engine iteration under the device's intra-array wear-leveling
    policy); ``cycles`` its service latency from the cycle model.
    """

    workload: str
    counts: np.ndarray
    cycles: int

    def __post_init__(self) -> None:
        array = np.asarray(self.counts, dtype=np.int64)
        if array.ndim != 2:
            raise ConfigurationError(
                f"profile counts must be 2-D, got shape {array.shape}"
            )
        if self.cycles < 1:
            raise ConfigurationError(
                f"profile cycles must be positive, got {self.cycles}"
            )
        object.__setattr__(self, "counts", array)

    @property
    def wear_units(self) -> float:
        """Total usage increment of one request (its wear footprint)."""
        cached = self.__dict__.get("_wear_units")
        if cached is None:
            cached = float(self.counts.sum())
            object.__setattr__(self, "_wear_units", cached)
        return cached

    @property
    def peak_count(self) -> int:
        """Largest single-PE increment of one request.

        Upper-bounds how far any one cell can move per request — the
        quantity the device's lazy wear application budgets against.
        """
        cached = self.__dict__.get("_peak_count")
        if cached is None:
            cached = int(self.counts.max())
            object.__setattr__(self, "_peak_count", cached)
        return cached


def _profile_key(
    workload: str,
    accelerator: Accelerator,
    policy_name: str,
    options=None,
) -> str:
    """Content key of one workload profile for the persistent cache.

    Deliberately computable *without* scheduling the network: a hit must
    skip the dataflow scheduler entirely (that is the expensive part
    every fleet Monte Carlo worker process used to repeat). The
    scheduler is deterministic in (network, accelerator, options), so
    the canonical network name plus the full accelerator fingerprint
    and the scheduler options pin the streams exactly; the schema
    version is bumped whenever engine or scheduler semantics change.
    ``options=None`` (the scheduler defaults) keys identically to an
    explicit default ``SchedulerOptions()``.
    """
    from repro.dataflow.scheduler import SchedulerOptions
    from repro.runtime import (
        CACHE_SCHEMA_VERSION,
        accelerator_fingerprint,
        content_hash,
    )
    from repro.workloads.registry import get_network

    return content_hash(
        "workload_profile",
        CACHE_SCHEMA_VERSION,
        get_network(workload).name,
        accelerator_fingerprint(accelerator),
        policy_name,
        SchedulerOptions() if options is None else options,
    )


def build_profile(
    workload: str,
    accelerator: Optional[Accelerator] = None,
    policy_name: str = PROFILE_POLICY,
    options=None,
) -> WorkloadProfile:
    """Profile one workload: schedule it, run one engine iteration.

    ``options`` (a :class:`~repro.dataflow.scheduler.SchedulerOptions`,
    default the scheduler's defaults) selects how the workload is
    mapped — a wear-aware fleet profiles its devices with
    ``search="beam", objective="energy-wear"`` and gets different
    per-PE counts than the greedy energy-optimal mapping.

    Memoized twice over: the persistent
    :class:`~repro.runtime.cache.ResultCache` (content-keyed on
    workload + accelerator + policy + options) lets separate
    processes — fleet Monte Carlo workers in particular — skip both the
    scheduler and the engine, and the shared per-process execution cache
    (:func:`repro.experiments.common.execution_for`) de-duplicates
    scheduling within a process on a cache miss.
    """
    from repro.experiments.common import execution_for, paper_accelerator
    from repro.runtime import result_cache

    accelerator = accelerator or paper_accelerator()
    store = result_cache()
    key = _profile_key(workload, accelerator, policy_name, options)
    hit = store.get(key)
    if isinstance(hit, WorkloadProfile):
        return hit
    execution = execution_for(workload, accelerator, options)
    policy = make_policy(policy_name, StrideTrigger.ORIGIN)
    target = (
        accelerator.as_torus() if policy.requires_torus else accelerator.as_mesh()
    )
    engine = WearLevelingEngine(target, policy)
    result = engine.run(
        execution.streams(), iterations=1, record_trace=False, mode="analytic"
    )
    profile = WorkloadProfile(
        workload=execution.network_name,
        counts=result.counts.astype(np.int64),
        cycles=int(execution.total_cycles),
    )
    store.put(key, profile)
    return profile


def build_profiles(
    workloads: Sequence[str],
    accelerator: Optional[Accelerator] = None,
    policy_name: str = PROFILE_POLICY,
    options=None,
) -> Dict[str, WorkloadProfile]:
    """Profiles for several workloads.

    Keyed by both the name as requested and the canonical network name,
    so requests tagged with either form (``"Sqz"`` or ``"SqueezeNet"``)
    resolve to the same profile. ``options`` selects the mapping the
    devices run, exactly as in :func:`build_profile`.
    """
    profiles: Dict[str, WorkloadProfile] = {}
    for workload in workloads:
        profile = build_profile(workload, accelerator, policy_name, options)
        profiles[workload] = profile
        profiles[profile.workload] = profile
    return profiles


@dataclass(frozen=True)
class PEDeath:
    """One PE wearing out on one device, at simulated time ``time_s``."""

    device_id: int
    time_s: float
    u: int
    v: int


class FleetDevice:
    """One accelerator in the fleet: queue, wear ledger, fault state."""

    def __init__(
        self,
        device_id: int,
        accelerator: Accelerator,
        budgets: Optional[EnduranceBudgets] = None,
        queue_limit: int = 64,
        clock_mhz: float = 200.0,
        min_alive_fraction: float = 0.5,
        mode: str = "retire",
        accuracy_model: Optional[AccuracyModel] = None,
        accuracy_profiles: Optional[
            Mapping[str, WorkloadAccuracyProfile]
        ] = None,
    ) -> None:
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be positive, got {queue_limit}"
            )
        if clock_mhz <= 0:
            raise ConfigurationError(
                f"clock_mhz must be positive, got {clock_mhz}"
            )
        if not 0.0 < min_alive_fraction <= 1.0:
            raise ConfigurationError(
                f"min_alive_fraction must be in (0, 1], got {min_alive_fraction}"
            )
        if mode not in DEVICE_MODES:
            raise ConfigurationError(
                f"unknown device mode {mode!r}; known: {DEVICE_MODES}"
            )
        array = accelerator.array
        if budgets is not None and budgets.shape != array.shape:
            raise ConfigurationError(
                f"budget shape {budgets.shape} does not match the "
                f"{array.width}x{array.height} array"
            )
        self.device_id = device_id
        self._array = array
        self._budgets = budgets
        self._queue_limit = queue_limit
        self._clock_hz = clock_mhz * 1e6
        self._min_alive_fraction = min_alive_fraction
        self.mode = mode
        if mode == "serve-degraded-approx" and accuracy_model is None:
            accuracy_model = make_accuracy_model("pruning")
        self._accuracy_model = accuracy_model
        self._accuracy_profiles = accuracy_profiles
        self._ledger = np.zeros(array.shape, dtype=np.int64)
        # Lazy wear application: completed requests park their profile
        # here (keyed by profile identity, with a repeat count) until a
        # ledger read or a possible budget crossing forces the batch to
        # materialize. ``_pending_peak`` upper-bounds any single cell's
        # deferred increment; ``_headroom`` is the smallest live-cell
        # margin to a budget as of the last materialization (``None``
        # when stale). While ``_pending_peak`` stays strictly below
        # ``_headroom`` no PE can cross its budget, so death timing is
        # exactly the per-request check's.
        self._pending: Dict[int, List] = {}
        self._pending_peak = 0
        self._headroom: Optional[float] = None
        self._faults = FaultState.none(array)
        # Queue entries carry the accuracy loss the request was admitted
        # at: the fault-aware mapping is planned at admission, so the
        # loss a request is *delivered* at is the device's predicted
        # loss when dispatch placed it — not whatever the array looks
        # like once it reaches the head of the queue.
        self._queue: Deque[Tuple[Request, WorkloadProfile, float]] = deque()
        self._in_service: Optional[Tuple[Request, WorkloadProfile, float]] = None
        self.served = 0
        self.dispatched_wear = 0.0
        self.death_time_s: Optional[float] = None
        #: Accuracy loss of the most recently completed request.
        self.last_loss = 0.0

    # ------------------------------------------------------------------
    # Dispatch-facing views
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the device is still in service (not retired)."""
        return self.death_time_s is None

    @property
    def degraded(self) -> bool:
        """Serving past ``min_alive_fraction`` in degraded-approx mode.

        Always ``False`` in ``retire`` mode and while the device is
        healthy, so a fault-free degraded-mode device is
        indistinguishable from a normal one.
        """
        return (
            self.mode == "serve-degraded-approx"
            and self.alive
            and self._faults.alive_fraction < self._min_alive_fraction
        )

    @property
    def can_accept(self) -> bool:
        """Alive with queue headroom."""
        return self.alive and len(self._queue) < self._queue_limit

    @property
    def outstanding(self) -> int:
        """Requests queued plus in service."""
        return len(self._queue) + (1 if self._in_service else 0)

    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def peak_wear(self) -> float:
        """The hottest PE's wear; budget-normalized when budgets exist."""
        self._flush_pending()
        peak = float(self._ledger.max())
        if self._budgets is None:
            return peak
        return float((self._ledger / self._budgets.budgets).max())

    # ------------------------------------------------------------------
    # Wear state
    # ------------------------------------------------------------------
    @property
    def ledger(self) -> np.ndarray:
        """Read-only per-PE usage counts accumulated so far."""
        self._flush_pending()
        view = self._ledger.view()
        view.setflags(write=False)
        return view

    @property
    def faults(self) -> FaultState:
        """The device's permanent-fault state."""
        return self._faults

    @property
    def total_usage(self) -> int:
        """Sum of the usage ledger."""
        self._flush_pending()
        return int(self._ledger.sum())

    @property
    def peak_usage(self) -> int:
        """The hottest PE's raw usage count."""
        self._flush_pending()
        return int(self._ledger.max())

    @property
    def alive_fraction(self) -> float:
        """Fraction of this device's PEs still working."""
        return self._faults.alive_fraction

    @property
    def slowdown(self) -> float:
        """Service-time multiplier from dead PEs (1.0 = healthy).

        First-order degradation model: compute throughput scales with
        surviving PEs, so a device that lost a quarter of its array
        serves a third slower — consistent with the tile-slot accounting
        of :class:`~repro.faults.state.DegradationStats` without paying
        a placement search per request.
        """
        alive = self._faults.num_alive
        if alive <= 0:
            return float("inf")
        return self._array.num_pes / alive

    def service_seconds(self, profile: WorkloadProfile) -> float:
        """Wall-clock service time of one request on this device, now.

        A degraded-approx device serves at the healthy rate: the dead
        PEs' work is approximated away (that is where the accuracy loss
        comes from), not redistributed over the survivors.
        """
        if self.degraded:
            return profile.cycles / self._clock_hz
        return profile.cycles / self._clock_hz * self.slowdown

    def predicted_loss(self, workload: str) -> float:
        """Model-predicted accuracy loss of serving ``workload`` now.

        Zero on a healthy device (or any device in ``retire`` mode,
        which never serves degraded), infinite on a retired one —
        SLO-aware dispatch compares this directly against a request's
        ``max_loss`` budget.
        """
        if not self.alive:
            return float("inf")
        if not self.degraded:
            return 0.0
        if self._accuracy_profiles is not None:
            profile = self._accuracy_profiles.get(workload)
            if profile is None:
                profile = accuracy_profile_for(workload)
        else:
            profile = accuracy_profile_for(workload)
        dead_fraction = 1.0 - self._faults.alive_fraction
        return self._accuracy_model.loss(dead_fraction, profile)

    # ------------------------------------------------------------------
    # Queue mechanics (driven by the event loop)
    # ------------------------------------------------------------------
    def enqueue(self, request: Request, profile: WorkloadProfile) -> bool:
        """Admit one request; returns whether service starts immediately.

        The request's delivered accuracy loss is fixed here, at
        admission — the predicted loss of the device as dispatch saw it.
        """
        if not self.can_accept:
            raise SimulationError(
                f"device {self.device_id} cannot accept request {request.index}"
            )
        loss = self.predicted_loss(request.workload)
        self.dispatched_wear += profile.wear_units
        if self._in_service is None:
            self._in_service = (request, profile, loss)
            return True
        self._queue.append((request, profile, loss))
        return False

    def _flush_pending(self) -> None:
        """Materialize deferred request wear into the ledger."""
        if not self._pending:
            return
        for profile, count in self._pending.values():
            if count == 1:
                self._ledger += profile.counts
            else:
                self._ledger += profile.counts * count
        self._pending.clear()
        self._pending_peak = 0
        self._headroom = None

    def _live_headroom(self) -> float:
        """Smallest live-cell margin to its endurance budget."""
        alive = ~self._faults.dead_mask
        if not alive.any():
            return float("inf")
        return float((self._budgets.budgets - self._ledger)[alive].min())

    def _defer(self, profile: WorkloadProfile) -> None:
        """Park one completed request's wear for batched application."""
        entry = self._pending.get(id(profile))
        if entry is None:
            self._pending[id(profile)] = [profile, 1]
        else:
            entry[1] += 1
        self._pending_peak += profile.peak_count

    def complete(self, time_s: float) -> Tuple[Request, List[PEDeath], List[Request]]:
        """Finish the in-service request at ``time_s``.

        Applies the request's wear, detects budget crossings, retires
        the device when too few PEs survive. Returns the finished
        request, any PE deaths it caused, and the queued requests
        dropped if the device retired.

        Wear application is lazily batched: while the worst-case
        deferred increment provably cannot reach any live PE's budget,
        the per-request array update and budget scan are skipped
        entirely (they re-run, exactly, once a crossing becomes
        possible — so deaths happen at the same request, time, and
        coordinates as with eager application).
        """
        if self._in_service is None:
            raise SimulationError(f"device {self.device_id} is idle")
        request, profile, loss = self._in_service
        self._in_service = None
        self.served += 1
        self.last_loss = loss
        deaths: List[PEDeath] = []
        if self._budgets is None:
            self._defer(profile)
        else:
            if self._headroom is None:
                self._headroom = self._live_headroom()
            if self._pending_peak + profile.peak_count < self._headroom:
                self._defer(profile)
            else:
                self._flush_pending()
                self._ledger += profile.counts
                self._headroom = None
                crossed = (
                    self._budgets.exceeded(self._ledger)
                    & ~self._faults.dead_mask
                )
                if crossed.any():
                    rows, cols = np.nonzero(crossed)
                    for v, u in zip(rows.tolist(), cols.tolist()):
                        self._faults.kill(u, v)
                        deaths.append(
                            PEDeath(
                                device_id=self.device_id, time_s=time_s, u=u, v=v
                            )
                        )
        dropped: List[Request] = []
        if self.mode == "serve-degraded-approx":
            retired = self.alive and self._faults.num_alive == 0
        else:
            retired = (
                self.alive
                and self._faults.alive_fraction < self._min_alive_fraction
            )
        if retired:
            self.death_time_s = time_s
            dropped = [queued for queued, _, _ in self._queue]
            self._queue.clear()
        return request, deaths, dropped

    def start_next(self) -> Optional[WorkloadProfile]:
        """Begin serving the head-of-queue request, if any."""
        if self._in_service is not None:
            raise SimulationError(f"device {self.device_id} is busy")
        if not self._queue:
            return None
        self._in_service = self._queue.popleft()
        return self._in_service[1]

    @property
    def in_service(self) -> Optional[Request]:
        """The request currently being served, if any."""
        return self._in_service[0] if self._in_service else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"dead@{self.death_time_s:.3f}s"
        return (
            f"FleetDevice({self.device_id}, {state}, served={self.served}, "
            f"outstanding={self.outstanding})"
        )
