"""The fleet event loop and its lifetime/latency metrics.

:func:`simulate_fleet` drives a finite request sequence through ``N``
devices under one dispatch policy: a discrete-event simulation whose
only event kinds are request arrivals (known up front, in time order)
and service completions (a heap). Everything downstream of the traffic
and budget seeds is deterministic — ties break on event order and
device id — so a scenario is a pure function of its inputs and can be
fanned out over processes without changing a single bit of the result.

Fleet lifetime uses the series/parallel Weibull composition built on
:mod:`repro.reliability.weibull`:

* within a device, PEs form a *series* system (Eq. 2 of the paper): the
  device's stress norm is ``(sum rate**beta)**(1/beta)`` over its
  per-PE wear rates, giving a closed-form device MTTF;
* across devices, :func:`fleet_mttf_series` treats the fleet as series
  (first device failure ends the fleet — the conservative SLA view),
  which stays closed-form because a series system of Weibulls with a
  shared shape is again Weibull;
* :func:`fleet_mttf_parallel` treats it as parallel (the fleet serves
  until *every* device has died — the sustainable-reuse view of
  arXiv:2412.16208), which has no closed form and is integrated
  numerically from the survival function.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.accuracy.model import (
    ACCURACY_MODEL_NAMES,
    WorkloadAccuracyProfile,
    make_accuracy_model,
)
from repro.arch.accelerator import Accelerator
from repro.errors import ConfigurationError
from repro.faults.injection import sample_endurance_budgets
from repro.fleet.device import DEVICE_MODES, FleetDevice, PEDeath, WorkloadProfile
from repro.fleet.dispatch import make_dispatch_policy
from repro.fleet.traffic import Request
from repro.reliability.weibull import JEDEC_BETA, WeibullModel

Seed = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class FleetConfig:
    """Static configuration of one fleet scenario."""

    num_devices: int = 4
    policy: str = "rotational"
    queue_limit: int = 64
    clock_mhz: float = 200.0
    #: Mean per-PE endurance budget. ``None`` disables wear-out deaths
    #: during the simulation; lifetime is then *projected* from the
    #: final wear rates against :attr:`reference_budget`.
    mean_budget: Optional[float] = None
    #: Budget used for MTTF projection when ``mean_budget`` is None.
    reference_budget: float = 1e8
    beta: float = JEDEC_BETA
    #: A device retires once fewer than this fraction of PEs survive.
    min_alive_fraction: float = 0.5
    #: What devices do past ``min_alive_fraction``: ``retire`` (the
    #: default) or ``serve-degraded-approx`` (keep serving at
    #: model-predicted accuracy loss).
    mode: str = "retire"
    #: Accuracy model *name* used by degraded devices (``None`` picks
    #: the default); a name rather than an instance so the config stays
    #: hashable for checkpoints and caches.
    accuracy_model: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ConfigurationError(
                f"num_devices must be positive, got {self.num_devices}"
            )
        if self.mean_budget is not None and self.mean_budget <= 0:
            raise ConfigurationError(
                f"mean_budget must be positive, got {self.mean_budget}"
            )
        if self.reference_budget <= 0:
            raise ConfigurationError(
                f"reference_budget must be positive, got {self.reference_budget}"
            )
        if self.mode not in DEVICE_MODES:
            raise ConfigurationError(
                f"unknown device mode {self.mode!r}; known: {DEVICE_MODES}"
            )
        if (
            self.accuracy_model is not None
            and self.accuracy_model not in ACCURACY_MODEL_NAMES
        ):
            raise ConfigurationError(
                f"unknown accuracy model {self.accuracy_model!r}; "
                f"known: {ACCURACY_MODEL_NAMES}"
            )

    @property
    def projection_budget(self) -> float:
        """The budget the MTTF projection is calibrated against."""
        return self.mean_budget if self.mean_budget is not None else self.reference_budget


@dataclass(frozen=True)
class DeviceStats:
    """End-of-run summary of one device."""

    device_id: int
    served: int
    total_usage: int
    peak_usage: int
    dispatched_wear: float
    dead_pes: int
    alive_fraction: float
    death_time_s: Optional[float]
    counts: np.ndarray
    #: Boolean per-PE dead mask at end of run (``None`` in old pickles).
    dead_mask: Optional[np.ndarray] = None


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet scenario produced."""

    policy: str
    num_devices: int
    num_requests: int
    completed: int
    rejected: int
    dropped: int
    duration_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    mttf_series_s: float
    mttf_parallel_s: float
    device_stats: Tuple[DeviceStats, ...]
    #: ``(time_s, devices_alive)`` steps, starting at ``(0.0, N)``.
    availability: Tuple[Tuple[float, int], ...]
    pe_deaths: Tuple[PEDeath, ...]
    #: Device mode the scenario ran under (appended fields default for
    #: results pickled before the accuracy layer existed).
    mode: str = "retire"
    #: Mean and p99 of per-request *delivered* accuracy loss (fixed at
    #: admission — see :meth:`FleetDevice.enqueue`).
    delivered_loss_mean: float = 0.0
    delivered_loss_p99: float = 0.0
    #: Completed requests whose delivered loss exceeded their SLO.
    slo_violations: int = 0
    #: When the first device left service (the fleet's
    #: time-to-retirement); equals ``duration_s`` when no device retired.
    time_to_first_retirement_s: float = 0.0
    #: Whether no device retired (``time_to_first_retirement_s`` is then
    #: a censored lower bound, not an observed retirement).
    retirement_censored: bool = True

    @property
    def device_totals(self) -> Tuple[int, ...]:
        """Total usage per device."""
        return tuple(stats.total_usage for stats in self.device_stats)

    @property
    def wear_imbalance(self) -> float:
        """Max over mean of per-device total usage (1.0 = perfectly level)."""
        totals = np.array(self.device_totals, dtype=float)
        mean = totals.mean()
        if mean <= 0:
            return 1.0
        return float(totals.max() / mean)

    @property
    def devices_alive_at_end(self) -> int:
        """Devices still in service when the simulation ended."""
        return sum(1 for stats in self.device_stats if stats.death_time_s is None)

    @property
    def availability_fraction(self) -> float:
        """Time-averaged fraction of the fleet in service."""
        if self.duration_s <= 0:
            return 1.0
        steps = list(self.availability) + [(self.duration_s, 0)]
        weighted = 0.0
        for (start, alive), (end, _) in zip(steps, steps[1:]):
            weighted += alive * max(0.0, end - start)
        return weighted / (self.num_devices * self.duration_s)


def _budget_scale(mean_budget: float, beta: float) -> float:
    """Weibull scale (in allocations) of budgets with the given mean."""
    return mean_budget / math.gamma(1.0 + 1.0 / beta)


def fleet_mttf_series(
    rate_vectors: Sequence[np.ndarray],
    mean_budget: float,
    beta: float = JEDEC_BETA,
) -> float:
    """MTTF until the *first* device failure (series composition).

    ``rate_vectors`` hold each device's per-PE wear rates (allocations
    per second). A series system of Weibull components with a shared
    shape is again Weibull, so the closed form of Eq. 3 applies to the
    concatenation of every device's rates.
    """
    if not rate_vectors:
        raise ConfigurationError("need at least one device rate vector")
    rates = np.concatenate([np.asarray(r, dtype=float).ravel() for r in rate_vectors])
    model = WeibullModel(beta=beta, eta=_budget_scale(mean_budget, beta))
    return model.array_mttf(rates)


def fleet_mttf_parallel(
    rate_vectors: Sequence[np.ndarray],
    mean_budget: float,
    beta: float = JEDEC_BETA,
    samples: int = 4096,
) -> float:
    """MTTF until the *last* device failure (parallel composition).

    The fleet survives while at least one device does:
    ``R_fleet(t) = 1 - prod_d (1 - R_d(t))`` with each device's
    ``R_d`` the series-Weibull of its PE rates. No closed form exists,
    so the mean is the numerically integrated survival function.
    Infinite when any device accrues no wear at all.
    """
    if not rate_vectors:
        raise ConfigurationError("need at least one device rate vector")
    eta = _budget_scale(mean_budget, beta)
    model = WeibullModel(beta=beta, eta=eta)
    norms = [model.stress_norm(np.asarray(r, dtype=float).ravel()) for r in rate_vectors]
    if any(norm == 0.0 for norm in norms):
        return float("inf")
    # The slowest-wearing device dominates; integrate well past its
    # characteristic life (survival at 3 eta/norm is ~exp(-3**beta)).
    horizon = 3.0 * eta / min(norms)
    times = np.linspace(0.0, horizon, samples)
    doomed = np.ones_like(times)
    for norm in norms:
        doomed *= 1.0 - np.exp(-((times * norm / eta) ** beta))
    survival = 1.0 - doomed
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(survival, times))


def _percentile(values: np.ndarray, q: float) -> float:
    if values.size == 0:
        return 0.0
    return float(np.percentile(values, q))


def simulate_fleet(
    profiles: Mapping[str, WorkloadProfile],
    requests: Sequence[Request],
    accelerator: Optional[Accelerator] = None,
    config: FleetConfig = FleetConfig(),
    seed: Seed = 2025,
    accuracy_profiles: Optional[
        Mapping[str, WorkloadAccuracyProfile]
    ] = None,
) -> FleetResult:
    """Run one traffic scenario through the fleet under one policy.

    ``seed`` feeds *only* the per-device endurance-budget sampling (one
    :class:`~numpy.random.SeedSequence` child per device, spawned up
    front); the traffic is already materialized in ``requests``. With
    ``config.mean_budget=None`` no budgets are drawn and the run is
    failure-free. ``accuracy_profiles`` optionally pins the per-workload
    accuracy calibration degraded devices consult (defaults to the
    global calibration in :mod:`repro.accuracy.model`).
    """
    if not requests:
        raise ConfigurationError("a fleet scenario needs at least one request")
    if accelerator is None:
        from repro.experiments.common import paper_accelerator

        accelerator = paper_accelerator()
    for request in requests:
        if request.workload not in profiles:
            raise ConfigurationError(
                f"request {request.index} asks for {request.workload!r} "
                f"but no profile was built for it; have: {sorted(profiles)}"
            )

    # Rebuild a passed-in SeedSequence from its identity rather than
    # spawning from the caller's object: spawn() mutates the parent's
    # child counter, so sharing one sequence across several scenarios
    # (the common-random-numbers brackets) would make the sampled
    # budgets depend on execution order and on whether tasks ran
    # in-process or in pickled workers. Reconstruction pins the budget
    # draw to the sequence's (entropy, spawn_key) alone.
    sequence = (
        np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    budgets = [None] * config.num_devices
    if config.mean_budget is not None:
        children = sequence.spawn(config.num_devices)
        budgets = [
            sample_endurance_budgets(
                accelerator.array, config.mean_budget,
                beta=config.beta, seed=child,
            )
            for child in children
        ]
    accuracy_model = None
    if config.mode == "serve-degraded-approx":
        accuracy_model = make_accuracy_model(config.accuracy_model or "pruning")
    devices = [
        FleetDevice(
            device_id=index,
            accelerator=accelerator,
            budgets=budgets[index],
            queue_limit=config.queue_limit,
            clock_mhz=config.clock_mhz,
            min_alive_fraction=config.min_alive_fraction,
            mode=config.mode,
            accuracy_model=accuracy_model,
            accuracy_profiles=accuracy_profiles,
        )
        for index in range(config.num_devices)
    ]
    policy = make_dispatch_policy(config.policy, config.num_devices)

    # Completion heap: (time, sequence number, device id). The sequence
    # number makes simultaneous completions pop in start order.
    completions: List[Tuple[float, int, int]] = []
    tick = 0
    latencies: List[float] = []
    delivered_losses: List[float] = []
    slo_by_index: Dict[int, float] = {}
    arrival_by_index: Dict[int, float] = {}
    pe_deaths: List[PEDeath] = []
    availability: List[Tuple[float, int]] = [(0.0, config.num_devices)]
    completed = rejected = dropped = slo_violations = 0
    last_event_s = 0.0

    def start_service(device: FleetDevice, profile: WorkloadProfile, now: float) -> None:
        nonlocal tick
        tick += 1
        heapq.heappush(
            completions,
            (now + device.service_seconds(profile), tick, device.device_id),
        )

    def run_completion(now: float, device_id: int) -> None:
        nonlocal completed, dropped, slo_violations, last_event_s
        device = devices[device_id]
        request, deaths, dropped_requests = device.complete(now)
        completed += 1
        latencies.append(now - arrival_by_index.pop(request.index))
        delivered_losses.append(device.last_loss)
        if device.last_loss > slo_by_index.pop(request.index) + 1e-12:
            slo_violations += 1
        pe_deaths.extend(deaths)
        dropped += len(dropped_requests)
        for queued in dropped_requests:
            arrival_by_index.pop(queued.index, None)
            slo_by_index.pop(queued.index, None)
        if not device.alive:
            alive = sum(1 for d in devices if d.alive)
            availability.append((now, alive))
        else:
            next_profile = device.start_next()
            if next_profile is not None:
                start_service(device, next_profile, now)
        last_event_s = max(last_event_s, now)

    for request in requests:
        while completions and completions[0][0] <= request.arrival_s:
            time_s, _, device_id = heapq.heappop(completions)
            run_completion(time_s, device_id)
        profile = profiles[request.workload]
        chosen = policy.select(
            devices,
            profile.wear_units,
            workload=request.workload,
            max_loss=request.slo.max_loss,
        )
        last_event_s = max(last_event_s, request.arrival_s)
        if chosen is None:
            rejected += 1
            continue
        arrival_by_index[request.index] = request.arrival_s
        slo_by_index[request.index] = request.slo.max_loss
        device = devices[chosen]
        if device.enqueue(request, profile):
            start_service(device, profile, request.arrival_s)
    while completions:
        time_s, _, device_id = heapq.heappop(completions)
        run_completion(time_s, device_id)

    duration = max(last_event_s, requests[-1].arrival_s)
    latency_array = np.array(latencies, dtype=float)
    loss_array = np.array(delivered_losses, dtype=float)
    death_times = [
        device.death_time_s
        for device in devices
        if device.death_time_s is not None
    ]
    retirement_censored = not death_times
    time_to_first_retirement = (
        duration if retirement_censored else min(death_times)
    )
    rate_vectors = [
        device.ledger.astype(float) / duration if duration > 0 else device.ledger * 0.0
        for device in devices
    ]
    projection_budget = config.projection_budget
    stats = tuple(
        DeviceStats(
            device_id=device.device_id,
            served=device.served,
            total_usage=device.total_usage,
            peak_usage=device.peak_usage,
            dispatched_wear=device.dispatched_wear,
            dead_pes=device.faults.num_dead,
            alive_fraction=device.alive_fraction,
            death_time_s=device.death_time_s,
            counts=device.ledger.copy(),
            dead_mask=device.faults.dead_mask.copy(),
        )
        for device in devices
    )
    return FleetResult(
        policy=config.policy,
        num_devices=config.num_devices,
        num_requests=len(requests),
        completed=completed,
        rejected=rejected,
        dropped=dropped,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency_mean_s=float(latency_array.mean()) if latency_array.size else 0.0,
        latency_p50_s=_percentile(latency_array, 50.0),
        latency_p99_s=_percentile(latency_array, 99.0),
        mttf_series_s=fleet_mttf_series(rate_vectors, projection_budget, config.beta),
        mttf_parallel_s=fleet_mttf_parallel(rate_vectors, projection_budget, config.beta),
        device_stats=stats,
        availability=tuple(availability),
        pe_deaths=tuple(pe_deaths),
        mode=config.mode,
        delivered_loss_mean=float(loss_array.mean()) if loss_array.size else 0.0,
        delivered_loss_p99=_percentile(loss_array, 99.0),
        slo_violations=slo_violations,
        time_to_first_retirement_s=time_to_first_retirement,
        retirement_censored=retirement_censored,
    )
