"""Traffic-driven multi-accelerator fleet simulator.

The paper levels wear *inside* one PE array; this package lifts the same
ideas one level up. N accelerators serve a seeded stream of inference
requests (:mod:`~repro.fleet.traffic`), a pluggable dispatch policy
decides which device takes each request
(:mod:`~repro.fleet.dispatch` — including ``rotational``, the RWL stride
applied to device indices with RO-style residue carried across epochs),
and each device accumulates real per-PE wear from the engine's own
usage counters (:mod:`~repro.fleet.device`). The event loop
(:mod:`~repro.fleet.simulate`) composes per-device Weibull lifetimes
into fleet MTTF, and :mod:`~repro.fleet.montecarlo` fans seeded scenario
sweeps over the parallel runtime with chunk-invariant results.
"""

from repro.fleet.device import (
    DEVICE_MODES,
    FleetDevice,
    PEDeath,
    PROFILE_POLICY,
    WorkloadProfile,
    build_profile,
    build_profiles,
)
from repro.fleet.dispatch import (
    DISPATCH_POLICY_NAMES,
    DispatchPolicy,
    LeastOutstandingDispatch,
    LeastWearDispatch,
    RotationalDispatch,
    RoundRobinDispatch,
    SLO_DISPATCH_POLICY_NAMES,
    SLOAwareDispatch,
    SLORotationalDispatch,
    make_dispatch_policy,
)
from repro.fleet.montecarlo import (
    FleetOutcome,
    FleetScenarioSamples,
    calibrated_rate,
    sample_fleet_scenarios,
)
from repro.fleet.simulate import (
    DeviceStats,
    FleetConfig,
    FleetResult,
    fleet_mttf_parallel,
    fleet_mttf_series,
    simulate_fleet,
)
from repro.fleet.traffic import (
    DEFAULT_SKEWED_MIX,
    Request,
    TRAFFIC_KINDS,
    WorkloadMix,
    bursty_requests,
    make_traffic,
    poisson_requests,
    replay_requests,
)

__all__ = [
    "DEFAULT_SKEWED_MIX",
    "DEVICE_MODES",
    "DISPATCH_POLICY_NAMES",
    "DeviceStats",
    "DispatchPolicy",
    "FleetConfig",
    "FleetDevice",
    "FleetOutcome",
    "FleetResult",
    "FleetScenarioSamples",
    "LeastOutstandingDispatch",
    "LeastWearDispatch",
    "PEDeath",
    "PROFILE_POLICY",
    "Request",
    "RotationalDispatch",
    "RoundRobinDispatch",
    "SLO_DISPATCH_POLICY_NAMES",
    "SLOAwareDispatch",
    "SLORotationalDispatch",
    "TRAFFIC_KINDS",
    "WorkloadMix",
    "WorkloadProfile",
    "build_profile",
    "build_profiles",
    "bursty_requests",
    "calibrated_rate",
    "fleet_mttf_parallel",
    "fleet_mttf_series",
    "make_dispatch_policy",
    "make_traffic",
    "poisson_requests",
    "replay_requests",
    "sample_fleet_scenarios",
    "simulate_fleet",
]
